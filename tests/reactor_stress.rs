//! Reactor-runtime stress: 16 sources × 2 views each (32 views) ×
//! ~200 updates, multiplexed over a 3-worker reactor pool against
//! scripted source threads that *randomly interleave* executing updates
//! with answering pending queries, so `W_up`/`W_ans` event histories
//! race for real while many stations contend for few workers.
//!
//! Every view must converge to its definition evaluated on the final
//! base state, and the §3.1 checker must report strong consistency for
//! ECA on every view. The two views per source are *distinct
//! projections* of the same join, so any cross-view or cross-shard
//! leakage (an event applied to the wrong maintainer) shows up as a
//! convergence or consistency failure.

use std::collections::VecDeque;

use eca_core::algorithms::AlgorithmKind;
use eca_core::{QueryId, ViewDef};
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::{SourceId, Warehouse};
use eca_wire::{Message, SharedFifo, TransferMeter, Transport, WireQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SOURCES: usize = 16;
const VIEWS_PER_SOURCE: usize = 2; // × 16 sources = 32 views
const UPDATES_PER_SOURCE: usize = 13; // × 16 sources = 208 updates
const WORKERS: usize = 3; // far fewer workers than stations
const JOIN_DOMAIN: i64 = 7;
const PRELOAD: i64 = 30;

fn relation_names(s: usize) -> (String, String) {
    (format!("x{s}_1"), format!("x{s}_2"))
}

fn build_source(s: usize) -> Source {
    let (r1, r2) = relation_names(s);
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new(&r1, &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new(&r2, &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source
        .load(&r1, (0..PRELOAD).map(|j| Tuple::ints([j, j % JOIN_DOMAIN])))
        .unwrap();
    source
        .load(
            &r2,
            (0..PRELOAD).map(|j| Tuple::ints([j % JOIN_DOMAIN, 100 + j])),
        )
        .unwrap();
    source
}

fn build_views(s: usize) -> Vec<ViewDef> {
    let (r1, r2) = relation_names(s);
    // Two distinct projections of r1 ⋈ r2 per source: if an event ever
    // reaches the wrong view, their states diverge differently.
    [vec![0usize], vec![3]]
        .into_iter()
        .take(VIEWS_PER_SOURCE)
        .enumerate()
        .map(|(v, proj)| {
            ViewDef::new(
                format!("V{s}_{v}"),
                vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])],
                Predicate::col_eq(1, 2),
                proj,
            )
            .unwrap()
        })
        .collect()
}

/// Insert/delete script for source `s`; every update is effective by
/// construction (inserts are fresh tuples, deletes hit distinct
/// preloaded rows), so notification counts are known up front.
fn build_script(s: usize) -> Vec<Update> {
    let (r1, r2) = relation_names(s);
    (0..UPDATES_PER_SOURCE as i64)
        .map(|i| match i % 5 {
            4 => {
                let j = i / 5; // distinct per delete, all preloaded
                Update::delete(&r1, Tuple::ints([j, j % JOIN_DOMAIN]))
            }
            n if n % 2 == 0 => Update::insert(&r1, Tuple::ints([1000 + i, i % JOIN_DOMAIN])),
            _ => Update::insert(&r2, Tuple::ints([i % JOIN_DOMAIN, 2000 + i])),
        })
        .collect()
}

/// One scripted source thread: randomly interleaves executing the next
/// update with answering the oldest pending query (per-channel FIFO),
/// recording the source-side view states `V[ss_i]` after every
/// effective update. Runs until the warehouse hangs up.
fn drive_source(
    mut source: Source,
    views: Vec<ViewDef>,
    script: Vec<Update>,
    mut transport: SharedFifo,
    seed: u64,
) -> (Source, Vec<Vec<SignedBag>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut states: Vec<Vec<SignedBag>> = views
        .iter()
        .map(|v| vec![v.eval(&source.snapshot()).unwrap()])
        .collect();
    let mut script: VecDeque<Update> = script.into();
    let mut pending: VecDeque<(QueryId, WireQuery)> = VecDeque::new();

    let answer_oldest =
        |source: &mut Source, pending: &mut VecDeque<(QueryId, WireQuery)>, t: &mut SharedFifo| {
            let (id, query) = pending.pop_front().unwrap();
            let answer = source.answer(&query).unwrap();
            t.meter().record_answer_payload(
                answer.encoded_len() as u64,
                answer.pos_len() + answer.neg_len(),
            );
            t.send(&Message::QueryAnswer { id, answer }).unwrap();
        };

    loop {
        while let Some(msg) = transport.try_recv().unwrap() {
            let Message::QueryRequest { id, query } = msg else {
                panic!("unexpected message at source");
            };
            pending.push_back((id, query));
        }
        let can_update = !script.is_empty();
        let can_answer = !pending.is_empty();
        match (can_update, can_answer) {
            (true, true) => {
                if rng.gen_bool(0.5) {
                    let u = script.pop_front().unwrap();
                    assert!(source.execute_update(&u));
                    for (v, view) in views.iter().enumerate() {
                        states[v].push(view.eval(&source.snapshot()).unwrap());
                    }
                    transport
                        .send(&Message::UpdateNotification { update: u })
                        .unwrap();
                } else {
                    answer_oldest(&mut source, &mut pending, &mut transport);
                }
            }
            (true, false) => {
                let u = script.pop_front().unwrap();
                assert!(source.execute_update(&u));
                for (v, view) in views.iter().enumerate() {
                    states[v].push(view.eval(&source.snapshot()).unwrap());
                }
                transport
                    .send(&Message::UpdateNotification { update: u })
                    .unwrap();
            }
            (false, true) => answer_oldest(&mut source, &mut pending, &mut transport),
            (false, false) => {
                // Script done, nothing pending: block until the
                // warehouse asks for more or hangs up.
                match transport.recv().unwrap() {
                    Some(Message::QueryRequest { id, query }) => pending.push_back((id, query)),
                    Some(_) => panic!("unexpected message at source"),
                    None => break,
                }
            }
        }
    }
    (source, states)
}

#[test]
fn reactor_runtime_stress_converges_strongly_consistent() {
    let mut wh = Warehouse::new();
    let mut all_views = Vec::new();
    let mut all_ids = Vec::new();
    for s in 0..SOURCES {
        let src = wh.add_source(format!("s{s}"));
        let probe = build_source(s);
        let views = build_views(s);
        let mut ids = Vec::new();
        for view in &views {
            let initial = view.eval(&probe.snapshot()).unwrap();
            ids.push(
                wh.add_view(src, AlgorithmKind::Eca.instantiate(view, initial).unwrap())
                    .unwrap(),
            );
        }
        all_views.push(views);
        all_ids.push(ids);
    }
    let rw = wh.into_reactor(WORKERS);

    let finished: Vec<(Source, Vec<Vec<SignedBag>>)> = std::thread::scope(|scope| {
        let mut endpoints = Vec::new();
        let mut handles = Vec::new();
        for (s, views) in all_views.iter().enumerate() {
            let (src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
            endpoints.push((
                SourceId(s),
                Box::new(wh_end) as Box<dyn Transport + Send>,
                UPDATES_PER_SOURCE as u64,
            ));
            let views = views.clone();
            handles.push(scope.spawn(move || {
                drive_source(
                    build_source(s),
                    views,
                    build_script(s),
                    src_end,
                    0x5EAC + s as u64,
                )
            }));
        }
        rw.run(endpoints).unwrap();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(rw.is_quiescent());
    for (s, (source, source_states)) in finished.iter().enumerate() {
        let snapshot = source.snapshot();
        for (v, id) in all_ids[s].iter().enumerate() {
            let expected = all_views[s][v].eval(&snapshot).unwrap();
            assert_eq!(
                rw.materialized(*id),
                expected,
                "view V{s}_{v} did not converge"
            );
            let warehouse_states = rw.view_states(*id);
            let c = eca_consistency::check(&source_states[v], &warehouse_states);
            assert!(
                c.level() >= eca_consistency::Level::StronglyConsistent,
                "view V{s}_{v} is only {:?}",
                c.level()
            );
        }
    }
}
