//! Integration: Batch-ECA (§7 future work) through the full simulator —
//! correctness preserved, message count cut from `2k` to `2⌈k/n⌉`.

use eca_core::algorithms::AlgorithmKind;
use eca_sim::{Policy, RunReport, Simulation};
use eca_storage::Scenario;
use eca_workload::{Example6, Params, UpdateMix};

fn run(kind: AlgorithmKind, k: usize, policy: Policy, seed: u64) -> RunReport {
    let params = Params {
        cardinality: 40,
        ..Params::default()
    };
    let workload = Example6::new(params, seed);
    let source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::view().unwrap();
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).unwrap();
    let warehouse = kind
        .instantiate_with_base(&view, initial, Some(snapshot))
        .unwrap();
    Simulation::new(source, warehouse, workload.updates(k, UpdateMix::Mixed))
        .unwrap()
        .run(policy)
        .unwrap()
}

#[test]
fn batch_eca_converges_under_all_policies() {
    for n in [2usize, 3, 4, 6] {
        for policy in [
            Policy::Serial,
            Policy::AllUpdatesFirst,
            Policy::Random { seed: 17 },
        ] {
            // k divisible by n so the last batch flushes.
            let k = n * 4;
            let report = run(AlgorithmKind::BatchEca { batch_size: n }, k, policy, 5);
            assert!(report.converged(), "n={n} {policy:?}");
            let check =
                eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
            assert!(
                check.strongly_consistent,
                "n={n} {policy:?}: {:?}",
                check.violation
            );
        }
    }
}

#[test]
fn batching_cuts_messages_to_2k_over_n() {
    let k = 12;
    for n in [1usize, 2, 3, 4, 6, 12] {
        let report = run(
            AlgorithmKind::BatchEca { batch_size: n },
            k,
            Policy::AllUpdatesFirst,
            7,
        );
        assert_eq!(
            report.maintenance_messages(),
            2 * (k as u64) / n as u64,
            "batch size {n}"
        );
        assert!(report.converged(), "batch size {n}");
    }
}

#[test]
fn batch_final_view_matches_plain_eca() {
    let k = 12;
    let eca = run(AlgorithmKind::EcaOptimized, k, Policy::AllUpdatesFirst, 9);
    let batch = run(
        AlgorithmKind::BatchEca { batch_size: 4 },
        k,
        Policy::AllUpdatesFirst,
        9,
    );
    assert_eq!(eca.final_mv, batch.final_mv);
}

#[test]
fn batching_does_not_increase_answer_bytes() {
    // Coalescing queries can only merge (and cancel) answer tuples, never
    // add: the batched transfer is at most the per-update transfer.
    let k = 12;
    let eca = run(AlgorithmKind::EcaOptimized, k, Policy::AllUpdatesFirst, 11);
    let batch = run(
        AlgorithmKind::BatchEca { batch_size: 4 },
        k,
        Policy::AllUpdatesFirst,
        11,
    );
    assert!(
        batch.answer_tuples <= eca.answer_tuples,
        "batch {} vs eca {}",
        batch.answer_tuples,
        eca.answer_tuples
    );
}
