//! Golden-trace equivalence: for fixed seeds, the refactored transport
//! stack must produce byte-identical [`TraceEvent`] sequences and
//! [`RunReport`] byte counts to the pre-refactor direct-wired simulator.
//!
//! The expected fingerprints below were captured from the simulator
//! *before* the `Transport`/`Warehouse` re-layering (commit 31ee504),
//! so any drift in event order, query-id assignment or message
//! encoding shows up as a failure here.

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update};
use eca_sim::{
    run_equivalence, run_reactor_tcp, EquivCase, EquivSource, Policy, RunReport, Simulation,
};
use eca_source::Source;
use eca_storage::Scenario;
use eca_workload::{Example6, Params, UpdateMix};

/// FNV-1a over the debug rendering of the trace and the meters: cheap,
/// dependency-free, and sensitive to any reordering or re-encoding.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn fingerprint(report: &RunReport) -> u64 {
    let rendered = format!(
        "{:?}|q{} a{} n{} ab{} at{} s2w{} w2s{}|{:?}|{:?}",
        report.trace,
        report.query_messages,
        report.answer_messages,
        report.notification_messages,
        report.answer_bytes,
        report.answer_tuples,
        report.bytes_s2w,
        report.bytes_w2s,
        report.source_view_states,
        report.warehouse_view_states,
    );
    fnv1a(rendered.as_bytes())
}

/// The Example 2 setup used throughout the sim's unit tests.
fn example2_sim(kind: AlgorithmKind) -> Simulation {
    let view = ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap();
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source.load("r1", [Tuple::ints([1, 2])]).unwrap();
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).unwrap();
    let warehouse = kind
        .instantiate_with_base(&view, initial, Some(snapshot))
        .unwrap();
    Simulation::new(
        source,
        warehouse,
        vec![
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r1", Tuple::ints([4, 2])),
        ],
    )
    .unwrap()
}

fn example6_sim(kind: AlgorithmKind, seed: u64) -> Simulation {
    let workload = Example6::new(Params::default(), seed);
    let source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::view().unwrap();
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).unwrap();
    let warehouse = kind
        .instantiate_with_base(&view, initial, Some(snapshot))
        .unwrap();
    let script = workload.updates(12, UpdateMix::Mixed);
    Simulation::new(source, warehouse, script).unwrap()
}

/// The Example 2 deployment as an equivalence case: same relations,
/// view and script as [`example2_sim`], wired over a real transport for
/// the three warehouse runtimes.
fn example2_equiv_case() -> EquivCase {
    let view = ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap();
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source.load("r1", [Tuple::ints([1, 2])]).unwrap();
    let initial = view.eval(&source.snapshot()).unwrap();
    let maintainer = AlgorithmKind::Eca.instantiate(&view, initial).unwrap();
    EquivCase {
        sources: vec![EquivSource {
            source,
            script: vec![
                Update::insert("r2", Tuple::ints([2, 3])),
                Update::insert("r1", Tuple::ints([4, 2])),
            ],
            maintainers: vec![maintainer],
        }],
    }
}

/// The Example 6 workload as an equivalence case. The mixed script is
/// pre-filtered to *effective* updates (replayed against a probe copy
/// of the source) because the concurrent runtimes are told up front how
/// many notifications to expect — one per script entry.
fn example6_equiv_case(seed: u64) -> EquivCase {
    let workload = Example6::new(Params::default(), seed);
    let mut probe = workload.build_source(Scenario::Indexed).unwrap();
    let script: Vec<Update> = workload
        .updates(12, UpdateMix::Mixed)
        .into_iter()
        .filter(|u| probe.execute_update(u))
        .collect();
    let source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::view().unwrap();
    let initial = view.eval(&source.snapshot()).unwrap();
    let maintainer = AlgorithmKind::Eca.instantiate(&view, initial).unwrap();
    EquivCase {
        sources: vec![EquivSource {
            source,
            script,
            maintainers: vec![maintainer],
        }],
    }
}

fn example6_equiv_42() -> EquivCase {
    example6_equiv_case(42)
}

fn example6_equiv_43() -> EquivCase {
    example6_equiv_case(43)
}

#[test]
fn example2_fingerprints_are_stable() {
    let expected: &[(AlgorithmKind, Policy, u64)] = &[
        (AlgorithmKind::Eca, Policy::Serial, 0x041944a725313d62),
        (
            AlgorithmKind::Eca,
            Policy::AllUpdatesFirst,
            0x96f789c5d1b9b28d,
        ),
        (
            AlgorithmKind::Basic,
            Policy::AllUpdatesFirst,
            0x9852dcf5e7963299,
        ),
        (
            AlgorithmKind::Lca,
            Policy::AllUpdatesFirst,
            0x403f11ed26133f49,
        ),
        (
            AlgorithmKind::Eca,
            Policy::Random { seed: 0 },
            0xcd77a66144195be5,
        ),
        (
            AlgorithmKind::Eca,
            Policy::Random { seed: 1 },
            0x2bc937843c1563b7,
        ),
        (
            AlgorithmKind::Eca,
            Policy::Random { seed: 2 },
            0x2c7f4dd425bdab8d,
        ),
        (
            AlgorithmKind::Lca,
            Policy::Random { seed: 3 },
            0x041944a725313d62,
        ),
    ];
    for (kind, policy, want) in expected {
        let report = example2_sim(*kind).run(*policy).unwrap();
        let got = fingerprint(&report);
        if std::env::var("GOLDEN_PRINT").is_ok() {
            println!("({kind:?}, {policy:?}, 0x{got:016x}),");
        } else {
            assert_eq!(got, *want, "{kind:?} under {policy:?}");
        }
    }
}

#[test]
fn example6_fingerprints_are_stable() {
    let expected: &[(u64, Policy, u64)] = &[
        (42, Policy::AllUpdatesFirst, 0x684b0dcb0d8de236),
        (42, Policy::Random { seed: 7 }, 0xc81faa640e272e96),
        (43, Policy::Random { seed: 8 }, 0x39a7acea7846d619),
    ];
    for (seed, policy, want) in expected {
        let report = example6_sim(AlgorithmKind::Eca, *seed)
            .run(*policy)
            .unwrap();
        let got = fingerprint(&report);
        if std::env::var("GOLDEN_PRINT").is_ok() {
            println!("({seed}, {policy:?}, 0x{got:016x}),");
        } else {
            assert_eq!(got, *want, "workload seed {seed} under {policy:?}");
        }
    }
}

/// Serial, thread-per-source and reactor runtimes must produce
/// byte-identical view-state histories, final materializations and link
/// meters on Examples 2 and 6 — and the common outcome must match the
/// pinned fingerprint, so a change that shifts *all three* runtimes in
/// lockstep still shows up. The reactor is additionally run at several
/// pool sizes: §3 says the verdict may not depend on scheduling.
#[test]
fn runtime_equivalence_fingerprints_are_stable() {
    type CaseBuilder = fn() -> EquivCase;
    let cases: &[(&str, CaseBuilder, u64)] = &[
        ("example2", example2_equiv_case, 0x1987a011bc710dc5),
        ("example6/42", example6_equiv_42, 0x3f9e4d6b4081d12e),
        ("example6/43", example6_equiv_43, 0x45533b3eb020aa93),
    ];
    for (name, build, want) in cases {
        for workers in [1usize, 2, 4] {
            let triple = run_equivalence(build, workers).unwrap();
            assert!(
                triple.agree(),
                "{name}: runtimes disagree at {workers} workers\nserial:     {:?}\nconcurrent: {:?}\nreactor:    {:?}",
                triple.serial,
                triple.concurrent,
                triple.reactor
            );
            let got = fnv1a(triple.serial.render().as_bytes());
            if std::env::var("GOLDEN_PRINT").is_ok() {
                if workers == 1 {
                    println!("({name:?}, …, 0x{got:016x}),");
                }
            } else {
                assert_eq!(got, *want, "{name} at {workers} workers");
            }
        }
    }
}

/// The reactor over real loopback TCP — listener handshake, one poller
/// thread, framed non-blocking sockets — must land on the *same* pinned
/// fingerprint as the in-memory runtimes: swapping every link's bytes
/// onto the wire may not change a single observable (view-state
/// histories, finals, or source-side link meters).
#[test]
fn tcp_reactor_matches_in_memory_golden() {
    type CaseBuilder = fn() -> EquivCase;
    let cases: &[(&str, CaseBuilder, u64)] = &[
        ("example2", example2_equiv_case, 0x1987a011bc710dc5),
        ("example6/42", example6_equiv_42, 0x3f9e4d6b4081d12e),
    ];
    for (name, build, want) in cases {
        for workers in [1usize, 2] {
            let outcome = run_reactor_tcp(build(), workers).unwrap();
            let got = fnv1a(outcome.render().as_bytes());
            if std::env::var("GOLDEN_PRINT").is_ok() {
                if workers == 1 {
                    println!("({name:?}, …, 0x{got:016x}),");
                }
            } else {
                assert_eq!(got, *want, "{name} over TCP at {workers} workers");
            }
        }
    }
}
