//! Integration: the Scenario-1 planner's `min(J, I)` behaviour and
//! composite-key ECA-Key handling — the corners of the paper's cost model
//! that depend on data shape rather than timing.

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update};
use eca_sim::{Policy, Simulation};
use eca_source::Source;
use eca_storage::Scenario;
use eca_wire::WireQuery;
use eca_workload::{Example6, Params};

/// Appendix D.3: "If J ≥ I, Q1 is best evaluated by reading relations
/// fully … the cost of evaluating the three queries will be
/// 3·min(J, I) + 3." With a large join factor the planner must abandon
/// index probes for scans, capping the per-query cost near the scan cost.
#[test]
fn planner_switches_to_scans_when_j_exceeds_i() {
    // C = 60, J = 20, K = 20 ⇒ I = 3 < J.
    let params = Params {
        cardinality: 60,
        join_factor: 20,
        tuples_per_block: 20,
        ..Params::default()
    };
    let workload = Example6::new(params, 3);
    let mut source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::view().unwrap();

    // A one-bound-tuple query on r1: probing r2 would cost ≈ J unclustered
    // or ⌈J/K⌉ clustered, then r3 per matched tuple — the planner must
    // never exceed scanning the remaining relations.
    let q = view
        .substitute(&Update::insert("r1", Tuple::ints([5, 0])))
        .unwrap();
    source.io_meter().reset();
    source.answer(&WireQuery::from_query(&q)).unwrap();
    let cost = source.io_meter().query_reads();
    let i = params.blocks_per_relation();
    assert!(
        cost <= 2 * i + 2,
        "bound query cost {cost} should be capped near 2I = {} by scan fallback",
        2 * i
    );
}

/// With a tiny join factor the same query must use probes and beat scans
/// decisively.
#[test]
fn planner_prefers_probes_when_j_is_small() {
    let params = Params {
        cardinality: 200,
        join_factor: 2,
        tuples_per_block: 20,
        ..Params::default()
    };
    let workload = Example6::new(params, 3);
    let mut source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::view().unwrap();

    let q = view
        .substitute(&Update::insert("r1", Tuple::ints([5, 0])))
        .unwrap();
    source.io_meter().reset();
    source.answer(&WireQuery::from_query(&q)).unwrap();
    let cost = source.io_meter().query_reads();
    let scan_all = 2 * params.blocks_per_relation();
    assert!(
        cost < scan_all / 2,
        "probe cost {cost} should beat scans {scan_all}"
    );
}

/// ECA-Key with composite (multi-attribute) keys: key-delete must match
/// on every key column.
#[test]
fn eca_key_composite_keys() {
    // r1(A, B, X) keyed by (A, B); r2(X, C) keyed by C.
    // V = π_{A, B, C}(r1 ⋈ r2).
    let view = ViewDef::new(
        "V",
        vec![
            Schema::with_key("r1", &["A", "B", "X"], &["A", "B"]).unwrap(),
            Schema::with_key("r2", &["X", "C"], &["C"]).unwrap(),
        ],
        Predicate::col_eq(2, 3),
        vec![0, 1, 4],
    )
    .unwrap();
    assert!(view.is_fully_keyed());

    let mut source = Source::new(Scenario::Indexed);
    for s in view.base() {
        source.add_relation(s.clone(), 20, None, &[]).unwrap();
    }
    source
        .load(
            "r1",
            [
                Tuple::ints([1, 1, 7]),
                Tuple::ints([1, 2, 7]),
                Tuple::ints([2, 1, 8]),
            ],
        )
        .unwrap();
    source
        .load("r2", [Tuple::ints([7, 100]), Tuple::ints([8, 200])])
        .unwrap();

    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).unwrap();
    let warehouse = AlgorithmKind::EcaKey.instantiate(&view, initial).unwrap();

    // Delete r1[1,1,7]: only the (A,B) = (1,1) derivation goes; (1,2)
    // stays even though it shares A = 1. Then a racing insert re-derives
    // through r2[8,200].
    let updates = vec![
        Update::insert("r1", Tuple::ints([3, 3, 8])),
        Update::delete("r1", Tuple::ints([1, 1, 7])),
    ];
    let report = Simulation::new(source, warehouse, updates)
        .unwrap()
        .run(Policy::AllUpdatesFirst)
        .unwrap();
    assert!(report.converged());
    assert_eq!(report.final_mv.count(&Tuple::ints([1, 1, 100])), 0);
    assert_eq!(report.final_mv.count(&Tuple::ints([1, 2, 100])), 1);
    assert_eq!(report.final_mv.count(&Tuple::ints([3, 3, 200])), 1);
}

/// The cost study's small-J caveat: "This result continues to hold over
/// wide ranges of the join selectivity J, except if J is very small."
/// With J = 1 at tiny C, ECA's advantage over RV shrinks drastically.
#[test]
fn small_j_shrinks_the_gap() {
    let small = Params {
        cardinality: 8,
        join_factor: 1,
        ..Params::default()
    };
    let big = Params {
        cardinality: 100,
        join_factor: 4,
        ..Params::default()
    };
    let gap = |p: Params| {
        let eca = eca_analytic::bytes::b_eca_best(&p, 3);
        let rv = eca_analytic::bytes::b_rv_best(&p);
        rv / eca.max(1.0)
    };
    assert!(
        gap(big) > 10.0 * gap(small),
        "big {} small {}",
        gap(big),
        gap(small)
    );
}
