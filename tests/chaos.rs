//! Chaos acceptance tests: the reliable session layer plus the
//! warehouse recovery policy must keep every run convergent no matter
//! what the fault layer injects — drops, duplicates, reorders, corrupt
//! frames, connection resets and source restarts — and a fault-free run
//! through the full stack must charge exactly the same logical meters
//! as the plain in-memory scheduler, so the golden traces carry over.
//!
//! Scenarios: Example 2 (the paper's canonical anomaly setup), the
//! Example 6 workload, and the 4-source × 8-view stress fixture from
//! `concurrent_stress.rs`.

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update};
use eca_sim::{ChaosProfile, ChaosRunReport, ChaosSimulation, MultiSimulation, Policy, SimError};
use eca_source::Source;
use eca_storage::Scenario;
use eca_wire::FaultPlan;
use eca_workload::{Example6, Params, UpdateMix};

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

fn example2_fixture() -> (Source, ViewDef, Vec<Update>) {
    let view = ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap();
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source.load("r1", [Tuple::ints([1, 2])]).unwrap();
    let script = vec![
        Update::insert("r2", Tuple::ints([2, 3])),
        Update::insert("r1", Tuple::ints([4, 2])),
    ];
    (source, view, script)
}

/// Example 2's script over Example 5's keyed view shape (§5.4): `W` keys
/// `r1`, `Y` keys `r2`, and both are projected, so ECA-Key applies. The
/// script's data respects both keys.
fn example2_keyed_fixture() -> (Source, ViewDef, Vec<Update>) {
    let s1 = Schema::with_key("r1", &["W", "X"], &["W"]).unwrap();
    let s2 = Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap();
    let view = ViewDef::new(
        "V",
        vec![s1.clone(), s2.clone()],
        Predicate::col_eq(1, 2),
        vec![0, 3],
    )
    .unwrap();
    let mut source = Source::new(Scenario::Indexed);
    source.add_relation(s1, 20, Some("X"), &[]).unwrap();
    source.add_relation(s2, 20, Some("X"), &[]).unwrap();
    source.load("r1", [Tuple::ints([1, 2])]).unwrap();
    let script = vec![
        Update::insert("r2", Tuple::ints([2, 3])),
        Update::insert("r1", Tuple::ints([4, 2])),
    ];
    (source, view, script)
}

fn example6_fixture(seed: u64) -> (Source, ViewDef, Vec<Update>) {
    let workload = Example6::new(Params::default(), seed);
    let source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::view().unwrap();
    let script = workload.updates(12, UpdateMix::Mixed);
    (source, view, script)
}

/// A keyed variant of the Example 6 join chain. Every relation's key is
/// projected (the §5.4 precondition), and the deterministic data keeps
/// each key unique: `r1(i, i%D)`, `r2(i%D, 100+i)`, `r3(100+i, 1000+i)`.
/// The script mixes key-fresh inserts with deletes of loaded tuples so
/// the chaos sweep exercises ECA-Key's local `key-delete` path.
fn example6_keyed_fixture() -> (Source, ViewDef, Vec<Update>) {
    const N: i64 = 24;
    const D: i64 = 4;
    let s1 = Schema::with_key("r1", &["W", "X"], &["W"]).unwrap();
    let s2 = Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap();
    let s3 = Schema::with_key("r3", &["Y", "Z"], &["Z"]).unwrap();
    let view = ViewDef::new(
        "V",
        vec![s1.clone(), s2.clone(), s3.clone()],
        Predicate::col_eq(1, 2).and(Predicate::col_eq(3, 4)),
        vec![0, 3, 5],
    )
    .unwrap();
    let mut source = Source::new(Scenario::Indexed);
    source.add_relation(s1, 20, Some("X"), &[]).unwrap();
    source.add_relation(s2, 20, Some("X"), &["Y"]).unwrap();
    source.add_relation(s3, 20, Some("Y"), &[]).unwrap();
    source
        .load("r1", (0..N).map(|i| Tuple::ints([i, i % D])))
        .unwrap();
    source
        .load("r2", (0..N).map(|i| Tuple::ints([i % D, 100 + i])))
        .unwrap();
    source
        .load("r3", (0..N).map(|i| Tuple::ints([100 + i, 1000 + i])))
        .unwrap();
    let script = (0..12)
        .map(|j| match j % 6 {
            0 => Update::insert("r1", Tuple::ints([1000 + j, j % D])),
            1 => Update::insert("r2", Tuple::ints([j % D, 100 + N + j])),
            2 => Update::insert("r3", Tuple::ints([100 + j, 1000 + N + j])),
            3 => Update::delete("r1", Tuple::ints([j / 2, (j / 2) % D])),
            4 => Update::delete("r2", Tuple::ints([(j / 2) % D, 100 + j / 2])),
            _ => Update::delete("r3", Tuple::ints([100 + j / 2, 1000 + j / 2])),
        })
        .collect();
    (source, view, script)
}

/// One single-site chaos simulation over `fixture` with `profile`.
fn single_site(
    kind: AlgorithmKind,
    fixture: (Source, ViewDef, Vec<Update>),
    profile: ChaosProfile,
) -> ChaosSimulation {
    let (source, view, script) = fixture;
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).unwrap();
    let maintainer = kind
        .instantiate_with_base(&view, initial, Some(snapshot))
        .unwrap();
    let mut sim = ChaosSimulation::new();
    let site = sim.add_source_with("s0", source, script, profile);
    sim.add_view(site, maintainer).unwrap();
    sim
}

// The concurrent_stress fixture, shrunk to its chaos-relevant core.
const SOURCES: usize = 4;
const UPDATES_PER_SOURCE: usize = 50;
const JOIN_DOMAIN: i64 = 7;
const PRELOAD: i64 = 30;

fn relation_names(s: usize) -> (String, String) {
    (format!("r{s}_1"), format!("r{s}_2"))
}

fn stress_source(s: usize) -> Source {
    let (r1, r2) = relation_names(s);
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new(&r1, &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new(&r2, &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source
        .load(&r1, (0..PRELOAD).map(|j| Tuple::ints([j, j % JOIN_DOMAIN])))
        .unwrap();
    source
        .load(
            &r2,
            (0..PRELOAD).map(|j| Tuple::ints([j % JOIN_DOMAIN, 100 + j])),
        )
        .unwrap();
    source
}

fn stress_views(s: usize) -> Vec<ViewDef> {
    let (r1, r2) = relation_names(s);
    [vec![0usize], vec![3]]
        .into_iter()
        .enumerate()
        .map(|(v, proj)| {
            ViewDef::new(
                format!("V{s}_{v}"),
                vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])],
                Predicate::col_eq(1, 2),
                proj,
            )
            .unwrap()
        })
        .collect()
}

fn stress_script(s: usize) -> Vec<Update> {
    let (r1, r2) = relation_names(s);
    (0..UPDATES_PER_SOURCE as i64)
        .map(|i| match i % 5 {
            4 => {
                let j = i / 5;
                Update::delete(&r1, Tuple::ints([j, j % JOIN_DOMAIN]))
            }
            n if n % 2 == 0 => Update::insert(&r1, Tuple::ints([1000 + i, i % JOIN_DOMAIN])),
            _ => Update::insert(&r2, Tuple::ints([i % JOIN_DOMAIN, 2000 + i])),
        })
        .collect()
}

fn stress_chaos(profiles: impl Fn(usize) -> ChaosProfile) -> ChaosSimulation {
    let mut sim = ChaosSimulation::new();
    for s in 0..SOURCES {
        let site = sim.add_source_with(
            format!("s{s}"),
            stress_source(s),
            stress_script(s),
            profiles(s),
        );
        let probe = stress_source(s);
        for view in stress_views(s) {
            let initial = view.eval(&probe.snapshot()).unwrap();
            sim.add_view(
                site,
                AlgorithmKind::Eca.instantiate(&view, initial).unwrap(),
            )
            .unwrap();
        }
    }
    sim
}

/// The per-site, per-direction fault plans every scenario is swept
/// through: together they cover drops, duplicates, reorders, corruption
/// and connection resets at three distinct seeds.
fn fault_sweeps(seed: u64) -> Vec<(&'static str, ChaosProfile)> {
    vec![
        (
            "drops",
            ChaosProfile::symmetric(FaultPlan::drops(seed, 0.3)),
        ),
        (
            "duplicates",
            ChaosProfile::symmetric(FaultPlan::duplicates(seed, 0.3)),
        ),
        (
            "reorders",
            ChaosProfile::symmetric(FaultPlan::delays(seed, 0.3, 4)),
        ),
        (
            "mixed+resets",
            ChaosProfile::symmetric(FaultPlan::mixed(seed, 0.1).with_resets(&[6])),
        ),
    ]
}

fn assert_clean(report: &ChaosRunReport, label: &str) {
    assert!(report.quiescent, "{label}: warehouse did not settle");
    assert!(
        report.converged(),
        "{label}: a view diverged from its source"
    );
}

// ---------------------------------------------------------------------
// Fault-free meter identity (golden traces carry over)
// ---------------------------------------------------------------------

/// With no faults, the full `ReliableLink` stack must charge exactly the
/// logical meters the plain in-memory scheduler charges — per policy,
/// per seed — so every golden byte count stays valid.
#[test]
fn fault_free_chaos_meters_match_plain_scheduler() {
    for policy in [
        Policy::Serial,
        Policy::AllUpdatesFirst,
        Policy::Random { seed: 0 },
        Policy::Random { seed: 7 },
    ] {
        let (source, view, script) = example2_fixture();
        let snapshot = source.snapshot();
        let initial = view.eval(&snapshot).unwrap();
        let mut plain = MultiSimulation::new();
        let site = plain.add_source("s0", source, script);
        plain
            .add_view(
                site,
                AlgorithmKind::Eca
                    .instantiate_with_base(&view, initial, Some(snapshot))
                    .unwrap(),
            )
            .unwrap();
        let plain = plain.run(policy).unwrap();

        let chaos = single_site(AlgorithmKind::Eca, example2_fixture(), ChaosProfile::none())
            .run(policy)
            .unwrap();
        assert_clean(&chaos, &format!("fault-free {policy:?}"));
        let (p, c) = (&plain.sites[0], &chaos.sites[0]);
        assert_eq!(p.query_messages, c.query_messages, "{policy:?}");
        assert_eq!(p.answer_messages, c.answer_messages, "{policy:?}");
        assert_eq!(p.notification_messages, c.notification_messages);
        assert_eq!(p.answer_bytes, c.answer_bytes, "{policy:?}");
        assert_eq!(p.answer_tuples, c.answer_tuples, "{policy:?}");
        assert_eq!(p.bytes_s2w, c.bytes_s2w, "{policy:?}");
        assert_eq!(p.bytes_w2s, c.bytes_w2s, "{policy:?}");
        assert_eq!(plain.views[0].final_mv, chaos.views[0].final_mv);
        assert_eq!(chaos.stats.retransmits, 0, "{policy:?}");
        assert_eq!(chaos.stats.stale_answers, 0, "{policy:?}");
    }
}

// ---------------------------------------------------------------------
// Example 2 under injected faults
// ---------------------------------------------------------------------

/// Example 2 with Eca and EcaKey under `Policy::Random`, swept through
/// all fault families at three seeds each: every run must converge to
/// the same final view a fault-free run produces.
#[test]
fn example2_converges_under_every_fault_family() {
    for kind in [AlgorithmKind::Eca, AlgorithmKind::EcaKey] {
        // ECA-Key requires its §5.4 precondition (every key projected),
        // so its sweep runs the keyed shape of the same script; each
        // shape is compared against its own fault-free golden.
        let fixture = || match kind {
            AlgorithmKind::EcaKey => example2_keyed_fixture(),
            _ => example2_fixture(),
        };
        let golden = single_site(AlgorithmKind::Eca, fixture(), ChaosProfile::none())
            .run(Policy::Serial)
            .unwrap()
            .views[0]
            .final_mv
            .clone();
        for seed in [1, 2, 3] {
            for (family, profile) in fault_sweeps(seed) {
                let label = format!("example2 {kind:?} seed {seed} {family}");
                let report = single_site(kind, fixture(), profile)
                    .run(Policy::Random { seed })
                    .unwrap();
                assert_clean(&report, &label);
                assert_eq!(report.views[0].final_mv, golden, "{label}");
            }
        }
    }
}

/// Basic is not compensation-safe: re-issuing a pending query after a
/// reset would re-introduce the §4 anomalies, so the recovery policy
/// must take it straight to an RV-style resync — and still converge.
/// (Basic's §4 correctness argument needs the serial interleaving, so
/// the chaos run uses `Policy::Serial` like the paper does.)
#[test]
fn example2_basic_with_resync_survives_resets() {
    let golden = single_site(AlgorithmKind::Eca, example2_fixture(), ChaosProfile::none())
        .run(Policy::Serial)
        .unwrap()
        .views[0]
        .final_mv
        .clone();
    for reset_at in [1, 2, 3] {
        let profile = ChaosProfile {
            s2w: FaultPlan::none(),
            w2s: FaultPlan::none().with_resets(&[reset_at]),
            restarts: vec![],
        };
        let label = format!("example2 Basic reset@{reset_at}");
        let report = single_site(AlgorithmKind::Basic, example2_fixture(), profile)
            .run(Policy::Serial)
            .unwrap();
        assert_clean(&report, &label);
        assert_eq!(report.views[0].final_mv, golden, "{label}");
    }
}

// ---------------------------------------------------------------------
// Example 6 under injected faults
// ---------------------------------------------------------------------

#[test]
fn example6_converges_under_every_fault_family() {
    for kind in [AlgorithmKind::Eca, AlgorithmKind::EcaKey] {
        // As in the Example 2 sweep: ECA-Key runs the keyed variant of
        // the join chain, compared against that variant's own golden.
        let fixture = || match kind {
            AlgorithmKind::EcaKey => example6_keyed_fixture(),
            _ => example6_fixture(42),
        };
        let golden = single_site(AlgorithmKind::Eca, fixture(), ChaosProfile::none())
            .run(Policy::Serial)
            .unwrap()
            .views[0]
            .final_mv
            .clone();
        for seed in [11, 12, 13] {
            for (family, profile) in fault_sweeps(seed) {
                let label = format!("example6 {kind:?} seed {seed} {family}");
                let report = single_site(kind, fixture(), profile)
                    .run(Policy::Random { seed })
                    .unwrap();
                assert_clean(&report, &label);
                assert_eq!(report.views[0].final_mv, golden, "{label}");
            }
        }
    }
}

#[test]
fn example6_basic_with_resync_survives_resets() {
    let golden = single_site(
        AlgorithmKind::Eca,
        example6_fixture(42),
        ChaosProfile::none(),
    )
    .run(Policy::Serial)
    .unwrap()
    .views[0]
        .final_mv
        .clone();
    let profile = ChaosProfile {
        s2w: FaultPlan::none(),
        w2s: FaultPlan::none().with_resets(&[2, 9]),
        restarts: vec![],
    };
    let report = single_site(AlgorithmKind::Basic, example6_fixture(42), profile)
        .run(Policy::Serial)
        .unwrap();
    assert_clean(&report, "example6 Basic resets");
    assert_eq!(report.views[0].final_mv, golden);
}

// ---------------------------------------------------------------------
// Self-maintenance (ECA-Aux) under injected faults
// ---------------------------------------------------------------------

/// The keyed fig-6.x join chain ECA-Aux self-maintains: same data and
/// script as [`example6_fixture`], view schemas carrying the key
/// metadata the auxiliary derivation needs.
fn example6_selfmaint_fixture() -> (Source, ViewDef, Vec<Update>) {
    let workload = Example6::new(Params::default(), 42);
    let source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::keyed_view().unwrap();
    let script = workload.updates(12, UpdateMix::Mixed);
    (source, view, script)
}

/// Channel faults must not cost ECA-Aux its self-maintenance: drops,
/// duplicates, reorders, corruption and connection resets are healed
/// below the session layer, so every compensating query is still
/// answered locally — zero logical queries, zero answer bytes — and the
/// final view matches the fault-free ECA golden.
#[test]
fn eca_aux_stays_fully_local_under_every_fault_family() {
    let golden = single_site(
        AlgorithmKind::Eca,
        example6_selfmaint_fixture(),
        ChaosProfile::none(),
    )
    .run(Policy::Serial)
    .unwrap()
    .views[0]
        .final_mv
        .clone();
    for seed in [21, 22, 23] {
        for (family, profile) in fault_sweeps(seed) {
            let label = format!("selfmaint seed {seed} {family}");
            let report = single_site(AlgorithmKind::EcaAux, example6_selfmaint_fixture(), profile)
                .run(Policy::Random { seed })
                .unwrap();
            assert_clean(&report, &label);
            assert_eq!(report.views[0].final_mv, golden, "{label}");
            assert_eq!(
                report.sites[0].query_messages, 0,
                "{label}: a fault leaked a round-trip"
            );
            assert_eq!(report.sites[0].answer_bytes, 0, "{label}");
        }
    }
}

/// A source restart loses the auxiliary views' ground truth: the view
/// degrades to an RV-style resync, `reset_to` marks every auxiliary
/// stale, and the next update triggers their rebuild queries — after
/// which maintenance is local again and the run converges to the
/// fault-free golden.
#[test]
fn eca_aux_rebuilds_auxiliaries_after_source_restart() {
    let golden = single_site(
        AlgorithmKind::Eca,
        example6_selfmaint_fixture(),
        ChaosProfile::none(),
    )
    .run(Policy::Serial)
    .unwrap()
    .views[0]
        .final_mv
        .clone();
    let profile = ChaosProfile::none().with_restarts(&[8]);
    let report = single_site(AlgorithmKind::EcaAux, example6_selfmaint_fixture(), profile)
        .run(Policy::Random { seed: 31 })
        .unwrap();
    assert_clean(&report, "selfmaint restart");
    assert_eq!(report.views[0].final_mv, golden);
    let s = report.stats;
    assert_eq!(s.restarts, 1, "{s:?}");
    assert!(s.resyncs_started >= 1, "restart must degrade: {s:?}");
    assert_eq!(
        s.resyncs_completed, s.resyncs_started,
        "every resync must complete: {s:?}"
    );
    // The wire carries the resync query plus one rebuild query per
    // auxiliary (three relations) — and nothing else, because updates
    // before the restart and after the rebuild are answered locally.
    assert!(
        report.sites[0].query_messages >= 4,
        "resync + 3 aux rebuilds expected, saw {}",
        report.sites[0].query_messages
    );
    // Quiescence proves the rebuilds were answered and installed (a
    // pending refresh blocks `is_quiescent`).
}

/// Mid-run connection resets with faults on both directions: the session
/// survives (`reconnect`), no auxiliary is invalidated, and
/// self-maintenance continues without a single compensating round-trip.
#[test]
fn eca_aux_survives_resets_without_losing_locality() {
    let golden = single_site(
        AlgorithmKind::Eca,
        example6_selfmaint_fixture(),
        ChaosProfile::none(),
    )
    .run(Policy::Serial)
    .unwrap()
    .views[0]
        .final_mv
        .clone();
    let profile = ChaosProfile::symmetric(FaultPlan::mixed(77, 0.1).with_resets(&[3, 9]));
    let report = single_site(AlgorithmKind::EcaAux, example6_selfmaint_fixture(), profile)
        .run(Policy::Random { seed: 55 })
        .unwrap();
    assert_clean(&report, "selfmaint resets");
    assert_eq!(report.views[0].final_mv, golden);
    assert!(report.stats.resets >= 1, "{:?}", report.stats);
    assert_eq!(report.sites[0].query_messages, 0);
}

// ---------------------------------------------------------------------
// Multi-source stress under injected faults
// ---------------------------------------------------------------------

/// The 4-source × 8-view stress scenario with a different fault family
/// on every site — drops, duplicates, reorders, and mixed-with-resets —
/// at three scheduler seeds. Every view must converge.
#[test]
fn multi_source_stress_converges_under_per_site_fault_mix() {
    for seed in [5, 6, 7] {
        let report = stress_chaos(|s| match s {
            0 => ChaosProfile::symmetric(FaultPlan::drops(seed + 100, 0.15)),
            1 => ChaosProfile::symmetric(FaultPlan::duplicates(seed + 200, 0.2)),
            2 => ChaosProfile::symmetric(FaultPlan::delays(seed + 300, 0.2, 5)),
            _ => ChaosProfile::symmetric(FaultPlan::mixed(seed + 400, 0.05).with_resets(&[40])),
        })
        .run(Policy::Random { seed })
        .unwrap();
        assert_clean(&report, &format!("stress seed {seed}"));
        let s = report.stats;
        assert!(
            s.drops > 0 && s.duplicates > 0 && s.delays > 0,
            "seed {seed}: every family must inject ({s:?})"
        );
        assert!(s.resets >= 1, "seed {seed}: the scripted reset must fire");
    }
}

/// A scripted source restart loses session state on both ends: the
/// warehouse must degrade every view over the site and recover each via
/// an RV-style resync (Alg. D.1) — the acceptance criterion's
/// "≥ 1 run exercising the resync path".
#[test]
fn multi_source_stress_restart_exercises_rv_resync() {
    let report = stress_chaos(|s| match s {
        0 => ChaosProfile::symmetric(FaultPlan::mixed(900, 0.05)).with_restarts(&[250]),
        _ => ChaosProfile::none(),
    })
    .run(Policy::Random { seed: 0xECA })
    .unwrap();
    assert_clean(&report, "stress restart");
    let s = report.stats;
    assert_eq!(s.restarts, 1, "{s:?}");
    assert!(s.resyncs_started >= 1, "restart must degrade views: {s:?}");
    assert_eq!(
        s.resyncs_completed, s.resyncs_started,
        "every resync must complete: {s:?}"
    );
}

/// Retry exhaustion is the other road into a resync: with the retry
/// budget at zero, the first reset degrades any view with a pending
/// query even though ECA could have re-issued safely.
#[test]
fn retry_exhaustion_falls_back_to_resync_and_converges() {
    let profile = ChaosProfile {
        s2w: FaultPlan::none(),
        w2s: FaultPlan::none().with_resets(&[1]),
        restarts: vec![],
    };
    let mut sim = single_site(AlgorithmKind::Eca, example2_fixture(), profile);
    sim.set_max_retries(0);
    let report = sim.run(Policy::Random { seed: 4 }).unwrap();
    assert_clean(&report, "retry exhaustion");
    assert!(
        report.stats.resyncs_started >= 1,
        "with zero retries the reset must degrade: {:?}",
        report.stats
    );
}

/// A hopeless channel (100% loss) must not hang: the links wedge, the
/// harness rewires, and if the plan keeps losing everything the run ends
/// in a protocol error rather than spinning forever.
#[test]
fn total_loss_is_detected_not_hung() {
    // Total loss on the s2w direction, forever: nothing can converge,
    // but the step cap must turn that into an error.
    let profile = ChaosProfile {
        s2w: FaultPlan::drops(1, 1.0),
        w2s: FaultPlan::none(),
        restarts: vec![],
    };
    let result = single_site(AlgorithmKind::Eca, example2_fixture(), profile)
        .run(Policy::Random { seed: 1 });
    match result {
        Err(SimError::Protocol(msg)) => assert!(msg.contains("step cap"), "{msg}"),
        Ok(report) => panic!(
            "a run with 100% loss cannot converge, got quiescent={}",
            report.quiescent
        ),
        Err(e) => panic!("expected the livelock guard, got {e}"),
    }
}
