//! TCP loopback smoke test: the Example 2 scenario over a real socket
//! must reach the same final view — with identical message and byte
//! meters — as the in-memory scheduler. Run by CI as the wire-level
//! counterpart of the golden-trace tests.

use std::net::TcpListener;
use std::thread;

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update};
use eca_sim::{Policy, Simulation};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::Warehouse;
use eca_wire::{Message, Role, TcpTransport, TransferMeter, Transport};

fn view2() -> ViewDef {
    ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap()
}

fn build_source() -> Source {
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source.load("r1", [Tuple::ints([1, 2])]).unwrap();
    source
}

fn script() -> Vec<Update> {
    vec![
        Update::insert("r2", Tuple::ints([2, 3])),
        Update::insert("r1", Tuple::ints([4, 2])),
    ]
}

#[test]
fn example2_over_tcp_matches_in_memory_run() {
    let view = view2();

    // Reference in-memory run. Source::serve executes its entire script
    // before answering anything — the AllUpdatesFirst interleaving.
    let reference = {
        let source = build_source();
        let initial = view.eval(&source.snapshot()).unwrap();
        let maintainer = AlgorithmKind::Eca.instantiate(&view, initial).unwrap();
        Simulation::new(source, maintainer, script())
            .unwrap()
            .run(Policy::AllUpdatesFirst)
            .unwrap()
    };

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let source_thread = thread::spawn(move || {
        let mut source = build_source();
        let (stream, _) = listener.accept().unwrap();
        let mut transport = TcpTransport::new(stream, Role::Source, TransferMeter::new()).unwrap();
        source.serve(&mut transport, &script()).unwrap()
    });

    let meter = TransferMeter::new();
    let mut transport = TcpTransport::connect(addr, Role::Warehouse, meter.clone()).unwrap();
    let mut warehouse = Warehouse::new();
    let src = warehouse.add_source("source");
    let initial = view.eval(&build_source().snapshot()).unwrap();
    let view_id = warehouse
        .add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
        .unwrap();

    let mut notifications = 0u64;
    while notifications < reference.notification_messages || !warehouse.is_quiescent() {
        let msg = transport
            .recv()
            .unwrap()
            .expect("source hung up before the warehouse settled");
        if matches!(msg, Message::UpdateNotification { .. }) {
            notifications += 1;
        }
        if let Message::QueryAnswer { answer, .. } = &msg {
            transport.meter().record_answer_payload(
                answer.encoded_len() as u64,
                answer.pos_len() + answer.neg_len(),
            );
        }
        for reply in warehouse.on_message(src, msg).unwrap() {
            transport.send(&reply).unwrap();
        }
    }
    drop(transport); // hang up: ends the source's serve loop
    let stats = source_thread.join().unwrap();

    assert_eq!(warehouse.materialized(view_id), &reference.final_mv);
    assert!(warehouse.is_quiescent());
    assert_eq!(stats.notifications, reference.notification_messages);
    // Framing (the length prefix) is never metered: the wire run reports
    // the paper's M and B identically to the simulator.
    assert_eq!(meter.messages_w2s(), reference.query_messages);
    assert_eq!(
        meter.messages_s2w() - stats.notifications,
        reference.answer_messages
    );
    assert_eq!(meter.answer_bytes(), reference.answer_bytes);
    assert_eq!(meter.bytes_s2w(), reference.bytes_s2w);
    assert_eq!(meter.bytes_w2s(), reference.bytes_w2s);
}
