//! End-to-end cost assertions: measured costs from full-stack runs must
//! track the paper's Appendix-D closed forms in *shape* — who wins, by
//! roughly what factor, and where the crossovers fall.

use eca_bench::{measure, Corner};
use eca_storage::Scenario;
use eca_workload::Params;

fn p() -> Params {
    Params::default()
}

/// §6.1: message counts are exact, not approximate.
#[test]
fn message_counts_are_exact() {
    for k in [1u64, 5, 12] {
        let eca = measure(p(), 3, k, Corner::EcaBest, Scenario::Indexed);
        assert_eq!(
            eca.maintenance_messages,
            eca_analytic::messages::m_eca(k),
            "k={k}"
        );
        let rv1 = measure(p(), 3, k, Corner::RvWorst, Scenario::Indexed);
        assert_eq!(
            rv1.maintenance_messages,
            eca_analytic::messages::m_rv(k, 1),
            "k={k}"
        );
        let rvk = measure(p(), 3, k, Corner::RvBest, Scenario::Indexed);
        assert_eq!(
            rvk.maintenance_messages,
            eca_analytic::messages::m_rv(k, k),
            "k={k}"
        );
    }
}

/// Figure 6.2's headline: except for very small relations, ECA moves far
/// less data than recomputation.
#[test]
fn fig62_eca_dominates_for_realistic_c() {
    for c in [20u64, 60, 100] {
        let params = Params {
            cardinality: c,
            ..Params::default()
        };
        let eca = measure(params, 3, 3, Corner::EcaWorst, Scenario::Indexed);
        let rv = measure(params, 3, 3, Corner::RvBest, Scenario::Indexed);
        assert!(
            (eca.paper_bytes as f64) < rv.paper_bytes as f64 / 2.0,
            "C={c}: eca {} rv {}",
            eca.paper_bytes,
            rv.paper_bytes
        );
    }
}

/// Figure 6.2's caveat: for tiny relations the advantage shrinks to
/// nothing (paper: "unless the relations are extremely small").
#[test]
fn fig62_advantage_vanishes_for_tiny_c() {
    let params = Params {
        cardinality: 4,
        ..Params::default()
    };
    let eca = measure(params, 3, 3, Corner::EcaBest, Scenario::Indexed);
    let rv = measure(params, 3, 3, Corner::RvBest, Scenario::Indexed);
    assert!(
        eca.paper_bytes * 4.0 > rv.paper_bytes,
        "at C=4 the gap must be small: eca {} rv {}",
        eca.paper_bytes,
        rv.paper_bytes
    );
}

/// Figure 6.3's shape: measured ECA-best bytes grow linearly in k and
/// stay within 2x of the closed form.
#[test]
fn fig63_eca_best_tracks_closed_form() {
    for k in [15u64, 45, 90] {
        let m = measure(p(), 3, k, Corner::EcaBest, Scenario::Indexed);
        let analytic = eca_analytic::bytes::b_eca_best(&p(), k);
        let ratio = m.paper_bytes / analytic;
        assert!(
            (0.5..2.0).contains(&ratio),
            "k={k}: measured {} analytic {analytic}",
            m.paper_bytes
        );
    }
}

/// Figure 6.3's crossover: by k = 120 (past the paper's k = C = 100),
/// one recomputation beats even best-case ECA on bytes.
#[test]
fn fig63_crossover_reached() {
    let k = 120;
    let eca = measure(p(), 3, k, Corner::EcaBest, Scenario::Indexed);
    let rv = measure(p(), 3, k, Corner::RvBest, Scenario::Indexed);
    assert!(
        rv.paper_bytes < eca.paper_bytes,
        "rv {} should beat eca {} at k={k}",
        rv.paper_bytes,
        eca.paper_bytes
    );
}

/// Figure 6.4 (Scenario 1): RV costs ≈ 3I per recompute; ECA-best costs
/// ≈ (J+1) per update; the crossover lands at tiny k (paper: k = 3).
#[test]
fn fig64_scenario1_shapes() {
    let params = p();
    let rv = measure(params, 3, 5, Corner::RvBest, Scenario::Indexed);
    // One recompute reads each relation once (relations grew slightly
    // from churn inserts, so allow one extra block per relation).
    let i = params.blocks_per_relation();
    assert!(
        (3 * i..=3 * (i + 1)).contains(&rv.io_reads),
        "rv {}",
        rv.io_reads
    );

    // ECA at k=2 beats RV; at k=6 RV wins (paper crossover k=3).
    let eca2 = measure(params, 3, 2, Corner::EcaBest, Scenario::Indexed);
    let rv2 = measure(params, 3, 2, Corner::RvBest, Scenario::Indexed);
    assert!(eca2.io_reads < rv2.io_reads);
    let eca6 = measure(params, 3, 6, Corner::EcaBest, Scenario::Indexed);
    let rv6 = measure(params, 3, 6, Corner::RvBest, Scenario::Indexed);
    assert!(eca6.io_reads > rv6.io_reads);
}

/// Figure 6.5 (Scenario 2): recomputation is cubic in I; ECA stays
/// linear in k; crossover in single-digit k (paper: 5 < k < 9).
#[test]
fn fig65_scenario2_shapes() {
    let params = p();
    let s2 = Scenario::nested_loop_default();
    let rv = measure(params, 3, 4, Corner::RvBest, s2);
    let i = params.blocks_per_relation();
    // Our executor charges I + I² + I³ (paper quotes the dominant I³);
    // churn may add one block per relation.
    assert!(
        rv.io_reads >= i * i * i && rv.io_reads <= (i + 1).pow(3) + (i + 1).pow(2) + (i + 1),
        "rv {} vs cubic bounds around I={i}",
        rv.io_reads
    );

    let eca3 = measure(params, 3, 3, Corner::EcaBest, s2);
    let rv3 = measure(params, 3, 3, Corner::RvBest, s2);
    assert!(
        eca3.io_reads < rv3.io_reads,
        "eca {} rv {}",
        eca3.io_reads,
        rv3.io_reads
    );
    let eca12 = measure(params, 3, 12, Corner::EcaBest, s2);
    let rv12 = measure(params, 3, 12, Corner::RvBest, s2);
    assert!(
        eca12.io_reads > rv12.io_reads,
        "eca {} rv {}",
        eca12.io_reads,
        rv12.io_reads
    );
}

/// Self-maintenance: ECA-Aux's measured message count must equal the
/// exact closed form (not approximately — the local-answer rule is
/// deterministic) at every coverage level, and the measured local
/// fraction must match the keyness-driven prediction.
#[test]
fn selfmaint_messages_match_closed_form_exactly() {
    for (k, seed) in [(8u64, 2u64), (16, 5), (24, 9)] {
        for point in eca_bench::selfmaint::storage_curve(k, seed) {
            assert!(point.converged, "k={k} coverage {}", point.covered);
            assert_eq!(
                point.messages_measured, point.messages_analytic,
                "k={k} coverage {}",
                point.covered
            );
            // Every remote update costs exactly one query + one answer;
            // every local update costs nothing.
            assert_eq!(point.messages_measured, 2 * point.remote_updates);
            assert_eq!(point.local_updates + point.remote_updates, k);
            // The uniform-update expectation brackets the script-exact
            // count (they agree exactly when the script is balanced).
            let coverage = [point.covered >= 1, point.covered >= 2, point.covered >= 3];
            let f = eca_analytic::selfmaint::local_fraction(&coverage);
            match point.covered {
                3 => assert_eq!(f, 1.0),
                2 => assert!((f - 1.0 / 3.0).abs() < 1e-12),
                _ => assert_eq!(f, 0.0),
            }
        }
    }
}

/// Self-maintenance bytes: with full coverage no answer bytes flow at
/// all; remote updates transfer what ECA would.
#[test]
fn selfmaint_bytes_track_remote_updates() {
    let curve = eca_bench::selfmaint::storage_curve(16, 4);
    assert_eq!(curve[3].paper_bytes, 0.0, "full coverage transfers nothing");
    // Zero coverage behaves exactly like ECA on the same script.
    assert_eq!(curve[0].paper_bytes, curve[0].paper_bytes_eca);
    assert_eq!(curve[0].messages_measured, curve[0].messages_eca);
    // Partial coverage sits strictly between the extremes.
    assert!(curve[2].paper_bytes < curve[0].paper_bytes);
    assert!(curve[2].messages_measured < curve[0].messages_measured);
}

/// Every measured corner converges and is at least strongly consistent —
/// the cost study never trades correctness.
#[test]
fn all_cost_corners_remain_correct() {
    for scenario in [Scenario::Indexed, Scenario::nested_loop_default()] {
        for corner in Corner::all() {
            let m = measure(p(), 9, 10, corner, scenario);
            assert!(m.converged, "{corner:?} {scenario:?}");
            assert!(
                m.consistency == "StronglyConsistent" || m.consistency == "Complete",
                "{corner:?} {scenario:?}: {}",
                m.consistency
            );
        }
    }
}
