//! Randomized correctness properties over the full stack: many seeds,
//! mixed insert/delete streams, random event interleavings.
//!
//! These are the paper's Appendix B/C claims exercised as executable
//! properties:
//!
//! * ECA (both variants), ECA-Key, ECA-Local and RV are strongly
//!   consistent on *every* interleaving;
//! * LCA and SC are complete;
//! * the Basic algorithm converges when updates are serialized but
//!   produces anomalies under adversarial interleavings.

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update, UpdateKind};
use eca_sim::{Policy, RunReport, Simulation};
use eca_source::Source;
use eca_storage::Scenario;
use eca_workload::{Example6, Params, UpdateMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_params() -> Params {
    Params {
        cardinality: 24,
        ..Params::default()
    }
}

fn run_example6(kind: AlgorithmKind, seed: u64, k: usize, policy: Policy) -> RunReport {
    let workload = Example6::new(small_params(), seed);
    let source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::view().unwrap();
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).unwrap();
    let warehouse = kind
        .instantiate_with_base(&view, initial, Some(snapshot))
        .unwrap();
    Simulation::new(source, warehouse, workload.updates(k, UpdateMix::Mixed))
        .unwrap()
        .run(policy)
        .unwrap()
}

#[test]
fn eca_strongly_consistent_on_random_interleavings() {
    for seed in 0..30u64 {
        for kind in [AlgorithmKind::Eca, AlgorithmKind::EcaOptimized] {
            let report = run_example6(
                kind,
                seed,
                12,
                Policy::Random {
                    seed: seed * 31 + 5,
                },
            );
            assert!(report.converged(), "seed {seed}");
            let check =
                eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
            assert!(
                check.strongly_consistent,
                "seed {seed} {}: {:?}",
                kind.label(),
                check.violation
            );
        }
    }
}

#[test]
fn lca_complete_on_random_interleavings() {
    for seed in 0..20u64 {
        let report = run_example6(
            AlgorithmKind::Lca,
            seed,
            10,
            Policy::Random { seed: seed + 99 },
        );
        let check =
            eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
        assert!(check.complete, "seed {seed}: {:?}", check.violation);
    }
}

#[test]
fn sc_complete_on_random_interleavings() {
    for seed in 0..20u64 {
        let report = run_example6(
            AlgorithmKind::StoreCopies,
            seed,
            12,
            Policy::Random { seed: seed + 7 },
        );
        let check =
            eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
        assert!(check.complete, "seed {seed}: {:?}", check.violation);
    }
}

#[test]
fn rv_strongly_consistent_when_period_divides_k() {
    // RV only converges if a recompute fires after the last update, i.e.
    // when s divides k; otherwise the view legitimately lags (it is still
    // consistent — every installed state is a valid source state).
    for period in [1u64, 2, 3, 4, 6, 12] {
        for seed in 0..8u64 {
            let report = run_example6(
                AlgorithmKind::RecomputeView { period },
                seed,
                12,
                Policy::Random { seed },
            );
            let check =
                eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
            assert!(
                check.strongly_consistent,
                "period {period} seed {seed}: {:?}",
                check.violation
            );
        }
    }
}

#[test]
fn rv_with_non_dividing_period_is_consistent_but_lags() {
    let mut lagged = 0usize;
    for seed in 0..8u64 {
        let report = run_example6(
            AlgorithmKind::RecomputeView { period: 5 },
            seed,
            12,
            Policy::Random { seed },
        );
        let check =
            eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
        assert!(check.consistent, "seed {seed}: {:?}", check.violation);
        if !check.convergent {
            lagged += 1;
        }
    }
    assert!(
        lagged > 0,
        "with s = 5 and k = 12 the view should lag behind"
    );
}

#[test]
fn basic_converges_when_serialized() {
    for seed in 0..10u64 {
        let report = run_example6(AlgorithmKind::Basic, seed, 10, Policy::Serial);
        assert!(report.converged(), "seed {seed}");
    }
}

#[test]
fn basic_exhibits_anomalies_somewhere() {
    // Over a spread of adversarial runs the basic algorithm must fail at
    // least once (it fails on most of them); this guards against the
    // simulator accidentally serializing everything.
    let failures = (0..10u64)
        .filter(|&seed| {
            !run_example6(AlgorithmKind::Basic, seed, 12, Policy::AllUpdatesFirst).converged()
        })
        .count();
    assert!(
        failures > 0,
        "expected at least one anomaly in 10 adversarial runs"
    );
}

/// A fully keyed view under ECA-Key across random interleavings,
/// including deletions handled locally.
#[test]
fn eca_key_strongly_consistent_on_keyed_views() {
    // V = π_{A,C}(r1(A,B) ⋈ r2(B,C)) with A key of r1 and C key of r2.
    let view = ViewDef::new(
        "V",
        vec![
            Schema::with_key("r1", &["A", "B"], &["A"]).unwrap(),
            Schema::with_key("r2", &["B", "C"], &["C"]).unwrap(),
        ],
        Predicate::col_eq(1, 2),
        vec![0, 3],
    )
    .unwrap();

    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut source = Source::new(Scenario::Indexed);
        for schema in view.base() {
            source.add_relation(schema.clone(), 8, None, &[]).unwrap();
        }
        // Unique keys: A values 0.., C values 1000..; B joins on 0..4.
        let mut next_a = 0i64;
        let mut next_c = 1000i64;
        let mut r1_live = Vec::new();
        let mut r2_live = Vec::new();
        for _ in 0..6 {
            let t = Tuple::ints([next_a, rng.gen_range(0..4)]);
            next_a += 1;
            r1_live.push(t.clone());
        }
        for _ in 0..6 {
            let t = Tuple::ints([rng.gen_range(0..4), next_c]);
            next_c += 1;
            r2_live.push(t.clone());
        }
        source.load("r1", r1_live.iter().cloned()).unwrap();
        source.load("r2", r2_live.iter().cloned()).unwrap();

        let mut updates = Vec::new();
        for _ in 0..10 {
            let on_r1 = rng.gen_bool(0.5);
            let (name, live, key) = if on_r1 {
                ("r1", &mut r1_live, &mut next_a)
            } else {
                ("r2", &mut r2_live, &mut next_c)
            };
            let delete = rng.gen_bool(0.4) && !live.is_empty();
            if delete {
                let idx = rng.gen_range(0..live.len());
                let t = live.swap_remove(idx);
                updates.push(Update {
                    relation: name.into(),
                    kind: UpdateKind::Delete,
                    tuple: t,
                });
            } else {
                let t = if on_r1 {
                    Tuple::ints([*key, rng.gen_range(0..4)])
                } else {
                    Tuple::ints([rng.gen_range(0..4), *key])
                };
                *key += 1;
                live.push(t.clone());
                updates.push(Update {
                    relation: name.into(),
                    kind: UpdateKind::Insert,
                    tuple: t,
                });
            }
        }

        let snapshot = source.snapshot();
        let initial = view.eval(&snapshot).unwrap();
        let warehouse = AlgorithmKind::EcaKey.instantiate(&view, initial).unwrap();
        let report = Simulation::new(source, warehouse, updates)
            .unwrap()
            .run(Policy::Random { seed: seed + 500 })
            .unwrap();
        assert!(report.converged(), "seed {seed}");
        let check =
            eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
        assert!(
            check.strongly_consistent,
            "seed {seed}: {:?}",
            check.violation
        );
    }
}

/// ECA handles duplicate tuples in base relations correctly: inserting the
/// same tuple twice then deleting one copy leaves exactly one derivation.
#[test]
fn duplicate_tuples_across_the_stack() {
    let view = ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap();
    let mut source = Source::new(Scenario::Indexed);
    for schema in view.base() {
        source.add_relation(schema.clone(), 20, None, &[]).unwrap();
    }
    source.load("r2", [Tuple::ints([2, 9])]).unwrap();

    let updates = vec![
        Update::insert("r1", Tuple::ints([1, 2])),
        Update::insert("r1", Tuple::ints([1, 2])),
        Update::delete("r1", Tuple::ints([1, 2])),
    ];
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).unwrap();
    let warehouse = AlgorithmKind::Eca.instantiate(&view, initial).unwrap();
    let report = Simulation::new(source, warehouse, updates)
        .unwrap()
        .run(Policy::AllUpdatesFirst)
        .unwrap();
    assert!(report.converged());
    assert_eq!(report.final_mv.count(&Tuple::ints([1])), 1);
}
