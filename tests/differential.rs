//! Differential testing: the physical storage engine must return exactly
//! the same answers as the logical reference evaluator, for both cost
//! scenarios, across randomized data and query shapes.

use eca_core::{BaseDb, ViewDef};
use eca_relational::{CmpOp, Predicate, Schema, Tuple, Update};
use eca_source::Source;
use eca_storage::Scenario;
use eca_wire::WireQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a random 3-relation chain-join view plus matching data.
fn random_setup(seed: u64) -> (ViewDef, BaseDb, Vec<Update>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let schemas = vec![
        Schema::new("r1", &["W", "X"]),
        Schema::new("r2", &["X", "Y"]),
        Schema::new("r3", &["Y", "Z"]),
    ];
    let cond = Predicate::col_eq(1, 2)
        .and(Predicate::col_eq(3, 4))
        .and(Predicate::col_cmp(0, CmpOp::Gt, 5));
    let proj = vec![0, 5];
    let view = ViewDef::new("V", schemas.clone(), cond, proj).unwrap();

    let mut db = BaseDb::for_view(&view);
    let n = rng.gen_range(10..60);
    for _ in 0..n {
        let j1 = rng.gen_range(0..6);
        let j2 = rng.gen_range(0..6);
        db.insert("r1", Tuple::ints([rng.gen_range(0..20), j1]));
        db.insert("r2", Tuple::ints([rng.gen_range(0..6), j2]));
        db.insert(
            "r3",
            Tuple::ints([rng.gen_range(0..6), rng.gen_range(0..20)]),
        );
    }

    let updates = (0..8)
        .map(|_| {
            let rel = ["r1", "r2", "r3"][rng.gen_range(0..3usize)];
            let t = Tuple::ints([rng.gen_range(0..8), rng.gen_range(0..8)]);
            if rng.gen_bool(0.3) {
                Update::delete(rel, t)
            } else {
                Update::insert(rel, t)
            }
        })
        .collect();
    (view, db, updates)
}

fn build_source(view: &ViewDef, db: &BaseDb, scenario: Scenario) -> Source {
    use eca_core::basedb::BaseLookup;
    let mut source = Source::new(scenario);
    let indexed = matches!(scenario, Scenario::Indexed);
    source
        .add_relation(view.base()[0].clone(), 4, indexed.then_some("X"), &[])
        .unwrap();
    source
        .add_relation(
            view.base()[1].clone(),
            4,
            indexed.then_some("X"),
            if indexed { &["Y"] } else { &[] },
        )
        .unwrap();
    source
        .add_relation(view.base()[2].clone(), 4, indexed.then_some("Y"), &[])
        .unwrap();
    for schema in view.base() {
        let name = schema.relation();
        let tuples: Vec<Tuple> = db
            .bag(name)
            .unwrap()
            .iter()
            .flat_map(|(t, c)| std::iter::repeat_with(move || t.clone()).take(c.max(0) as usize))
            .collect();
        source.load(name, tuples).unwrap();
    }
    source
}

#[test]
fn full_view_answers_match_logical_eval() {
    for seed in 0..15u64 {
        let (view, db, _) = random_setup(seed);
        for scenario in [Scenario::Indexed, Scenario::nested_loop_default()] {
            let mut source = build_source(&view, &db, scenario);
            let wq = WireQuery::from_query(&view.as_query());
            let physical = source.answer(&wq).unwrap();
            let logical = view.eval(&db).unwrap();
            assert_eq!(physical, logical, "seed {seed} {scenario:?}");
        }
    }
}

#[test]
fn substituted_and_compensated_queries_match() {
    for seed in 0..15u64 {
        let (view, db, updates) = random_setup(seed);
        for scenario in [Scenario::Indexed, Scenario::nested_loop_default()] {
            let mut source = build_source(&view, &db, scenario);
            // Single substitution V⟨U⟩.
            for u in &updates {
                let q = view.substitute(u).unwrap();
                let physical = source.answer(&WireQuery::from_query(&q)).unwrap();
                assert_eq!(
                    physical,
                    q.eval(&db).unwrap(),
                    "seed {seed} {u:?} {scenario:?}"
                );
            }
            // Compensated multi-term queries Q = V⟨U2⟩ − V⟨U1⟩⟨U2⟩ …
            let q1 = view.substitute(&updates[0]).unwrap();
            let q2 = view
                .substitute(&updates[1])
                .unwrap()
                .minus(&q1.substitute(&updates[1]));
            let q3 = view
                .substitute(&updates[2])
                .unwrap()
                .minus(&q1.substitute(&updates[2]))
                .minus(&q2.substitute(&updates[2]));
            for q in [&q2, &q3] {
                let physical = source.answer(&WireQuery::from_query(q)).unwrap();
                assert_eq!(physical, q.eval(&db).unwrap(), "seed {seed} {scenario:?}");
            }
        }
    }
}

#[test]
fn answers_match_after_update_replay() {
    // Apply updates to both the engine and the logical mirror; answers
    // must stay identical at every step.
    for seed in 20..30u64 {
        let (view, mut db, updates) = random_setup(seed);
        let mut source = build_source(&view, &db, Scenario::Indexed);
        for u in &updates {
            let logical_effective = db.apply(u);
            let physical_effective = source.execute_update(u);
            assert_eq!(logical_effective, physical_effective, "seed {seed} {u:?}");
            let wq = WireQuery::from_query(&view.as_query());
            assert_eq!(
                source.answer(&wq).unwrap(),
                view.eval(&db).unwrap(),
                "seed {seed}"
            );
        }
    }
}

mod planner_properties {
    //! Property-based differentials for the SPJ planner and the
    //! multi-term evaluation modes: whatever the data, condition, and
    //! projection, the planned pipeline must agree with the
    //! cross-select-project oracle, and batched / parallel evaluation
    //! must agree with plain sequential evaluation.

    use super::*;
    use eca_relational::algebra::{spj, spj_naive};
    use eca_relational::SignedBag;
    use proptest::prelude::*;

    /// A signed bag of binary tuples — negative counts included, since
    /// compensating terms evaluate over signed intermediates.
    fn signed_bag() -> impl Strategy<Value = SignedBag> {
        prop::collection::vec((0i64..6, 0i64..6, -3i64..4), 0..12).prop_map(|rows| {
            let mut bag = SignedBag::new();
            for (a, b, c) in rows {
                bag.add(Tuple::ints([a, b]), c);
            }
            bag
        })
    }

    /// A condition over three binary relations (six columns) mixing the
    /// planner's three conjunct classes: join edges (cross-input
    /// equalities), pushable single-input comparisons, and a residual
    /// cross-input inequality the hash joins cannot absorb.
    fn condition() -> impl Strategy<Value = Predicate> {
        (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            (0usize..6, -1i64..7),
            any::<bool>(),
        )
            .prop_map(|(edge12, edge23, pushed, (col, threshold), residual)| {
                let mut cond = Predicate::True;
                if edge12 {
                    cond = cond.and(Predicate::col_eq(1, 2));
                }
                if edge23 {
                    cond = cond.and(Predicate::col_eq(3, 4));
                }
                if pushed {
                    cond = cond.and(Predicate::col_const(col, CmpOp::Gt, threshold));
                }
                if residual {
                    cond = cond.and(Predicate::col_cmp(0, CmpOp::Ge, 5));
                }
                cond
            })
    }

    proptest! {
        #[test]
        fn planned_spj_matches_oracle(
            r1 in signed_bag(),
            r2 in signed_bag(),
            r3 in signed_bag(),
            cond in condition(),
            proj in prop::collection::vec(0usize..6, 1..4),
        ) {
            let inputs = [&r1, &r2, &r3];
            let planned = spj(&inputs, &cond, &proj).unwrap();
            let naive = spj_naive(&inputs, &cond, &proj).unwrap();
            prop_assert_eq!(planned, naive);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn batched_and_parallel_match_plain_source(seed in 0u64..1000) {
            let (view, db, updates) = random_setup(seed);
            // The compensated 3-update query: up to four SPJ terms
            // sharing probe values — the shape term batching targets.
            let q1 = view.substitute(&updates[0]).unwrap();
            let q2 = view
                .substitute(&updates[1])
                .unwrap()
                .minus(&q1.substitute(&updates[1]));
            let q3 = view
                .substitute(&updates[2])
                .unwrap()
                .minus(&q1.substitute(&updates[2]))
                .minus(&q2.substitute(&updates[2]));
            for q in [&view.as_query(), &q3] {
                let wq = WireQuery::from_query(q);
                let logical = q.eval(&db).unwrap();

                let mut plain = build_source(&view, &db, Scenario::Indexed);
                let sequential = plain.answer(&wq).unwrap();
                let io_plain = plain.io_meter().query_reads();

                let mut batched = build_source(&view, &db, Scenario::Indexed);
                batched.enable_term_batching();
                prop_assert_eq!(batched.answer(&wq).unwrap(), sequential.clone());
                let io_batched = batched.io_meter().query_reads();

                let mut parallel = build_source(&view, &db, Scenario::Indexed);
                prop_assert_eq!(parallel.answer_parallel(&wq).unwrap(), sequential.clone());

                prop_assert_eq!(sequential, logical);
                // Sharing scans and probes can only reduce block reads.
                prop_assert!(io_batched <= io_plain);
            }
        }
    }
}

mod selfmaint_differential {
    //! Property-based differential for ECA-Aux: on random keyed
    //! multi-relation scenarios under random interleavings, the
    //! self-maintaining algorithm must agree with ECA exactly, never
    //! send more messages, and — whenever every update was answered
    //! locally — put *zero* frames on the wire (checked against the raw
    //! byte meters, not the logical counters).

    use super::*;
    use eca_core::algorithms::{AlgorithmKind, EcaAux};
    use eca_sim::{Policy, RunReport, Simulation};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The random chain-join scenario of [`random_setup`], with key
    /// metadata declared on every relation (full-attribute keys: the
    /// generator produces bag data, so nothing narrower is a key).
    fn keyed_setup(seed: u64) -> (ViewDef, BaseDb, Vec<Update>) {
        let (view, db, updates) = random_setup(seed);
        let keyed: Vec<Schema> = view
            .base()
            .iter()
            .map(|s| {
                let attrs: Vec<&str> = s.attrs().iter().map(String::as_str).collect();
                Schema::with_key(s.relation(), &attrs, &attrs).unwrap()
            })
            .collect();
        let view = ViewDef::new(
            view.name(),
            keyed,
            view.cond().clone(),
            view.proj().to_vec(),
        )
        .unwrap();
        (view, db, updates)
    }

    fn run(
        view: &ViewDef,
        db: &BaseDb,
        updates: &[Update],
        coverage: Option<&[bool]>,
        policy: Policy,
    ) -> RunReport {
        let source = build_source(view, db, Scenario::Indexed);
        let snapshot = source.snapshot();
        let initial = view.eval(&snapshot).unwrap();
        let maintainer: Box<dyn eca_core::maintainer::ViewMaintainer> = match coverage {
            Some(c) => {
                Box::new(EcaAux::with_coverage(view.clone(), initial, c, Some(&snapshot)).unwrap())
            }
            None => AlgorithmKind::Eca
                .instantiate_with_base(view, initial, Some(snapshot))
                .unwrap(),
        };
        Simulation::new(source, maintainer, updates.to_vec())
            .unwrap()
            .run(policy)
            .unwrap()
    }

    fn strongly_consistent(r: &RunReport) -> bool {
        eca_consistency::check(&r.source_view_states, &r.warehouse_view_states).level()
            >= eca_consistency::Level::StronglyConsistent
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn eca_aux_agrees_with_eca_and_never_messages_more(
            seed in 0u64..500,
            policy_seed in 0u64..1000,
            coverage_bits in 0u8..8,
        ) {
            let (view, db, updates) = keyed_setup(seed);
            let coverage = [
                coverage_bits & 1 != 0,
                coverage_bits & 2 != 0,
                coverage_bits & 4 != 0,
            ];
            let policy = Policy::Random { seed: policy_seed };
            let aux = run(&view, &db, &updates, Some(&coverage), policy);
            let eca = run(&view, &db, &updates, None, policy);

            // Final states and histories equivalent to ECA.
            prop_assert_eq!(&aux.final_mv, &eca.final_mv, "final states diverge");
            prop_assert!(aux.converged());
            prop_assert!(strongly_consistent(&aux), "ECA-Aux history");
            prop_assert!(strongly_consistent(&eca), "ECA history");

            // Never chattier than ECA.
            prop_assert!(aux.maintenance_messages() <= eca.maintenance_messages());

            // Message count decomposes exactly: 2 per remote update.
            let stats = aux.selfmaint.as_ref().expect("EcaAux reports stats");
            prop_assert_eq!(aux.maintenance_messages(), 2 * stats.remote_updates);

            // Zero-round-trip runs put zero frames on the wire: the raw
            // warehouse→source byte meter must read zero, not just the
            // logical message counter.
            if stats.remote_updates == 0 {
                prop_assert_eq!(aux.bytes_w2s, 0, "raw frames escaped");
                prop_assert_eq!(aux.answer_bytes, 0);
                prop_assert_eq!(aux.io_reads, 0);
            }
        }

        #[test]
        fn fully_covered_views_never_touch_the_wire(
            seed in 0u64..500,
            policy_seed in 0u64..1000,
        ) {
            let (view, db, updates) = keyed_setup(seed);
            let aux = run(
                &view,
                &db,
                &updates,
                Some(&[true, true, true]),
                Policy::Random { seed: policy_seed },
            );
            prop_assert!(aux.converged());
            prop_assert_eq!(aux.maintenance_messages(), 0);
            prop_assert_eq!(aux.bytes_w2s, 0);
        }
    }

    /// Deterministic spot-check that the equivalence also holds under
    /// the adversarial all-updates-first interleaving (not just random
    /// ones) and that per-update MV trajectories are legal prefixes.
    #[test]
    fn adversarial_interleaving_matches_eca() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let seed = rand::Rng::gen_range(&mut rng, 0..10_000u64);
            let (view, db, updates) = keyed_setup(seed);
            let aux = run(
                &view,
                &db,
                &updates,
                Some(&[true; 3]),
                Policy::AllUpdatesFirst,
            );
            let eca = run(&view, &db, &updates, None, Policy::AllUpdatesFirst);
            assert_eq!(aux.final_mv, eca.final_mv, "seed {seed}");
            assert!(strongly_consistent(&aux), "seed {seed}");
        }
    }
}

#[test]
fn io_accounting_is_monotone_and_scenario_sensitive() {
    let (view, db, _) = random_setup(3);
    let mut s1 = build_source(&view, &db, Scenario::Indexed);
    let mut s2 = build_source(&view, &db, Scenario::nested_loop_default());
    let wq = WireQuery::from_query(&view.as_query());
    s1.answer(&wq).unwrap();
    s2.answer(&wq).unwrap();
    let io1 = s1.io_meter().query_reads();
    let io2 = s2.io_meter().query_reads();
    assert!(io1 > 0 && io2 > 0);
    // Nested-loop recomputation must cost more than the indexed plan.
    assert!(io2 > io1, "scenario2 {io2} should exceed scenario1 {io1}");
}
