//! Integration: the caching ablation (paper §6.3: "we expect that the
//! I/O performance of ECA would improve if we incorporated multiple term
//! optimization or caching into the analysis").
//!
//! A shared LRU block cache at the source makes repeated probes of the
//! same blocks free. Answers must be bit-identical with and without the
//! cache — only the I/O charge changes.

use eca_core::algorithms::AlgorithmKind;
use eca_sim::{Policy, Simulation};
use eca_storage::Scenario;
use eca_wire::WireQuery;
use eca_workload::{Example6, Params, UpdateMix};

fn measure_io(
    k: usize,
    cache_blocks: Option<usize>,
    seed: u64,
) -> (u64, eca_relational::SignedBag) {
    let params = Params::default();
    let workload = Example6::new(params, seed);
    let mut source = workload.build_source(Scenario::Indexed).unwrap();
    if let Some(capacity) = cache_blocks {
        source.enable_cache(capacity);
    }
    let view = Example6::view().unwrap();
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).unwrap();
    let warehouse = AlgorithmKind::EcaOptimized
        .instantiate_with_base(&view, initial, Some(snapshot))
        .unwrap();
    let report = Simulation::new(
        source,
        warehouse,
        workload.updates(k, UpdateMix::CorrelatedChurn),
    )
    .unwrap()
    .run(Policy::AllUpdatesFirst)
    .unwrap();
    assert!(report.converged());
    (report.io_reads, report.final_mv)
}

/// A cache big enough to hold the hot blocks slashes ECA's worst-case
/// I/O without changing any answer.
#[test]
fn cache_reduces_eca_worst_case_io() {
    let (io_cold, mv_cold) = measure_io(18, None, 3);
    let (io_warm, mv_warm) = measure_io(18, Some(64), 3);
    assert_eq!(mv_cold, mv_warm, "caching must not change results");
    assert!(
        io_warm * 2 <= io_cold,
        "expected at least 2x I/O reduction: cold {io_cold}, warm {io_warm}"
    );
}

/// A one-block cache barely helps (evictions churn), but never hurts.
#[test]
fn tiny_cache_is_between_cold_and_warm() {
    let (io_cold, _) = measure_io(12, None, 5);
    let (io_tiny, _) = measure_io(12, Some(1), 5);
    let (io_warm, _) = measure_io(12, Some(64), 5);
    assert!(io_tiny <= io_cold);
    assert!(io_warm <= io_tiny);
}

/// Updates invalidate cached blocks: a query after an update must re-read
/// changed tables rather than serve stale data.
#[test]
fn updates_invalidate_cache() {
    let params = Params {
        cardinality: 40,
        ..Params::default()
    };
    let workload = Example6::new(params, 7);
    let mut source = workload.build_source(Scenario::Indexed).unwrap();
    let cache = source.enable_cache(64);
    let view = Example6::view().unwrap();

    // Warm the cache with a recompute.
    let full = WireQuery::from_query(&view.as_query());
    let warm_before = source.answer(&full).unwrap();
    let hits_before = cache.hits();

    // Mutate r1; the next answer must reflect it (no staleness).
    let u = eca_relational::Update::insert("r1", eca_relational::Tuple::ints([999, 0]));
    source.execute_update(&u);
    let after = source.answer(&full).unwrap();
    assert_ne!(warm_before, after, "cache must not serve stale results");
    // Sanity: the cache did get used at some point.
    assert!(cache.hits() >= hits_before);

    let snapshot = source.snapshot();
    assert_eq!(after, view.eval(&snapshot).unwrap());
}
