//! Serving-layer consistency under adversarial interleavings.
//!
//! The read-serving layer promises the §3 hierarchy: weak reads are
//! monotonic per client, strong reads observe only §3.1 state-history
//! members (states published while the view was quiescent — `V`
//! evaluated at a real source state, never a mid-compensation
//! intermediate). These tests drive maintenance, serving, and many
//! clients through seeded random interleavings (the `Policy::Random`
//! discipline from `eca-sim`, applied to the read path) and check the
//! promises hold at every step — plus the chaos case: a client that
//! drops mid-read and reconnects on a fresh channel at a later epoch
//! must keep its monotonicity floor.

use std::sync::Arc;

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
use eca_serve::{ReadClient, ReadServer};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::{SourceId, ViewId, ViewStatus, Warehouse};
use eca_wire::{Message, ReadLevel, SharedFifo, TransferMeter, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn view_def(name: &str) -> ViewDef {
    ViewDef::new(
        name,
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap()
}

fn build_source() -> Source {
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source
        .load("r1", (0..8).map(|j| Tuple::ints([j, j % 4])))
        .unwrap();
    source
        .load("r2", (0..8).map(|j| Tuple::ints([j % 4, 100 + j])))
        .unwrap();
    source
}

fn script(n: i64) -> Vec<Update> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                Update::insert("r1", Tuple::ints([50 + i, i % 4]))
            } else {
                Update::insert("r2", Tuple::ints([i % 4, 200 + i]))
            }
        })
        .collect()
}

/// The whole deployment a random-interleaving episode drives: one
/// source, one warehouse with serving enabled, and `clients` read
/// clients each on its own channel.
struct Episode {
    source: Source,
    wh: Warehouse,
    src_end: SharedFifo,
    wh_end: SharedFifo,
    pending_updates: Vec<Update>,
    server: ReadServer,
    clients: Vec<ClientSlot>,
    /// Every state each view held at a driver-observed quiescent point —
    /// the strong-read oracle, captured inside the same step that
    /// published it.
    quiescent_states: Vec<Vec<SignedBag>>,
}

struct ClientSlot {
    client: ReadClient<SharedFifo>,
    server_end: SharedFifo,
    level: ReadLevel,
    view: u64,
    in_flight: bool,
    reads_left: u32,
    /// Epochs observed, in completion order.
    epochs: Vec<u64>,
}

impl Episode {
    fn new(seed_views: usize, clients: usize, updates: i64, reads_per_client: u32) -> Episode {
        let source = build_source();
        let mut wh = Warehouse::new();
        wh.set_record_history(true);
        let src = wh.add_source("s0");
        let mut quiescent_states = Vec::new();
        for v in 0..seed_views {
            let def = view_def(&format!("V{v}"));
            let initial = def.eval(&source.snapshot()).unwrap();
            quiescent_states.push(vec![initial.clone()]);
            let maintainer = AlgorithmKind::Eca.instantiate(&def, initial).unwrap();
            wh.add_view(src, maintainer).unwrap();
        }
        let registry = wh.enable_serving(4);
        let server = ReadServer::new(Arc::clone(&registry));
        let (src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
        let clients = (0..clients)
            .map(|i| {
                let (client_end, server_end) = SharedFifo::pair(TransferMeter::new());
                ClientSlot {
                    client: ReadClient::new(client_end),
                    server_end,
                    level: [ReadLevel::Convergent, ReadLevel::Weak, ReadLevel::Strong][i % 3],
                    view: (i % seed_views) as u64,
                    in_flight: false,
                    reads_left: reads_per_client,
                    epochs: Vec::new(),
                }
            })
            .collect();
        Episode {
            source,
            wh,
            src_end,
            wh_end,
            pending_updates: script(updates).into_iter().rev().collect(),
            server,
            clients,
            quiescent_states,
        }
    }

    /// One maintenance micro-step; records quiescent states inside the
    /// same step so the strong oracle can never lag a publication.
    fn step_maintenance(&mut self, rng: &mut StdRng) -> bool {
        let mut progress = false;
        // Enabled maintenance events: inject the next update, answer a
        // pending query, pump the warehouse.
        let can_inject = !self.pending_updates.is_empty();
        if can_inject && rng.gen_range(0..3) == 0 {
            let u = self.pending_updates.pop().unwrap();
            assert!(self.source.execute_update(&u));
            self.src_end
                .send(&Message::UpdateNotification { update: u })
                .unwrap();
            progress = true;
        } else if rng.gen_range(0..2) == 0 {
            if let Some(msg) = self.src_end.try_recv().unwrap() {
                let Message::QueryRequest { id, query } = msg else {
                    panic!("unexpected message at source");
                };
                let answer = self.source.answer(&query).unwrap();
                self.src_end
                    .send(&Message::QueryAnswer { id, answer })
                    .unwrap();
                progress = true;
            }
        } else if let Some(msg) = self.wh_end.try_recv().unwrap() {
            // One message at a time — the same per-event granularity the
            // registry publishes at, so the oracle below never misses a
            // strong-eligible state.
            for reply in self.wh.on_message(SourceId(0), msg).unwrap() {
                self.wh_end.send(&reply).unwrap();
            }
            progress = true;
        }
        // Strong eligibility is per view (the registry publishes a
        // strong snapshot whenever *that view's* maintainer is
        // quiescent), so the oracle records per view too.
        for (v, states) in self.quiescent_states.iter_mut().enumerate() {
            let id = ViewId(v);
            if self.wh.view_status(id) == ViewStatus::Active
                && self.wh.maintainer(id).is_quiescent()
            {
                let current = self.wh.materialized(id);
                if !states.contains(current) {
                    states.push(current.clone());
                }
            }
        }
        progress
    }

    fn drained(&mut self) -> bool {
        self.pending_updates.is_empty()
            && self.wh.is_quiescent()
            && self.src_end.poll().unwrap() == eca_wire::Readiness::Idle
            && self.wh_end.poll().unwrap() == eca_wire::Readiness::Idle
    }
}

/// Run one seeded episode; returns the episode for post-hoc assertions.
fn run_episode(seed: u64, clients: usize, updates: i64, reads_per_client: u32) -> Episode {
    let mut ep = Episode::new(2, clients, updates, reads_per_client);
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        // The enabled-event set, `Policy::Random` style: maintenance is
        // event 0; each live client contributes a begin/finish event
        // and a serve event.
        let mut enabled: Vec<usize> = vec![0];
        for (i, slot) in ep.clients.iter().enumerate() {
            if slot.reads_left > 0 {
                enabled.push(1 + 2 * i);
                enabled.push(2 + 2 * i);
            }
        }
        if enabled.len() == 1 && ep.drained() {
            break;
        }
        match enabled[rng.gen_range(0..enabled.len())] {
            0 => {
                ep.step_maintenance(&mut rng);
            }
            ev => {
                let i = (ev - 1) / 2;
                let serve = (ev - 1) % 2 == 1;
                let slot = &mut ep.clients[i];
                if serve {
                    ep.server.serve_ready(&mut slot.server_end).unwrap();
                } else if !slot.in_flight {
                    slot.client.begin_read(slot.view, slot.level).unwrap();
                    slot.in_flight = true;
                } else {
                    match slot.client.try_finish() {
                        Ok(None) => {}
                        Ok(Some(out)) => {
                            assert_eq!(out.view, slot.view);
                            // Strong answers must be §3.1 history members
                            // *and* driver-observed quiescent states.
                            if slot.level == ReadLevel::Strong {
                                let v = slot.view as usize;
                                assert!(
                                    ep.quiescent_states[v].contains(&out.rows),
                                    "strong read served a non-quiescent state (seed {seed})"
                                );
                                assert!(
                                    ep.wh.view_states(ViewId(v)).contains(&out.rows),
                                    "strong read outside the 3.1 history (seed {seed})"
                                );
                            }
                            slot.epochs.push(out.epoch);
                            slot.in_flight = false;
                            slot.reads_left -= 1;
                        }
                        Err(e) => panic!("read failed under seed {seed}: {e}"),
                    }
                }
            }
        }
    }
    ep
}

#[test]
fn weak_and_strong_reads_are_monotonic_under_random_interleavings() {
    for seed in 0..12 {
        let ep = run_episode(seed, 9, 16, 6);
        for (i, slot) in ep.clients.iter().enumerate() {
            assert_eq!(slot.reads_left, 0, "client {i} starved under seed {seed}");
            if slot.level == ReadLevel::Convergent {
                continue;
            }
            for pair in slot.epochs.windows(2) {
                assert!(
                    pair[1] >= pair[0],
                    "client {i} ({:?}) regressed {} -> {} under seed {seed}",
                    slot.level,
                    pair[0],
                    pair[1]
                );
            }
        }
    }
}

#[test]
fn strong_reads_see_every_published_epoch_advance() {
    // With maintenance finished before reading starts, a strong read
    // observes exactly the final converged state — the newest §3.1
    // history member.
    let mut ep = Episode::new(1, 1, 8, 1);
    let mut rng = StdRng::seed_from_u64(7);
    while !ep.drained() {
        ep.step_maintenance(&mut rng);
    }
    let expected = ep.wh.materialized(ViewId(0)).clone();
    let slot = &mut ep.clients[0];
    slot.client.begin_read(0, ReadLevel::Strong).unwrap();
    ep.server.serve_ready(&mut slot.server_end).unwrap();
    let out = slot.client.try_finish().unwrap().unwrap();
    assert_eq!(out.rows, expected);
    assert_eq!(
        out.epoch, out.latest,
        "post-quiescence strong read is fresh"
    );
}

#[test]
fn reconnecting_client_keeps_its_monotonicity_floor() {
    // A client completes a weak read, then its connection dies with a
    // read in flight (the answer is lost). It reconnects on a brand-new
    // channel carrying its floors; reads after more maintenance must
    // never regress below the pre-crash epoch.
    let mut ep = Episode::new(1, 1, 6, 1);
    let mut rng = StdRng::seed_from_u64(21);

    // Let some maintenance land, then read.
    for _ in 0..40 {
        ep.step_maintenance(&mut rng);
    }
    let slot = &mut ep.clients[0];
    slot.client.begin_read(0, ReadLevel::Weak).unwrap();
    ep.server.serve_ready(&mut slot.server_end).unwrap();
    let first = slot.client.try_finish().unwrap().unwrap();
    let floor = first.epoch;

    // Crash mid-read: request sent, answer never collected.
    slot.client.begin_read(0, ReadLevel::Weak).unwrap();
    ep.server.serve_ready(&mut slot.server_end).unwrap();
    let floors = slot.client.floors();

    // Reconnect at a later epoch on a fresh channel.
    while !ep.drained() {
        ep.step_maintenance(&mut rng);
    }
    let (client_end, mut server_end) = SharedFifo::pair(TransferMeter::new());
    let mut revived = ReadClient::with_floors(client_end, floors);
    revived.begin_read(0, ReadLevel::Weak).unwrap();
    ep.server.serve_ready(&mut server_end).unwrap();
    let second = revived.try_finish().unwrap().unwrap();
    assert!(
        second.epoch >= floor,
        "reconnected client regressed: {} < {}",
        second.epoch,
        floor
    );
}
