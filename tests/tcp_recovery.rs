//! Wire-level recovery semantics over real TCP sockets: strict answer
//! demux (unknown ids), stale-epoch rejection after a session bump, and
//! the bounded-wait stall detection that triggers recovery in the first
//! place.

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use eca_core::algorithms::AlgorithmKind;
use eca_core::{CoreError, QueryId, ViewDef};
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::{Warehouse, WarehouseError};
use eca_wire::{Message, Role, TcpTransport, TransferMeter, Transport};

fn view2() -> ViewDef {
    ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap()
}

fn build_source() -> Source {
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source.load("r1", [Tuple::ints([1, 2])]).unwrap();
    source
}

fn warehouse_over(view: &ViewDef) -> (Warehouse, eca_warehouse::SourceId) {
    let mut wh = Warehouse::new();
    let src = wh.add_source("source");
    let initial = view.eval(&build_source().snapshot()).unwrap();
    wh.add_view(src, AlgorithmKind::Eca.instantiate(view, initial).unwrap())
        .unwrap();
    (wh, src)
}

/// An answer bearing an id the warehouse never issued is rejected by the
/// strict demux before any maintainer state is touched — and the session
/// keeps serving the legitimate protocol afterwards.
#[test]
fn unknown_answer_id_is_rejected_and_session_survives() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let source_thread = thread::spawn(move || {
        let mut source = build_source();
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream, Role::Source, TransferMeter::new()).unwrap();
        // A bogus answer out of nowhere: id 999 was never issued.
        t.send(&Message::QueryAnswer {
            id: QueryId(999),
            answer: SignedBag::from_tuples([Tuple::ints([555])]),
        })
        .unwrap();
        // Then the legitimate protocol: one update, answer its query.
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        assert!(source.execute_update(&u));
        t.send(&Message::UpdateNotification { update: u }).unwrap();
        loop {
            match t.recv().unwrap() {
                Some(Message::QueryRequest { id, query }) => {
                    let answer = source.answer(&query).unwrap();
                    t.send(&Message::QueryAnswer { id, answer }).unwrap();
                }
                Some(other) => panic!("unexpected message at source: {other:?}"),
                None => break,
            }
        }
    });

    let view = view2();
    let (mut wh, src) = warehouse_over(&view);
    let mut t = TcpTransport::connect(addr, Role::Warehouse, TransferMeter::new()).unwrap();

    // First inbound message is the bogus answer: strict rejection.
    let msg = t.recv().unwrap().unwrap();
    assert!(matches!(
        wh.on_message(src, msg),
        Err(WarehouseError::Core(CoreError::UnknownQuery { id: 999 }))
    ));
    // The maintainer was never touched.
    assert_eq!(wh.materialized(eca_warehouse::ViewId(0)).pos_len(), 0);

    // The legitimate exchange still runs to quiescence.
    wh.pump_until_settled(src, &mut t, 1, Duration::from_secs(5))
        .unwrap();
    assert!(wh.is_quiescent());
    assert_eq!(
        wh.materialized(eca_warehouse::ViewId(0)),
        &SignedBag::from_tuples([Tuple::ints([1])])
    );
    drop(t);
    source_thread.join().unwrap();
}

/// After an epoch bump ([`Warehouse::on_reset`]) the old query id is
/// retired: an answer to it arriving late over the socket is rejected,
/// while the re-issued query's answer lands normally and the view
/// converges.
#[test]
fn stale_epoch_answer_after_bump_is_rejected() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let source_thread = thread::spawn(move || {
        let mut source = build_source();
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream, Role::Source, TransferMeter::new()).unwrap();
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        assert!(source.execute_update(&u));
        t.send(&Message::UpdateNotification { update: u }).unwrap();
        // Hold the first (pre-reset) query until the re-issued one
        // arrives, then answer the dead-epoch id *first*.
        let Some(Message::QueryRequest {
            id: old_id,
            query: old_q,
        }) = t.recv().unwrap()
        else {
            panic!("expected the original query");
        };
        let Some(Message::QueryRequest {
            id: new_id,
            query: new_q,
        }) = t.recv().unwrap()
        else {
            panic!("expected the re-issued query");
        };
        assert_ne!(old_id, new_id, "re-issue must use a fresh global id");
        let stale = source.answer(&old_q).unwrap();
        t.send(&Message::QueryAnswer {
            id: old_id,
            answer: stale,
        })
        .unwrap();
        let fresh = source.answer(&new_q).unwrap();
        t.send(&Message::QueryAnswer {
            id: new_id,
            answer: fresh,
        })
        .unwrap();
        // Stay up until the warehouse hangs up.
        while t.recv().unwrap().is_some() {}
    });

    let view = view2();
    let (mut wh, src) = warehouse_over(&view);
    let mut t = TcpTransport::connect(addr, Role::Warehouse, TransferMeter::new()).unwrap();

    // Notification → query under epoch 0.
    let msg = t.recv().unwrap().unwrap();
    assert!(matches!(msg, Message::UpdateNotification { .. }));
    for reply in wh.on_message(src, msg).unwrap() {
        t.send(&reply).unwrap();
    }

    // The channel is declared dead: epoch bumps, the pending query is
    // re-issued under a fresh id on the same socket.
    let reissued = wh.on_reset(src, false).unwrap();
    assert_eq!(reissued.len(), 1);
    assert_eq!(wh.epoch(src), 1);
    for msg in reissued {
        t.send(&msg).unwrap();
    }

    // The stale-epoch answer comes back first and must be rejected
    // without touching the maintainer.
    let stale = t.recv().unwrap().unwrap();
    assert!(matches!(
        wh.on_message(src, stale),
        Err(WarehouseError::Core(CoreError::UnknownQuery { .. }))
    ));
    assert!(!wh.is_quiescent(), "the re-issued query is still pending");

    // The fresh answer lands and the view converges.
    let fresh = t.recv().unwrap().unwrap();
    wh.on_message(src, fresh).unwrap();
    assert!(wh.is_quiescent());
    assert_eq!(
        wh.materialized(eca_warehouse::ViewId(0)),
        &SignedBag::from_tuples([Tuple::ints([1])])
    );
    drop(t);
    source_thread.join().unwrap();
}

/// A source that goes silent with a query outstanding trips the bounded
/// wait: `pump_until_settled` reports `SourceStalled` (the signal to run
/// `on_reset`) instead of blocking forever.
#[test]
fn silent_source_trips_stall_timeout() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let source_thread = thread::spawn(move || {
        let mut source = build_source();
        let (stream, _) = listener.accept().unwrap();
        let mut t = TcpTransport::new(stream, Role::Source, TransferMeter::new()).unwrap();
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        assert!(source.execute_update(&u));
        t.send(&Message::UpdateNotification { update: u }).unwrap();
        // Receive the query but never answer: hold the socket open until
        // the warehouse gives up and hangs up.
        while t.recv().unwrap().is_some() {}
    });

    let view = view2();
    let (mut wh, src) = warehouse_over(&view);
    let mut t = TcpTransport::connect(addr, Role::Warehouse, TransferMeter::new()).unwrap();
    let got = wh.pump_until_settled(src, &mut t, 1, Duration::from_millis(200));
    assert!(
        matches!(got, Err(WarehouseError::SourceStalled { source: 0 })),
        "expected SourceStalled, got {got:?}"
    );
    drop(t);
    source_thread.join().unwrap();
}
