//! Integration: modifications (paper §4.1's delete-then-insert
//! treatment) through the full stack, including the interleaving where a
//! modification's two halves race a concurrent query.

use eca_core::algorithms::AlgorithmKind;
use eca_relational::{Modification, Tuple, Update};
use eca_sim::{Policy, Simulation};
use eca_source::Source;
use eca_storage::Scenario;
use eca_workload::scenarios;

#[test]
fn modification_expands_and_converges_under_all_algorithms() {
    // Reuse Example 1's schema/data and modify the r1 tuple's join value
    // so derived view tuples flip.
    let sc = scenarios::example1();
    let modification = Modification::new("r1", Tuple::ints([1, 2]), Tuple::ints([1, 3]));
    let updates: Vec<Update> = modification.expand();

    for kind in [
        AlgorithmKind::Basic, // serial policy keeps even Basic correct
        AlgorithmKind::Eca,
        AlgorithmKind::EcaOptimized,
        AlgorithmKind::Lca,
        AlgorithmKind::StoreCopies,
    ] {
        let mut source = Source::new(Scenario::Indexed);
        for schema in sc.view.base() {
            source.add_relation(schema.clone(), 20, None, &[]).unwrap();
        }
        for (rel, tuples) in &sc.initial {
            source.load(rel, tuples.iter().cloned()).unwrap();
        }
        let snapshot = source.snapshot();
        let initial = sc.view.eval(&snapshot).unwrap();
        let warehouse = kind
            .instantiate_with_base(&sc.view, initial, Some(snapshot))
            .unwrap();
        let report = Simulation::new(source, warehouse, updates.clone())
            .unwrap()
            .run(Policy::Serial)
            .unwrap();
        assert!(report.converged(), "{}", kind.label());
        // r2 has no X=3 tuple, so the modified r1 tuple derives nothing.
        assert!(report.final_mv.is_empty(), "{}", kind.label());
    }
}

#[test]
fn racing_modification_halves_are_repaired_by_eca() {
    // The delete and insert halves execute at the source before any query
    // is answered — the anomaly-prone interleaving.
    let sc = scenarios::example1();
    let modification = Modification::new("r2", Tuple::ints([2, 4]), Tuple::ints([2, 9]));
    let updates = modification.expand();

    for (kind, must_converge) in [(AlgorithmKind::Basic, false), (AlgorithmKind::Eca, true)] {
        let mut source = Source::new(Scenario::Indexed);
        for schema in sc.view.base() {
            source.add_relation(schema.clone(), 20, None, &[]).unwrap();
        }
        for (rel, tuples) in &sc.initial {
            source.load(rel, tuples.iter().cloned()).unwrap();
        }
        let snapshot = source.snapshot();
        let initial = sc.view.eval(&snapshot).unwrap();
        let warehouse = kind
            .instantiate_with_base(&sc.view, initial, Some(snapshot))
            .unwrap();
        let report = Simulation::new(source, warehouse, updates.clone())
            .unwrap()
            .run(Policy::AllUpdatesFirst)
            .unwrap();
        if must_converge {
            assert!(report.converged(), "{}", kind.label());
            // The view is unchanged: [1] derived via [2,4] before, via
            // [2,9] after.
            assert_eq!(report.final_mv.count(&Tuple::ints([1])), 1);
        }
        // (Basic happens to survive some racing modifications; we only
        // assert the guaranteed direction.)
    }
}

#[test]
fn noop_modification_is_free() {
    let m = Modification::new("r1", Tuple::ints([1, 2]), Tuple::ints([1, 2]));
    assert!(m.expand().is_empty());
}
