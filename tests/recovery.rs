//! Crash-recovery acceptance tests: a warehouse killed at *every*
//! scheduler step must recover from its write-ahead log and checkpoint
//! to exactly the fault-free golden — same final views, §3.1 strong
//! consistency intact — with only the incremental notification tail
//! re-sent. Without durability the same crash falls back to the
//! paper's §4 amnesia story (full resyncs) and still converges.
//!
//! Scenarios: Example 2 (the canonical anomaly setup), the Example 6
//! workload, and the keyed self-maintaining (ECA-Aux) join chain whose
//! auxiliary views must come back from the checkpoint too.

use std::path::PathBuf;

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, Tuple, Update};
use eca_sim::{ChaosProfile, ChaosRunReport, ChaosSimulation, Policy};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::{DurabilityConfig, FsyncPolicy};
use eca_workload::{Example6, Params, UpdateMix};

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

fn example2_fixture() -> (Source, ViewDef, Vec<Update>) {
    let view = ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .unwrap();
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source.load("r1", [Tuple::ints([1, 2])]).unwrap();
    let script = vec![
        Update::insert("r2", Tuple::ints([2, 3])),
        Update::insert("r1", Tuple::ints([4, 2])),
    ];
    (source, view, script)
}

fn example6_fixture() -> (Source, ViewDef, Vec<Update>) {
    let workload = Example6::new(Params::default(), 42);
    let source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::view().unwrap();
    let script = workload.updates(10, UpdateMix::Mixed);
    (source, view, script)
}

/// The keyed join chain ECA-Aux self-maintains: recovery must restore
/// the warehouse-resident auxiliary views (or mark them stale and
/// rebuild) along with `MV`.
fn selfmaint_fixture() -> (Source, ViewDef, Vec<Update>) {
    let workload = Example6::new(Params::default(), 42);
    let source = workload.build_source(Scenario::Indexed).unwrap();
    let view = Example6::keyed_view().unwrap();
    let script = workload.updates(10, UpdateMix::Mixed);
    (source, view, script)
}

/// One single-site chaos simulation whose view can be rebuilt after a
/// warehouse crash.
fn crashable_sim(
    kind: AlgorithmKind,
    fixture: impl Fn() -> (Source, ViewDef, Vec<Update>),
    profile: ChaosProfile,
) -> ChaosSimulation {
    let (source, view, script) = fixture();
    let snapshot = source.snapshot();
    let mut sim = ChaosSimulation::new();
    let site = sim.add_source_with("s0", source, script, profile);
    sim.add_view_with_factory(site, move || {
        let initial = view.eval(&snapshot).unwrap();
        kind.instantiate_with_base(&view, initial, Some(snapshot.clone()))
            .unwrap()
    })
    .unwrap();
    sim
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eca-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &PathBuf) -> DurabilityConfig {
    // A short cadence so the sweep crosses several checkpoint cuts, and
    // per-record fsync so every logged event survives the crash.
    DurabilityConfig::new(dir)
        .with_fsync(FsyncPolicy::PerRecord)
        .with_checkpoint_every(4)
}

fn assert_strongly_consistent(report: &ChaosRunReport, label: &str) {
    assert!(report.quiescent, "{label}: warehouse did not settle");
    assert!(report.converged(), "{label}: a view diverged");
    for v in &report.views {
        let c = eca_consistency::check(&v.source_view_states, &v.warehouse_view_states);
        assert!(
            c.strongly_consistent,
            "{label} {}: {:?}",
            v.view_name, c.violation
        );
    }
}

/// Run the fixture's fault-free golden and return (steps, final views).
fn golden(
    kind: AlgorithmKind,
    fixture: impl Fn() -> (Source, ViewDef, Vec<Update>),
) -> (u64, ChaosRunReport) {
    let report = crashable_sim(kind, &fixture, ChaosProfile::none())
        .run(Policy::Serial)
        .unwrap();
    assert_strongly_consistent(&report, "golden");
    (report.stats.steps, report)
}

/// Crash the warehouse at every scheduler step of the golden run,
/// recover from disk, and require convergence to the golden final view
/// with §3.1 strong consistency intact across the crash.
fn sweep_crash_points(
    kind: AlgorithmKind,
    fixture: impl Fn() -> (Source, ViewDef, Vec<Update>),
    tag: &str,
) {
    let (steps, gold) = golden(kind, &fixture);
    assert!(steps > 0, "{tag}: golden run took no steps");
    let dir = tmpdir(tag);
    let mut incremental = 0u64;
    for crash_at in 1..=steps {
        let label = format!("{tag} crash@{crash_at}/{steps}");
        let profile = ChaosProfile::none().with_warehouse_crashes(&[crash_at]);
        let mut sim = crashable_sim(kind, &fixture, profile);
        sim.enable_durability(config(&dir)).unwrap();
        let report = sim.run(Policy::Serial).unwrap();
        assert_strongly_consistent(&report, &label);
        for (g, r) in gold.views.iter().zip(&report.views) {
            assert_eq!(g.final_mv, r.final_mv, "{label}");
        }
        assert_eq!(report.stats.warehouse_restarts, 1, "{label}");
        assert_eq!(
            report.stats.recovered_incremental + report.stats.recovered_full,
            1,
            "{label}: exactly one channel recovers"
        );
        incremental += report.stats.recovered_incremental;
    }
    assert!(
        incremental > steps / 2,
        "{tag}: most crash points must recover incrementally, got {incremental}/{steps}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Crash-point sweeps
// ---------------------------------------------------------------------

#[test]
fn example2_recovers_from_a_crash_at_every_step() {
    sweep_crash_points(AlgorithmKind::Eca, example2_fixture, "example2");
}

#[test]
fn example6_recovers_from_a_crash_at_every_step() {
    sweep_crash_points(AlgorithmKind::Eca, example6_fixture, "example6");
}

/// The self-maintaining algorithm's auxiliary bags live in the
/// checkpoint; after recovery, maintenance must go on — locally where
/// the auxiliaries came back fresh, via rebuild queries where the
/// checkpoint recorded them stale — and still land on the golden.
#[test]
fn eca_aux_recovers_auxiliaries_from_a_crash_at_every_step() {
    sweep_crash_points(AlgorithmKind::EcaAux, selfmaint_fixture, "selfmaint");
}

// ---------------------------------------------------------------------
// The amnesia baseline (§4, no durability)
// ---------------------------------------------------------------------

/// The same crash without durability: the fresh warehouse has nothing
/// on disk, every view degrades to a full RV-style resync, and the run
/// still converges to the golden. This is the cost baseline the
/// incremental path is measured against.
#[test]
fn crash_without_durability_converges_via_full_resync() {
    let (steps, gold) = golden(AlgorithmKind::Eca, example6_fixture);
    for crash_at in [1, steps / 2, steps] {
        let label = format!("amnesia crash@{crash_at}");
        let profile = ChaosProfile::none().with_warehouse_crashes(&[crash_at]);
        let report = crashable_sim(AlgorithmKind::Eca, example6_fixture, profile)
            .run(Policy::Serial)
            .unwrap();
        assert!(report.quiescent && report.converged(), "{label}");
        assert_eq!(gold.views[0].final_mv, report.views[0].final_mv, "{label}");
        assert_eq!(report.stats.recovered_full, 1, "{label}");
        assert_eq!(report.stats.recovered_incremental, 0, "{label}");
        assert_eq!(report.stats.resync_notifications, 0, "{label}");
    }
}

// ---------------------------------------------------------------------
// Fault-free identity: durability must be invisible
// ---------------------------------------------------------------------

/// With durability enabled and no crash, every meter, every message
/// count and the entire per-view state history must be identical to the
/// non-durable run — the guarantee that keeps the golden traces valid.
#[test]
fn durable_fault_free_runs_are_meter_identical() {
    let dir = tmpdir("identity");
    for (tag, kind, fixture) in [
        (
            "example2",
            AlgorithmKind::Eca,
            example2_fixture as fn() -> _,
        ),
        (
            "example6",
            AlgorithmKind::Eca,
            example6_fixture as fn() -> _,
        ),
        (
            "selfmaint",
            AlgorithmKind::EcaAux,
            selfmaint_fixture as fn() -> _,
        ),
    ] {
        for policy in [Policy::Serial, Policy::Random { seed: 7 }] {
            let plain = crashable_sim(kind, fixture, ChaosProfile::none())
                .run(policy)
                .unwrap();
            let mut durable = crashable_sim(kind, fixture, ChaosProfile::none());
            durable.enable_durability(config(&dir)).unwrap();
            let durable = durable.run(policy).unwrap();
            let label = format!("{tag} {policy:?}");
            assert_eq!(plain.stats, durable.stats, "{label}");
            for (p, d) in plain.sites.iter().zip(&durable.sites) {
                assert_eq!(p.query_messages, d.query_messages, "{label}");
                assert_eq!(p.answer_messages, d.answer_messages, "{label}");
                assert_eq!(p.notification_messages, d.notification_messages, "{label}");
                assert_eq!(p.answer_bytes, d.answer_bytes, "{label}");
                assert_eq!(p.bytes_s2w, d.bytes_s2w, "{label}");
                assert_eq!(p.bytes_w2s, d.bytes_w2s, "{label}");
            }
            for (p, d) in plain.views.iter().zip(&durable.views) {
                assert_eq!(p.final_mv, d.final_mv, "{label}");
                assert_eq!(
                    p.warehouse_view_states, d.warehouse_view_states,
                    "{label}: durability changed the state history"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Rolling restarts + skewed streams (the stress scenarios)
// ---------------------------------------------------------------------

/// Several crashes in one run — the rolling-restart drill — over a
/// zipfian-skewed stream: every incarnation recovers from the previous
/// one's disk state and the run still lands on the fault-free golden.
#[test]
fn rolling_warehouse_restarts_over_skewed_stream_converge() {
    let workload = Example6::new(Params::default(), 9);
    let fixture = move || {
        let source = workload.build_source(Scenario::Indexed).unwrap();
        let view = Example6::view().unwrap();
        (source, view, workload.zipfian_updates(12, 1.2))
    };
    let (steps, gold) = golden(AlgorithmKind::Eca, &fixture);
    let schedule = eca_workload::rolling_restart_schedule(steps, 3);
    assert_eq!(schedule.len(), 3);
    let dir = tmpdir("rolling");
    let profile = ChaosProfile::none().with_warehouse_crashes(&schedule);
    let mut sim = crashable_sim(AlgorithmKind::Eca, fixture, profile);
    sim.enable_durability(config(&dir)).unwrap();
    let report = sim.run(Policy::Serial).unwrap();
    assert_strongly_consistent(&report, "rolling");
    assert_eq!(report.stats.warehouse_restarts, 3);
    assert_eq!(gold.views[0].final_mv, report.views[0].final_mv);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A delete-heavy stream with a mid-run crash: recovery replays a log
/// dominated by deletions and compensation, then converges.
#[test]
fn delete_heavy_stream_survives_a_crash() {
    let workload = Example6::new(Params::default(), 13);
    let fixture = move || {
        let source = workload.build_source(Scenario::Indexed).unwrap();
        let view = Example6::view().unwrap();
        (source, view, workload.delete_heavy_updates(14, 75))
    };
    let (steps, gold) = golden(AlgorithmKind::Eca, &fixture);
    let dir = tmpdir("delete-heavy");
    let profile = ChaosProfile::none().with_warehouse_crashes(&[steps / 2]);
    let mut sim = crashable_sim(AlgorithmKind::Eca, fixture, profile);
    sim.enable_durability(config(&dir)).unwrap();
    let report = sim.run(Policy::Serial).unwrap();
    assert_strongly_consistent(&report, "delete-heavy");
    assert_eq!(gold.views[0].final_mv, report.views[0].final_mv);
    let _ = std::fs::remove_dir_all(&dir);
}
