//! Integration: replay the paper's worked Examples 1–9 through the full
//! stack (storage engine → source → wire codec → simulator → warehouse
//! algorithms) and verify the anomalies and their repairs end to end.

use eca_core::algorithms::AlgorithmKind;
use eca_relational::Tuple;
use eca_sim::{Policy, RunReport, SimError, Simulation};
use eca_source::Source;
use eca_storage::Scenario as CostScenario;
use eca_workload::scenarios::{self, Scenario};

fn run(scenario: &Scenario, kind: AlgorithmKind, policy: Policy) -> Result<RunReport, SimError> {
    let mut source = Source::new(CostScenario::Indexed);
    for schema in scenario.view.base() {
        source
            .add_relation(schema.clone(), 20, None, &[])
            .expect("schema registers");
    }
    for (rel, tuples) in &scenario.initial {
        source.load(rel, tuples.iter().cloned()).expect("load");
    }
    let snapshot = source.snapshot();
    let initial = scenario.view.eval(&snapshot).expect("initial view");
    let warehouse = kind
        .instantiate_with_base(&scenario.view, initial, Some(snapshot))
        .expect("instantiate");
    Simulation::new(source, warehouse, scenario.updates.clone())?.run(policy)
}

/// Example 1: with spaced updates even the basic algorithm is correct,
/// and the view retains the duplicate [1] (duplicate semantics matter).
#[test]
fn example_1_basic_correct_when_serial() {
    let sc = scenarios::example1();
    let report = run(&sc, AlgorithmKind::Basic, Policy::Serial).unwrap();
    assert!(report.converged());
    assert_eq!(report.final_mv.count(&Tuple::ints([1])), 2);
}

/// Example 2: the insert anomaly. The basic algorithm double-counts [4]
/// under the adversarial interleaving; ECA repairs it.
#[test]
fn example_2_insert_anomaly_and_repair() {
    let sc = scenarios::example2();
    let naive = run(&sc, AlgorithmKind::Basic, Policy::AllUpdatesFirst).unwrap();
    assert!(!naive.converged(), "the anomaly must reproduce");
    assert_eq!(naive.final_mv.count(&Tuple::ints([4])), 2);

    let eca = run(&sc, AlgorithmKind::Eca, Policy::AllUpdatesFirst).unwrap();
    assert!(eca.converged());
    assert_eq!(eca.final_mv, sc.expected_final);

    // The recorded history of the naive run is not even weakly
    // consistent — the paper's §3 classification.
    let check = eca_consistency::check(&naive.source_view_states, &naive.warehouse_view_states);
    assert!(!check.weakly_consistent);
}

/// Example 3: the deletion anomaly leaves a phantom [1,3]; ECA removes it.
#[test]
fn example_3_delete_anomaly_and_repair() {
    let sc = scenarios::example3();
    let naive = run(&sc, AlgorithmKind::Basic, Policy::AllUpdatesFirst).unwrap();
    assert!(!naive.converged());
    assert_eq!(naive.final_mv.count(&Tuple::ints([1, 3])), 1);

    let eca = run(&sc, AlgorithmKind::Eca, Policy::AllUpdatesFirst).unwrap();
    assert!(eca.converged());
    assert!(eca.final_mv.is_empty());
}

/// Examples 4 and 7: three inserts, batched and interleaved, under ECA.
#[test]
fn examples_4_and_7_eca_three_inserts() {
    for sc in [scenarios::example4(), scenarios::example7()] {
        for policy in [
            Policy::AllUpdatesFirst,
            Policy::Serial,
            Policy::Random { seed: 4 },
        ] {
            let report = run(&sc, AlgorithmKind::Eca, policy).unwrap();
            assert!(report.converged(), "{} under {policy:?}", sc.name);
            assert_eq!(report.final_mv, sc.expected_final, "{}", sc.name);
        }
    }
}

/// Example 5: ECA-Key — deletes handled locally (zero queries for the
/// delete), duplicates suppressed.
#[test]
fn example_5_eca_key() {
    let sc = scenarios::example5();
    let report = run(&sc, AlgorithmKind::EcaKey, Policy::AllUpdatesFirst).unwrap();
    assert!(report.converged());
    assert_eq!(report.final_mv, sc.expected_final);
    // Two inserts → two queries; the delete is local.
    assert_eq!(report.query_messages, 2);
    assert_eq!(
        report.final_mv.count(&Tuple::ints([3, 4])),
        1,
        "no duplicate"
    );
}

/// Examples 8 and 9: deletions (and a racing insert) under ECA.
#[test]
fn examples_8_and_9_deletions() {
    for sc in [scenarios::example8(), scenarios::example9()] {
        let report = run(&sc, AlgorithmKind::Eca, Policy::AllUpdatesFirst).unwrap();
        assert!(report.converged(), "{}", sc.name);
        assert_eq!(report.final_mv, sc.expected_final, "{}", sc.name);
    }
}

/// Every canned scenario, every correct algorithm, every policy: the
/// final view is right and the history is at least strongly consistent.
#[test]
fn all_scenarios_all_correct_algorithms() {
    for sc in scenarios::all() {
        let mut kinds = vec![
            AlgorithmKind::Eca,
            AlgorithmKind::EcaOptimized,
            AlgorithmKind::EcaLocal,
            AlgorithmKind::Lca,
            // Period 1 so the final update always triggers a recompute
            // (RV only converges when s divides k).
            AlgorithmKind::RecomputeView { period: 1 },
            AlgorithmKind::StoreCopies,
        ];
        if sc.keyed {
            kinds.push(AlgorithmKind::EcaKey);
        }
        for kind in kinds {
            for policy in [
                Policy::Serial,
                Policy::AllUpdatesFirst,
                Policy::Random { seed: 11 },
            ] {
                let report = run(&sc, kind, policy).unwrap();
                assert!(
                    report.converged(),
                    "{} with {} under {policy:?}",
                    sc.name,
                    kind.label()
                );
                assert_eq!(
                    report.final_mv,
                    sc.expected_final,
                    "{} with {}",
                    sc.name,
                    kind.label()
                );
                let check = eca_consistency::check(
                    &report.source_view_states,
                    &report.warehouse_view_states,
                );
                assert!(
                    check.strongly_consistent,
                    "{} with {} under {policy:?}: {:?}",
                    sc.name,
                    kind.label(),
                    check.violation
                );
            }
        }
    }
}

/// LCA and SC additionally deliver completeness on every scenario.
#[test]
fn lca_and_sc_are_complete_on_all_scenarios() {
    for sc in scenarios::all() {
        for kind in [AlgorithmKind::Lca, AlgorithmKind::StoreCopies] {
            for policy in [Policy::Serial, Policy::AllUpdatesFirst] {
                let report = run(&sc, kind, policy).unwrap();
                let check = eca_consistency::check(
                    &report.source_view_states,
                    &report.warehouse_view_states,
                );
                assert!(
                    check.complete,
                    "{} with {} under {policy:?}: {:?}",
                    sc.name,
                    kind.label(),
                    check.violation
                );
            }
        }
    }
}

/// ECA is strongly consistent but NOT complete: under the adversarial
/// interleaving of Example 2 it skips the intermediate source state.
#[test]
fn eca_is_not_complete() {
    let sc = scenarios::example2();
    let report = run(&sc, AlgorithmKind::Eca, Policy::AllUpdatesFirst).unwrap();
    let check = eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
    assert!(check.strongly_consistent);
    assert!(!check.complete, "ECA should skip V[ss1] here");
}
