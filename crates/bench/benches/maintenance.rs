//! End-to-end maintenance throughput: the full simulator stack per
//! algorithm on the calibrated Example-6 workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eca_bench::measure_custom;
use eca_core::algorithms::AlgorithmKind;
use eca_sim::Policy;
use eca_storage::Scenario;
use eca_workload::{Params, UpdateMix};

fn bench_algorithms(c: &mut Criterion) {
    let params = Params::default();
    let k = 20;
    let mut group = c.benchmark_group("maintenance_k20");
    for (name, kind) in [
        ("ECA", AlgorithmKind::EcaOptimized),
        ("LCA", AlgorithmKind::Lca),
        ("RV_s1", AlgorithmKind::RecomputeView { period: 1 }),
        ("RV_sk", AlgorithmKind::RecomputeView { period: k }),
        ("SC", AlgorithmKind::StoreCopies),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                measure_custom(
                    params,
                    7,
                    k,
                    kind,
                    Policy::Serial,
                    UpdateMix::Mixed,
                    Scenario::Indexed,
                )
            })
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let params = Params::default();
    let mut group = c.benchmark_group("eca_policies_k20");
    for (name, policy) in [
        ("serial", Policy::Serial),
        ("adversarial", Policy::AllUpdatesFirst),
        ("random", Policy::Random { seed: 3 }),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                measure_custom(
                    params,
                    7,
                    20,
                    AlgorithmKind::EcaOptimized,
                    policy,
                    UpdateMix::Mixed,
                    Scenario::Indexed,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithms, bench_policies
}
criterion_main!(benches);
