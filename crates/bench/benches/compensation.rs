//! Ablation AB1: the cost of compensation.
//!
//! Compares ECA under the favorable interleaving (no compensating terms)
//! against the adversarial interleaving (every query compensates all
//! preceding updates), and the plain Algorithm-5.2 query shipping against
//! the Appendix-D.2 local-evaluation refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eca_bench::measure_custom;
use eca_core::algorithms::AlgorithmKind;
use eca_sim::Policy;
use eca_storage::Scenario;
use eca_workload::{Params, UpdateMix};

fn bench_compensation_growth(c: &mut Criterion) {
    let params = Params::default();
    let mut group = c.benchmark_group("compensation_growth");
    for k in [5u64, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::new("eca_worst", k), &k, |b, &k| {
            b.iter(|| {
                measure_custom(
                    params,
                    5,
                    k,
                    AlgorithmKind::EcaOptimized,
                    Policy::AllUpdatesFirst,
                    UpdateMix::CorrelatedChurn,
                    Scenario::Indexed,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("eca_best", k), &k, |b, &k| {
            b.iter(|| {
                measure_custom(
                    params,
                    5,
                    k,
                    AlgorithmKind::EcaOptimized,
                    Policy::Serial,
                    UpdateMix::CorrelatedChurn,
                    Scenario::Indexed,
                )
            })
        });
    }
    group.finish();
}

fn bench_local_eval_ablation(c: &mut Criterion) {
    let params = Params::default();
    let mut group = c.benchmark_group("local_eval_ablation_k20");
    for (name, kind) in [
        ("ship_all_terms", AlgorithmKind::Eca),
        ("local_bound_terms", AlgorithmKind::EcaOptimized),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                measure_custom(
                    params,
                    5,
                    20,
                    kind,
                    Policy::AllUpdatesFirst,
                    UpdateMix::CorrelatedChurn,
                    Scenario::Indexed,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compensation_growth, bench_local_eval_ablation
}
criterion_main!(benches);
