//! Substrate microbenchmarks: signed-bag algebra, SPJ evaluation, and the
//! physical engine's access paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eca_core::ViewDef;
use eca_relational::{SignedBag, Tuple, Update};
use eca_storage::Scenario;
use eca_wire::{Message, WireQuery};
use eca_workload::{Example6, Params};

fn calibrated_db() -> (ViewDef, eca_core::BaseDb) {
    let w = Example6::new(Params::default(), 9);
    let view = Example6::view().expect("static view");
    let mut db = eca_core::BaseDb::for_view(&view);
    for (rel, schema) in Example6::schemas().iter().enumerate() {
        for t in w.base_tuples(rel) {
            db.insert(schema.relation(), t);
        }
    }
    (view, db)
}

fn bench_signed_bags(c: &mut Criterion) {
    let mut group = c.benchmark_group("signed_bag");
    let a: SignedBag = (0..1000).map(|i| Tuple::ints([i, i % 7])).collect();
    let b: SignedBag = (500..1500).map(|i| Tuple::ints([i, i % 5])).collect();
    group.bench_function("plus_1k", |bch| bch.iter(|| a.plus(&b)));
    group.bench_function("minus_1k", |bch| bch.iter(|| a.minus(&b)));
    group.bench_function("negated_1k", |bch| bch.iter(|| a.negated()));
    group.finish();
}

fn bench_spj(c: &mut Criterion) {
    let (view, db) = calibrated_db();
    let mut group = c.benchmark_group("spj_eval");
    group.bench_function("full_view_c100", |b| b.iter(|| view.eval(&db).unwrap()));
    let q = view
        .substitute(&Update::insert("r2", Tuple::ints([3, 7])))
        .unwrap();
    group.bench_function("bound_term_c100", |b| b.iter(|| q.eval(&db).unwrap()));
    group.finish();
}

fn bench_physical_engine(c: &mut Criterion) {
    let w = Example6::new(Params::default(), 9);
    let view = Example6::view().expect("static view");
    let mut group = c.benchmark_group("physical_engine");
    for (name, scenario) in [
        ("scenario1", Scenario::Indexed),
        ("scenario2", Scenario::nested_loop_default()),
    ] {
        let mut source = w.build_source(scenario).expect("build");
        let full = WireQuery::from_query(&view.as_query());
        group.bench_function(BenchmarkId::new("recompute", name), |b| {
            b.iter(|| source.answer(&full).unwrap())
        });
        let bound = WireQuery::from_query(
            &view
                .substitute(&Update::insert("r1", Tuple::ints([9, 3])))
                .unwrap(),
        );
        group.bench_function(BenchmarkId::new("bound_probe", name), |b| {
            b.iter(|| source.answer(&bound).unwrap())
        });
    }
    group.finish();
}

fn bench_wire_codec(c: &mut Criterion) {
    let (view, db) = calibrated_db();
    let answer = view.eval(&db).unwrap();
    let msg = Message::QueryAnswer {
        id: eca_core::QueryId(1),
        answer,
    };
    let encoded = msg.encode();
    let mut group = c.benchmark_group("wire_codec");
    group.bench_function("encode_answer", |b| b.iter(|| msg.encode()));
    group.bench_function("decode_answer", |b| {
        b.iter(|| Message::decode(encoded.clone()).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_signed_bags, bench_spj, bench_physical_engine, bench_wire_codec
}
criterion_main!(benches);
