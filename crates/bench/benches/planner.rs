//! Planner microbenchmarks (see `EXPERIMENTS.md`).
//!
//! Three claims are timed here, with the matching I/O evidence produced
//! by the `planner_report` binary into `results/planner.json`:
//!
//! * planned SPJ evaluation (`spj`) beats the cross-select-project oracle
//!   (`spj_naive`) on 2/3/4-relation chain terms;
//! * predicate pushdown pays off most on selective single-relation
//!   conjuncts;
//! * multi-term queries (1/4/16 terms) answer faster with term batching
//!   and parallel term evaluation at the source.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eca_core::Query;
use eca_relational::algebra::{spj, spj_naive};
use eca_relational::{CmpOp, Predicate, SignedBag, Tuple};
use eca_storage::Scenario;
use eca_wire::WireQuery;
use eca_workload::{Example6, Params, UpdateMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `n_rel` chained binary relations with join values drawn from `0..dom`.
fn chain_inputs(n_rel: usize, rows: usize, dom: i64, seed: u64) -> Vec<SignedBag> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_rel)
        .map(|_| {
            SignedBag::from_tuples(
                (0..rows).map(|_| Tuple::ints([rng.gen_range(0..dom), rng.gen_range(0..dom)])),
            )
        })
        .collect()
}

/// The chain-join condition `col1 = col2 ∧ col3 = col4 ∧ …`.
fn chain_cond(n_rel: usize) -> Predicate {
    let mut cond = Predicate::True;
    for i in 1..n_rel {
        cond = cond.and(Predicate::col_eq(2 * i - 1, 2 * i));
    }
    cond
}

fn bench_spj_terms(c: &mut Criterion) {
    let mut group = c.benchmark_group("spj_term");
    for n_rel in [2usize, 3, 4] {
        // Keep the naive cross product tractable for 4 relations.
        let rows = if n_rel == 4 { 12 } else { 30 };
        let inputs = chain_inputs(n_rel, rows, 6, n_rel as u64);
        let refs: Vec<&SignedBag> = inputs.iter().collect();
        let cond = chain_cond(n_rel);
        let proj = vec![0usize, 2 * n_rel - 1];
        assert_eq!(
            spj(&refs, &cond, &proj).unwrap(),
            spj_naive(&refs, &cond, &proj).unwrap()
        );
        group.bench_function(BenchmarkId::new("planned", n_rel), |b| {
            b.iter(|| spj(black_box(&refs), &cond, &proj).unwrap())
        });
        group.bench_function(BenchmarkId::new("naive", n_rel), |b| {
            b.iter(|| spj_naive(black_box(&refs), &cond, &proj).unwrap())
        });
    }
    group.finish();
}

fn bench_pushdown_selectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("pushdown");
    let inputs = chain_inputs(3, 60, 8, 9);
    let refs: Vec<&SignedBag> = inputs.iter().collect();
    let proj = vec![0usize, 5];
    for (label, threshold) in [("selective", 7i64), ("non_selective", -1)] {
        let cond = chain_cond(3).and(Predicate::col_const(0, CmpOp::Gt, threshold));
        group.bench_function(BenchmarkId::new("planned", label), |b| {
            b.iter(|| spj(black_box(&refs), &cond, &proj).unwrap())
        });
        group.bench_function(BenchmarkId::new("naive", label), |b| {
            b.iter(|| spj_naive(black_box(&refs), &cond, &proj).unwrap())
        });
    }
    group.finish();
}

/// A k-term query over Example 6: one `V⟨U_i⟩` term per update from the
/// calibrated insert stream.
fn k_term_query(workload: &Example6, k: usize) -> Query {
    let view = Example6::view().unwrap();
    let mut terms = Vec::with_capacity(k);
    for u in workload.updates(3 * k, UpdateMix::InsertsOnly) {
        let q = view.substitute(&u).unwrap();
        terms.extend(q.terms().iter().cloned());
        if terms.len() >= k {
            break;
        }
    }
    terms.truncate(k);
    Query::from_terms(view, terms)
}

fn bench_multi_term(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_term");
    let workload = Example6::new(Params::default(), 1);
    for k in [1usize, 4, 16] {
        let query = k_term_query(&workload, k);
        let wire = WireQuery::from_query(&query);
        let mut per_term = workload.build_source(Scenario::Indexed).unwrap();
        group.bench_function(BenchmarkId::new("per_term", k), |b| {
            b.iter(|| per_term.answer(black_box(&wire)).unwrap())
        });
        let mut batched = workload.build_source(Scenario::Indexed).unwrap();
        batched.enable_term_batching();
        group.bench_function(BenchmarkId::new("batched", k), |b| {
            b.iter(|| batched.answer(black_box(&wire)).unwrap())
        });
        let mut parallel = workload.build_source(Scenario::Indexed).unwrap();
        parallel.enable_term_batching();
        group.bench_function(BenchmarkId::new("parallel", k), |b| {
            b.iter(|| parallel.answer_parallel(black_box(&wire)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spj_terms,
    bench_pushdown_selectivity,
    bench_multi_term
);
criterion_main!(benches);
