//! Measurement harness for the paper's §6 evaluation.
//!
//! Each experiment point runs the full stack — calibrated Example-6 data
//! loaded into the metered storage engine, a warehouse algorithm wired
//! through encoded message channels, a chosen interleaving policy — and
//! reports the three §6 cost factors next to the Appendix-D analytic
//! values:
//!
//! * `M` — maintenance messages (queries + answers),
//! * `B` — bytes transferred source → warehouse, reported both as the
//!   paper counts it (`S ×` answer tuples) and as real wire bytes,
//! * `IO` — source block reads.
//!
//! The series builders ([`fig62_series`], [`fig63_series`],
//! [`fig64_series`], [`fig65_series`], [`messages_series`],
//! [`crossover_report`]) regenerate each figure/table of the paper; the
//! `figures` binary prints them and can dump JSON artifacts.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod json;
pub mod recovery;
pub mod scenario_file;
pub mod selfmaint;
pub mod serving;
pub mod throughput;

use eca_core::algorithms::AlgorithmKind;
use eca_sim::{Policy, RunReport, Simulation};
use eca_storage::Scenario;
use eca_workload::{Example6, Params, UpdateMix};
use json::{Json, ToJson};

/// Which corner of the paper's best/worst envelope a run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corner {
    /// RV recomputing once after all `k` updates (`s = k`).
    RvBest,
    /// RV recomputing after every update (`s = 1`).
    RvWorst,
    /// ECA with fully spaced updates (no compensation).
    EcaBest,
    /// ECA with all updates preceding all query evaluations.
    EcaWorst,
}

impl Corner {
    /// All four corners, RV first.
    pub fn all() -> [Corner; 4] {
        [
            Corner::RvBest,
            Corner::RvWorst,
            Corner::EcaBest,
            Corner::EcaWorst,
        ]
    }

    /// Label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Corner::RvBest => "RVBest",
            Corner::RvWorst => "RVWorst",
            Corner::EcaBest => "ECABest",
            Corner::EcaWorst => "ECAWorst",
        }
    }

    fn algorithm(self, k: u64) -> AlgorithmKind {
        match self {
            Corner::RvBest => AlgorithmKind::RecomputeView { period: k.max(1) },
            Corner::RvWorst => AlgorithmKind::RecomputeView { period: 1 },
            Corner::EcaBest | Corner::EcaWorst => AlgorithmKind::EcaOptimized,
        }
    }

    fn policy(self) -> Policy {
        match self {
            Corner::RvBest | Corner::EcaWorst => Policy::AllUpdatesFirst,
            Corner::RvWorst | Corner::EcaBest => Policy::Serial,
        }
    }
}

/// One measured experiment point.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Algorithm label.
    pub algorithm: String,
    /// Corner label (RVBest/RVWorst/ECABest/ECAWorst) or policy name.
    pub corner: String,
    /// Cost scenario.
    pub scenario: String,
    /// Number of updates.
    pub k: u64,
    /// Relation cardinality `C`.
    pub cardinality: u64,
    /// Maintenance messages (queries + answers; notifications excluded).
    pub maintenance_messages: u64,
    /// Answer tuple occurrences transferred.
    pub answer_tuples: u64,
    /// `S × answer_tuples` — the paper's `B` accounting.
    pub paper_bytes: f64,
    /// Real encoded answer payload bytes.
    pub wire_answer_bytes: u64,
    /// Source block reads.
    pub io_reads: u64,
    /// Whether the final view was correct.
    pub converged: bool,
    /// Consistency level of the recorded history.
    pub consistency: String,
}

/// Run one experiment point.
///
/// For `k = 3` the paper's fixed three-insert script is used. For larger
/// `k` the stream is a balanced insert/delete churn: the paper's analysis
/// assumes `C`, `J` and the view size "do not change as updates occur"
/// (§6.2 assumption 5), which an insert-only stream would violate badly at
/// `k` comparable to `C`.
///
/// # Panics
/// Panics on internal simulation errors (experiments are deterministic;
/// a failure is a bug, not an operational condition).
pub fn measure(
    params: Params,
    seed: u64,
    k: u64,
    corner: Corner,
    scenario: Scenario,
) -> Measurement {
    let workload = Example6::new(params, seed);
    let updates = if k == 3 {
        workload.paper_updates()
    } else if corner == Corner::EcaWorst {
        // The worst-case envelope additionally assumes every pair of
        // updates on distinct relations mutually joins (each compensating
        // term transfers S·σ·J bytes) — a hot-group churn realizes that.
        workload.updates(k as usize, UpdateMix::CorrelatedChurn)
    } else {
        workload.updates(k as usize, UpdateMix::Mixed)
    };
    let report = run_sim(
        &workload,
        scenario,
        corner.algorithm(k),
        corner.policy(),
        updates,
    );
    into_measurement(params, k, corner.label(), scenario, &report)
}

/// Run one experiment with explicit algorithm/policy (used by the
/// ablations and the consistency audit example).
///
/// # Panics
/// As [`measure`].
pub fn measure_custom(
    params: Params,
    seed: u64,
    k: u64,
    kind: AlgorithmKind,
    policy: Policy,
    mix: UpdateMix,
    scenario: Scenario,
) -> Measurement {
    let workload = Example6::new(params, seed);
    let updates = workload.updates(k as usize, mix);
    let report = run_sim(&workload, scenario, kind, policy, updates);
    into_measurement(params, k, kind.label(), scenario, &report)
}

fn run_sim(
    workload: &Example6,
    scenario: Scenario,
    kind: AlgorithmKind,
    policy: Policy,
    updates: Vec<eca_relational::Update>,
) -> RunReport {
    let source = workload.build_source(scenario).expect("workload builds");
    let view = Example6::view().expect("static view");
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).expect("initial view");
    let warehouse = kind
        .instantiate_with_base(&view, initial, Some(snapshot))
        .expect("algorithm instantiation");
    Simulation::new(source, warehouse, updates)
        .expect("simulation wiring")
        .run(policy)
        .expect("simulation run")
}

fn into_measurement(
    params: Params,
    k: u64,
    corner: &str,
    scenario: Scenario,
    report: &RunReport,
) -> Measurement {
    let consistency =
        eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
    Measurement {
        algorithm: report.algorithm.to_owned(),
        corner: corner.to_owned(),
        scenario: scenario_label(scenario).to_owned(),
        k,
        cardinality: params.cardinality,
        maintenance_messages: report.maintenance_messages(),
        answer_tuples: report.answer_tuples,
        paper_bytes: params.projected_bytes as f64 * report.answer_tuples as f64,
        wire_answer_bytes: report.answer_bytes,
        io_reads: report.io_reads,
        converged: report.converged(),
        consistency: format!("{:?}", consistency.level()),
    }
}

fn scenario_label(s: Scenario) -> &'static str {
    match s {
        Scenario::Indexed => "scenario1",
        Scenario::NestedLoop { .. } => "scenario2",
    }
}

/// One row of a figure: an x value plus `(label, analytic, measured)`
/// series values.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// The x-axis value (`C` for Fig 6.2, `k` elsewhere).
    pub x: u64,
    /// Per-corner `(analytic, measured)` pairs keyed by corner label.
    pub series: Vec<SeriesPoint>,
}

/// One curve's value at one x.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// Curve label.
    pub label: &'static str,
    /// The Appendix-D closed form.
    pub analytic: f64,
    /// The measured value from the full-stack run.
    pub measured: f64,
}

impl ToJson for SeriesPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label)),
            ("analytic", Json::Num(self.analytic)),
            ("measured", Json::Num(self.measured)),
        ])
    }
}

impl ToJson for FigureRow {
    fn to_json(&self) -> Json {
        Json::obj([("x", Json::from(self.x)), ("series", self.series.to_json())])
    }
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::obj([
            ("algorithm", Json::str(self.algorithm.clone())),
            ("corner", Json::str(self.corner.clone())),
            ("scenario", Json::str(self.scenario.clone())),
            ("k", Json::from(self.k)),
            ("cardinality", Json::from(self.cardinality)),
            (
                "maintenance_messages",
                Json::from(self.maintenance_messages),
            ),
            ("answer_tuples", Json::from(self.answer_tuples)),
            ("paper_bytes", Json::Num(self.paper_bytes)),
            ("wire_answer_bytes", Json::from(self.wire_answer_bytes)),
            ("io_reads", Json::from(self.io_reads)),
            ("converged", Json::Bool(self.converged)),
            ("consistency", Json::str(self.consistency.clone())),
        ])
    }
}

impl ToJson for CrossoverLine {
    fn to_json(&self) -> Json {
        let opt = |k: Option<u64>| k.map_or(Json::Null, Json::from);
        Json::obj([
            ("comparison", Json::str(self.comparison)),
            ("paper", Json::str(self.paper)),
            ("analytic_k", opt(self.analytic_k)),
            ("measured_k", opt(self.measured_k)),
        ])
    }
}

/// Figure 6.2: bytes transferred vs cardinality `C` (k = 3 updates).
pub fn fig62_series(cs: &[u64], seed: u64) -> Vec<FigureRow> {
    cs.iter()
        .map(|&c| {
            let p = Params {
                cardinality: c,
                ..Params::default()
            };
            let series = Corner::all()
                .into_iter()
                .map(|corner| {
                    let analytic = analytic_bytes(&p, 3, corner);
                    let m = measure(p, seed, 3, corner, Scenario::Indexed);
                    SeriesPoint {
                        label: corner.label(),
                        analytic,
                        measured: m.paper_bytes,
                    }
                })
                .collect();
            FigureRow { x: c, series }
        })
        .collect()
}

/// Figure 6.3: bytes transferred vs number of updates `k` (C = 100).
pub fn fig63_series(ks: &[u64], seed: u64) -> Vec<FigureRow> {
    let p = Params::default();
    ks.iter()
        .map(|&k| {
            let series = Corner::all()
                .into_iter()
                .map(|corner| {
                    let analytic = analytic_bytes(&p, k, corner);
                    let m = measure(p, seed, k, corner, Scenario::Indexed);
                    SeriesPoint {
                        label: corner.label(),
                        analytic,
                        measured: m.paper_bytes,
                    }
                })
                .collect();
            FigureRow { x: k, series }
        })
        .collect()
}

/// Figure 6.4: I/O vs `k`, Scenario 1 (indexes + ample memory).
pub fn fig64_series(ks: &[u64], seed: u64) -> Vec<FigureRow> {
    io_series(ks, seed, Scenario::Indexed)
}

/// Figure 6.5: I/O vs `k`, Scenario 2 (no indexes, 3 memory blocks).
pub fn fig65_series(ks: &[u64], seed: u64) -> Vec<FigureRow> {
    io_series(ks, seed, Scenario::nested_loop_default())
}

fn io_series(ks: &[u64], seed: u64, scenario: Scenario) -> Vec<FigureRow> {
    let p = Params::default();
    ks.iter()
        .map(|&k| {
            let series = Corner::all()
                .into_iter()
                .map(|corner| {
                    let analytic = analytic_io(&p, k, corner, scenario);
                    let m = measure(p, seed, k, corner, scenario);
                    SeriesPoint {
                        label: corner.label(),
                        analytic,
                        measured: m.io_reads as f64,
                    }
                })
                .collect();
            FigureRow { x: k, series }
        })
        .collect()
}

/// §6.1 message-count series: `M` vs `k` for ECA and RV (s = 1 and s = k).
pub fn messages_series(ks: &[u64], seed: u64) -> Vec<FigureRow> {
    let p = Params::default();
    ks.iter()
        .map(|&k| {
            let eca = measure(p, seed, k, Corner::EcaBest, Scenario::Indexed);
            let rv1 = measure(p, seed, k, Corner::RvWorst, Scenario::Indexed);
            let rvk = measure(p, seed, k, Corner::RvBest, Scenario::Indexed);
            FigureRow {
                x: k,
                series: vec![
                    SeriesPoint {
                        label: "ECA (2k)",
                        analytic: eca_analytic::messages::m_eca(k) as f64,
                        measured: eca.maintenance_messages as f64,
                    },
                    SeriesPoint {
                        label: "RV s=1",
                        analytic: eca_analytic::messages::m_rv(k, 1) as f64,
                        measured: rv1.maintenance_messages as f64,
                    },
                    SeriesPoint {
                        label: "RV s=k",
                        analytic: eca_analytic::messages::m_rv(k, k.max(1)) as f64,
                        measured: rvk.maintenance_messages as f64,
                    },
                ],
            }
        })
        .collect()
}

fn analytic_bytes(p: &Params, k: u64, corner: Corner) -> f64 {
    use eca_analytic::bytes;
    match corner {
        Corner::RvBest => bytes::b_rv_best(p),
        Corner::RvWorst => bytes::b_rv_worst(p, k),
        Corner::EcaBest => bytes::b_eca_best(p, k),
        Corner::EcaWorst => bytes::b_eca_worst(p, k),
    }
}

fn analytic_io(p: &Params, k: u64, corner: Corner, scenario: Scenario) -> f64 {
    use eca_analytic::io::{scenario1, scenario2};
    match scenario {
        Scenario::Indexed => match corner {
            Corner::RvBest => scenario1::rv_best(p) as f64,
            Corner::RvWorst => scenario1::rv_worst(p, k) as f64,
            Corner::EcaBest => scenario1::eca_best(p, k) as f64,
            Corner::EcaWorst => scenario1::eca_worst(p, k),
        },
        Scenario::NestedLoop { .. } => match corner {
            Corner::RvBest => scenario2::rv_best(p) as f64,
            Corner::RvWorst => scenario2::rv_worst(p, k) as f64,
            Corner::EcaBest => scenario2::eca_best(p, k) as f64,
            Corner::EcaWorst => scenario2::eca_worst(p, k),
        },
    }
}

/// Batching ablation (paper §7 future work): costs of Batch-ECA as the
/// batch size grows, under the adversarial interleaving.
pub fn batch_series(k: u64, batch_sizes: &[usize], seed: u64) -> Vec<FigureRow> {
    let p = Params::default();
    batch_sizes
        .iter()
        .map(|&n| {
            let m = measure_custom(
                p,
                seed,
                k,
                AlgorithmKind::BatchEca { batch_size: n },
                Policy::AllUpdatesFirst,
                UpdateMix::Mixed,
                Scenario::Indexed,
            );
            assert!(m.converged, "batch size {n} must converge");
            FigureRow {
                x: n as u64,
                series: vec![
                    SeriesPoint {
                        label: "messages",
                        analytic: (2 * k.div_ceil(n as u64)) as f64,
                        measured: m.maintenance_messages as f64,
                    },
                    SeriesPoint {
                        label: "B (S*tuples)",
                        analytic: eca_analytic::bytes::b_eca_worst(&p, k),
                        measured: m.paper_bytes,
                    },
                    SeriesPoint {
                        label: "IO (S1)",
                        analytic: eca_analytic::io::scenario1::eca_worst(&p, k),
                        measured: m.io_reads as f64,
                    },
                ],
            }
        })
        .collect()
}

/// One line of the crossover report.
#[derive(Clone, Debug)]
pub struct CrossoverLine {
    /// What crosses what.
    pub comparison: &'static str,
    /// The paper's quoted crossover.
    pub paper: &'static str,
    /// Crossover of the analytic curves.
    pub analytic_k: Option<u64>,
    /// Crossover of the measured curves.
    pub measured_k: Option<u64>,
}

/// The §6.2–6.3 headline crossovers, analytic and measured.
pub fn crossover_report(seed: u64) -> Vec<CrossoverLine> {
    use eca_analytic::crossover::crossover_k;
    let p = Params::default();

    let measured_cross = |corner: Corner,
                          scenario: Scenario,
                          metric: fn(&Measurement) -> f64,
                          baseline_corner: Corner,
                          max_k: u64,
                          step: u64| {
        (1..=max_k).step_by(step as usize).find(|&k| {
            let a = metric(&measure(p, seed, k, corner, scenario));
            let b = metric(&measure(p, seed, k, baseline_corner, scenario));
            a >= b
        })
    };

    vec![
        CrossoverLine {
            comparison: "B: ECA best vs RV recompute-once",
            paper: "k = 100",
            analytic_k: crossover_k(
                200,
                |k| eca_analytic::bytes::b_eca_best(&p, k),
                |_| eca_analytic::bytes::b_rv_best(&p),
            ),
            measured_k: measured_cross(
                Corner::EcaBest,
                Scenario::Indexed,
                |m| m.paper_bytes,
                Corner::RvBest,
                140,
                1,
            ),
        },
        CrossoverLine {
            comparison: "B: ECA worst vs RV recompute-once",
            paper: "k = 30",
            analytic_k: crossover_k(
                200,
                |k| eca_analytic::bytes::b_eca_worst(&p, k),
                |_| eca_analytic::bytes::b_rv_best(&p),
            ),
            measured_k: measured_cross(
                Corner::EcaWorst,
                Scenario::Indexed,
                |m| m.paper_bytes,
                Corner::RvBest,
                100,
                1,
            ),
        },
        CrossoverLine {
            comparison: "IO S1: ECA best vs RV recompute-once",
            paper: "k = 3",
            analytic_k: crossover_k(
                50,
                |k| eca_analytic::io::scenario1::eca_best(&p, k) as f64,
                |_| eca_analytic::io::scenario1::rv_best(&p) as f64,
            ),
            measured_k: measured_cross(
                Corner::EcaBest,
                Scenario::Indexed,
                |m| m.io_reads as f64,
                Corner::RvBest,
                20,
                1,
            ),
        },
        CrossoverLine {
            comparison: "IO S2: ECA best vs RV recompute-once",
            paper: "5 < k < 8 (worst) .. 9 (best)",
            analytic_k: crossover_k(
                50,
                |k| eca_analytic::io::scenario2::eca_best(&p, k) as f64,
                |_| eca_analytic::io::scenario2::rv_best(&p) as f64,
            ),
            measured_k: measured_cross(
                Corner::EcaBest,
                Scenario::nested_loop_default(),
                |m| m.io_reads as f64,
                Corner::RvBest,
                30,
                1,
            ),
        },
    ]
}

/// Render rows as an aligned text table.
pub fn render_rows(title: &str, x_name: &str, rows: &[FigureRow]) -> String {
    let mut out = format!("## {title}\n");
    if let Some(first) = rows.first() {
        out.push_str(&format!("{x_name:>6}"));
        for sp in &first.series {
            out.push_str(&format!(
                " | {:>12} {:>12}",
                format!("{}(an)", sp.label),
                "(meas)"
            ));
        }
        out.push('\n');
    }
    for row in rows {
        out.push_str(&format!("{:>6}", row.x));
        for sp in &row.series {
            out.push_str(&format!(" | {:>12.1} {:>12.1}", sp.analytic, sp.measured));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_rv_best_bytes_track_analytic() {
        let p = Params::default();
        let m = measure(p, 1, 3, Corner::RvBest, Scenario::Indexed);
        let analytic = eca_analytic::bytes::b_rv_best(&p);
        let ratio = m.paper_bytes / analytic;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}: {m:?}");
        assert!(m.converged);
    }

    #[test]
    fn measured_eca_best_bytes_track_analytic() {
        let p = Params::default();
        let m = measure(p, 1, 3, Corner::EcaBest, Scenario::Indexed);
        let analytic = eca_analytic::bytes::b_eca_best(&p, 3);
        let ratio = m.paper_bytes / analytic;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}: {m:?}");
        assert!(m.converged);
        assert_eq!(m.maintenance_messages, 6, "2k messages for ECA");
    }

    #[test]
    fn measured_io_scenario1_rv_is_3i() {
        let p = Params::default();
        let m = measure(p, 1, 3, Corner::RvBest, Scenario::Indexed);
        // The paper's 3-update script inserts one tuple into each
        // relation, so each scan covers ⌈(C+1)/K⌉ blocks.
        let i_after = (p.cardinality + 1).div_ceil(p.tuples_per_block as u64);
        assert_eq!(m.io_reads, 3 * i_after);
    }

    #[test]
    fn eca_beats_rv_on_bytes_at_small_k() {
        let p = Params::default();
        let eca = measure(p, 1, 3, Corner::EcaWorst, Scenario::Indexed);
        let rv = measure(p, 1, 3, Corner::RvBest, Scenario::Indexed);
        assert!(eca.paper_bytes < rv.paper_bytes, "eca {eca:?} rv {rv:?}");
    }

    #[test]
    fn rv_beats_eca_on_bytes_at_large_k() {
        let p = Params::default();
        let eca = measure(p, 1, 120, Corner::EcaBest, Scenario::Indexed);
        let rv = measure(p, 1, 120, Corner::RvBest, Scenario::Indexed);
        assert!(
            rv.paper_bytes < eca.paper_bytes,
            "eca {} rv {}",
            eca.paper_bytes,
            rv.paper_bytes
        );
    }

    #[test]
    fn all_corners_converge_and_are_strongly_consistent() {
        let p = Params::default();
        for corner in Corner::all() {
            let m = measure(p, 2, 7, corner, Scenario::Indexed);
            assert!(m.converged, "{corner:?}");
            assert!(
                m.consistency == "StronglyConsistent" || m.consistency == "Complete",
                "{corner:?}: {}",
                m.consistency
            );
        }
    }
}
