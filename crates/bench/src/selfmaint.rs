//! Self-maintenance experiments: ECA-Aux on the fig-6.x scenarios.
//!
//! Two artifacts:
//!
//! * **Comparison** — M and B for ECA-Aux next to ECA, Batch-ECA and SC
//!   on the calibrated Example-6 workload (the fig-6.3 parameter point),
//!   all driven over identical update scripts.
//! * **Storage-vs-savings curve** — sweep auxiliary coverage from zero
//!   relations (plain ECA behaviour) to all three (SC-like, zero
//!   messages), reporting the measured messages against the exact
//!   closed form and the *real* storage bill: auxiliary bags loaded into
//!   metered [`eca_storage::Table`]s, reporting resident blocks and
//!   charged write touches — not bare tuple counts.

use eca_core::algorithms::{AlgorithmKind, EcaAux};
use eca_core::maintainer::{SelfMaintStats, ViewMaintainer};
use eca_sim::{Policy, RunReport, Simulation};
use eca_storage::{IoMeter, Scenario, Table};
use eca_workload::{Example6, Params, UpdateMix};

use crate::json::{Json, ToJson};
use crate::Measurement;

/// One point of the coverage sweep.
#[derive(Clone, Debug)]
pub struct SelfMaintPoint {
    /// How many of the three relations carry an auxiliary view.
    pub covered: usize,
    /// Number of updates.
    pub k: u64,
    /// Analytic fraction of updates answerable locally.
    pub local_fraction: f64,
    /// Exact closed-form message count for this script and coverage.
    pub messages_analytic: u64,
    /// Measured maintenance messages (queries + answers).
    pub messages_measured: u64,
    /// The ECA baseline's measured messages on the same script.
    pub messages_eca: u64,
    /// Updates answered with zero source round-trips.
    pub local_updates: u64,
    /// Updates that round-tripped to the source.
    pub remote_updates: u64,
    /// `S × answer tuples` — the paper's `B` for ECA-Aux.
    pub paper_bytes: f64,
    /// The ECA baseline's `B` on the same script.
    pub paper_bytes_eca: f64,
    /// Tuples resident across the auxiliary views after the run.
    pub aux_tuples: u64,
    /// Encoded bytes resident across the auxiliary views.
    pub aux_bytes: u64,
    /// Storage blocks the auxiliaries occupy when loaded into real
    /// tables at the workload's `K` tuples/block.
    pub aux_blocks: u64,
    /// Block write touches charged by the metered load.
    pub aux_load_writes: u64,
    /// Whether the final view matched direct evaluation.
    pub converged: bool,
}

impl ToJson for SelfMaintPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("covered_relations", Json::from(self.covered as u64)),
            ("k", Json::from(self.k)),
            ("local_fraction", Json::Num(self.local_fraction)),
            ("messages_analytic", Json::from(self.messages_analytic)),
            ("messages_measured", Json::from(self.messages_measured)),
            ("messages_eca", Json::from(self.messages_eca)),
            ("local_updates", Json::from(self.local_updates)),
            ("remote_updates", Json::from(self.remote_updates)),
            ("paper_bytes", Json::Num(self.paper_bytes)),
            ("paper_bytes_eca", Json::Num(self.paper_bytes_eca)),
            ("aux_tuples", Json::from(self.aux_tuples)),
            ("aux_bytes", Json::from(self.aux_bytes)),
            ("aux_blocks", Json::from(self.aux_blocks)),
            ("aux_load_writes", Json::from(self.aux_load_writes)),
            ("converged", Json::Bool(self.converged)),
        ])
    }
}

/// Run the keyed Example-6 workload under the given maintainer.
fn run_keyed(
    workload: &Example6,
    scenario: Scenario,
    updates: Vec<eca_relational::Update>,
    build: impl FnOnce(
        &eca_core::ViewDef,
        eca_relational::SignedBag,
        eca_core::BaseDb,
    ) -> Box<dyn ViewMaintainer>,
    policy: Policy,
) -> RunReport {
    let source = workload.build_source(scenario).expect("workload builds");
    let view = Example6::keyed_view().expect("static view");
    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot).expect("initial view");
    let maintainer = build(&view, initial, snapshot);
    Simulation::new(source, maintainer, updates)
        .expect("simulation wiring")
        .run(policy)
        .expect("simulation run")
}

/// Relation indices (0..3) of an Example-6 update script.
fn script_relations(updates: &[eca_relational::Update]) -> Vec<usize> {
    updates
        .iter()
        .map(|u| match u.relation.as_str() {
            "r1" => 0,
            "r2" => 1,
            "r3" => 2,
            other => panic!("unknown relation {other}"),
        })
        .collect()
}

/// Load the auxiliary snapshots into real storage tables and report
/// `(blocks, write touches)` — the honest storage bill.
///
/// # Panics
/// On storage construction errors (attribute names are generated).
pub fn aux_residency(stats: &SelfMaintStats, tuples_per_block: usize) -> (u64, u64) {
    let meter = IoMeter::new();
    let mut blocks = 0;
    for snap in &stats.auxiliaries {
        let attrs: Vec<String> = (0..snap.retained.len()).map(|i| format!("c{i}")).collect();
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let schema = eca_relational::Schema::new(&snap.relation, &attr_refs);
        let mut table = Table::new(schema, tuples_per_block, None, &[], meter.clone())
            .expect("auxiliary table");
        for (tuple, count) in snap.bag.iter() {
            for _ in 0..count.max(0) {
                table.insert(tuple.clone());
            }
        }
        blocks += table.num_blocks();
    }
    (blocks, meter.update_writes())
}

/// The storage-vs-message-savings curve: coverage 0..=3 relations over
/// one `k`-update Mixed script at the fig-6.3 parameter point, under the
/// adversarial interleaving.
///
/// # Panics
/// On simulation failures (deterministic; a failure is a bug).
pub fn storage_curve(k: u64, seed: u64) -> Vec<SelfMaintPoint> {
    let params = Params::default();
    let workload = Example6::new(params, seed);
    let updates = workload.updates(k as usize, UpdateMix::Mixed);
    let script = script_relations(&updates);

    let eca = run_keyed(
        &workload,
        Scenario::Indexed,
        updates.clone(),
        |view, initial, snapshot| {
            AlgorithmKind::EcaOptimized
                .instantiate_with_base(view, initial, Some(snapshot))
                .expect("ECA instantiation")
        },
        Policy::AllUpdatesFirst,
    );

    (0..=3usize)
        .map(|n| {
            let coverage = [n >= 1, n >= 2, n >= 3];
            let report = run_keyed(
                &workload,
                Scenario::Indexed,
                updates.clone(),
                |view, initial, snapshot| {
                    Box::new(
                        EcaAux::with_coverage(view.clone(), initial, &coverage, Some(&snapshot))
                            .expect("coverage matches arity"),
                    )
                },
                Policy::AllUpdatesFirst,
            );
            let stats = report.selfmaint.as_ref().expect("EcaAux reports stats");
            let (aux_blocks, aux_load_writes) = aux_residency(stats, params.tuples_per_block);
            SelfMaintPoint {
                covered: n,
                k,
                local_fraction: eca_analytic::selfmaint::local_fraction(&coverage),
                messages_analytic: eca_analytic::selfmaint::m_eca_aux_exact(&script, &coverage),
                messages_measured: report.maintenance_messages(),
                messages_eca: eca.maintenance_messages(),
                local_updates: stats.local_updates,
                remote_updates: stats.remote_updates,
                paper_bytes: params.projected_bytes as f64 * report.answer_tuples as f64,
                paper_bytes_eca: params.projected_bytes as f64 * eca.answer_tuples as f64,
                aux_tuples: stats.aux_tuples,
                aux_bytes: stats.aux_bytes,
                aux_blocks,
                aux_load_writes,
                converged: report.converged(),
            }
        })
        .collect()
}

/// M and B for ECA-Aux against ECA, Batch-ECA and SC on one identical
/// `k`-update Mixed script (the fig-6.x comparison, extended with the
/// self-maintaining point).
///
/// # Panics
/// On simulation failures (deterministic; a failure is a bug).
pub fn comparison(k: u64, seed: u64) -> Vec<Measurement> {
    let params = Params::default();
    let workload = Example6::new(params, seed);
    let updates = workload.updates(k as usize, UpdateMix::Mixed);
    [
        AlgorithmKind::EcaOptimized,
        AlgorithmKind::BatchEca {
            batch_size: (k as usize / 4).max(1),
        },
        AlgorithmKind::StoreCopies,
        AlgorithmKind::EcaAux,
    ]
    .into_iter()
    .map(|kind| {
        let report = run_keyed(
            &workload,
            Scenario::Indexed,
            updates.clone(),
            |view, initial, snapshot| {
                kind.instantiate_with_base(view, initial, Some(snapshot))
                    .expect("algorithm instantiation")
            },
            Policy::AllUpdatesFirst,
        );
        crate::into_measurement(params, k, kind.label(), Scenario::Indexed, &report)
    })
    .collect()
}

/// The `results/selfmaint.json` document.
///
/// # Panics
/// As [`storage_curve`] / [`comparison`].
pub fn report(k: u64, seed: u64) -> Json {
    let curve = storage_curve(k, seed);
    let algorithms = comparison(k, seed);
    Json::obj([
        (
            "benchmark",
            Json::str("auxiliary-view self-maintenance (ECA-Aux)"),
        ),
        (
            "method",
            Json::str(
                "keyed Example-6 workload, k Mixed updates, adversarial \
                 interleaving; coverage swept 0..=3 auxiliary views with \
                 messages checked against the exact closed form; storage \
                 billed by loading auxiliary bags into metered tables",
            ),
        ),
        ("k", Json::from(k)),
        ("seed", Json::from(seed)),
        (
            "storage_curve",
            Json::arr(curve.iter().map(ToJson::to_json)),
        ),
        (
            "algorithms",
            Json::arr(algorithms.iter().map(ToJson::to_json)),
        ),
    ])
}

/// The CI gate: on the fig-6.x scenario with full keyed coverage,
/// ECA-Aux must answer at least half the compensating queries locally
/// *and* cut maintenance messages by ≥50% vs ECA. Prints the evidence
/// and returns whether the gate holds.
///
/// # Panics
/// As [`storage_curve`].
pub fn smoke(k: u64, seed: u64) -> bool {
    let curve = storage_curve(k, seed);
    let full = curve.last().expect("sweep is non-empty");
    let local_share =
        full.local_updates as f64 / (full.local_updates + full.remote_updates).max(1) as f64;
    let cut = 1.0 - full.messages_measured as f64 / full.messages_eca.max(1) as f64;
    println!(
        "selfmaint smoke: k={k} local={}/{} ({:.0}%), M {} vs ECA {} ({:.0}% cut), \
         aux {} blocks / {} bytes",
        full.local_updates,
        full.local_updates + full.remote_updates,
        100.0 * local_share,
        full.messages_measured,
        full.messages_eca,
        100.0 * cut,
        full.aux_blocks,
        full.aux_bytes,
    );
    let mut ok = true;
    if !full.converged {
        eprintln!("FAIL: ECA-Aux did not converge");
        ok = false;
    }
    if local_share < 0.5 {
        eprintln!(
            "FAIL: only {:.0}% of updates answered locally (need >=50%)",
            100.0 * local_share
        );
        ok = false;
    }
    if cut < 0.5 {
        eprintln!(
            "FAIL: message cut vs ECA is {:.0}% (need >=50%)",
            100.0 * cut
        );
        ok = false;
    }
    if full.messages_measured != full.messages_analytic {
        eprintln!(
            "FAIL: measured messages {} diverge from closed form {}",
            full.messages_measured, full.messages_analytic
        );
        ok = false;
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_matches_closed_form_at_every_coverage() {
        for point in storage_curve(12, 3) {
            assert!(point.converged, "coverage {}", point.covered);
            assert_eq!(
                point.messages_measured, point.messages_analytic,
                "coverage {}",
                point.covered
            );
            assert_eq!(
                point.messages_measured,
                2 * point.remote_updates,
                "coverage {}",
                point.covered
            );
        }
    }

    #[test]
    fn storage_rises_as_messages_fall() {
        let curve = storage_curve(12, 3);
        assert_eq!(curve[0].aux_blocks, 0, "no coverage, no storage");
        assert_eq!(curve[0].messages_measured, curve[0].messages_eca);
        assert_eq!(curve[3].messages_measured, 0, "full coverage, no wire");
        for w in curve.windows(2) {
            assert!(w[1].aux_blocks >= w[0].aux_blocks);
            assert!(w[1].messages_measured <= w[0].messages_measured);
        }
        assert!(curve[3].aux_blocks > 0);
        assert!(curve[3].aux_load_writes > 0, "loads are metered");
    }

    #[test]
    fn comparison_ranks_algorithms_as_expected() {
        let ms = comparison(12, 3);
        let by_label = |label: &str| {
            ms.iter()
                .find(|m| m.corner == label)
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let eca = by_label("ECA*");
        let sc = by_label("SC");
        let aux = by_label("ECA-Aux");
        for m in &ms {
            assert!(m.converged, "{}", m.corner);
        }
        assert_eq!(sc.maintenance_messages, 0);
        assert_eq!(aux.maintenance_messages, 0, "full keyed coverage");
        assert!(eca.maintenance_messages >= 2 * 12);
    }

    #[test]
    fn smoke_gate_passes_on_the_default_scenario() {
        assert!(smoke(12, 1));
    }
}
