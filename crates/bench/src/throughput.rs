//! End-to-end throughput harness: serial vs concurrent warehouse runtime.
//!
//! Each scenario deploys M autonomous sources × V ECA views per source ×
//! U scripted updates per source, with a simulated per-block device
//! latency at every source (the paper's cost model is block I/O; the
//! latency turns counted blocks into wall time so throughput observes
//! the waiting the counts imply). Both runtimes speak the same protocol
//! over [`SharedFifo`] links and answer every query on the post-script
//! state, so `M`, `B` and block-read totals are *identical* — the only
//! thing that differs is wall-clock time:
//!
//! * **serial** — the PR-2 status quo: one thread interleaves script
//!   execution, `Warehouse::pump`, and one-at-a-time source answering,
//!   so every block wait is paid sequentially;
//! * **concurrent** — [`eca_warehouse::ConcurrentWarehouse::pump_all`] (a pump thread
//!   per source) against [`Source::serve_pool`] (N answer workers per
//!   source over snapshot reads), overlapping waits across sources and
//!   across outstanding queries.
//!
//! The harness asserts convergence (every view equals its definition
//! evaluated on the final base state) and meter equality between the two
//! runtimes before reporting a single updates/sec number for each.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
use eca_source::{serve_fleet, FleetMember, Source};
use eca_storage::Scenario;
use eca_warehouse::{connect_source, SourceId, ViewId, Warehouse};
use eca_wire::{
    read_frame, Message, Poller, Role, SharedFifo, TcpTransport, TransferMeter, Transport,
};

use crate::json::Json;

/// One throughput scenario: M sources × V views × U updates.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputConfig {
    /// Number of autonomous sources (and pump threads).
    pub sources: usize,
    /// ECA views hosted per source.
    pub views_per_source: usize,
    /// Scripted updates per source (insert-only, so all effective).
    pub updates_per_source: usize,
    /// Answer workers per source in the concurrent runtime.
    pub workers: usize,
    /// Simulated device latency per block read at each source.
    pub io_latency: Duration,
}

impl ThroughputConfig {
    /// Total effective updates across all sources.
    pub fn total_updates(&self) -> u64 {
        (self.sources * self.updates_per_source) as u64
    }
}

/// What one runtime did on one scenario.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeResult {
    /// Wall-clock time from first update to full quiescence.
    pub wall: Duration,
    /// Effective updates processed per second of wall time.
    pub updates_per_sec: f64,
    /// Query round-trips (queries sent == answers received).
    pub query_roundtrips: u64,
    /// Total messages in both directions across all links (paper `M`
    /// plus update notifications).
    pub messages: u64,
    /// Total bytes source → warehouse (includes answer payloads).
    pub bytes_s2w: u64,
    /// Answer payload bytes (the paper's `B`).
    pub answer_bytes: u64,
    /// Total source block reads charged to query evaluation.
    pub io_reads: u64,
}

/// Serial and concurrent results for one configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioResult {
    /// The configuration that was run.
    pub config: ThroughputConfig,
    /// The single-threaded baseline.
    pub serial: RuntimeResult,
    /// The thread-per-source runtime.
    pub concurrent: RuntimeResult,
}

impl ScenarioResult {
    /// Concurrent updates/sec over serial updates/sec.
    pub fn speedup(&self) -> f64 {
        self.concurrent.updates_per_sec / self.serial.updates_per_sec
    }

    /// JSON object for the artifact files.
    pub fn to_json(&self) -> Json {
        let runtime = |r: &RuntimeResult| {
            Json::obj([
                ("wall_seconds", Json::Num(r.wall.as_secs_f64())),
                ("updates_per_sec", Json::Num(r.updates_per_sec)),
                ("query_roundtrips", Json::Int(r.query_roundtrips as i64)),
                ("messages", Json::Int(r.messages as i64)),
                ("bytes_s2w", Json::Int(r.bytes_s2w as i64)),
                ("answer_bytes", Json::Int(r.answer_bytes as i64)),
                ("io_reads", Json::Int(r.io_reads as i64)),
            ])
        };
        Json::obj([
            ("sources", Json::Int(self.config.sources as i64)),
            (
                "views_per_source",
                Json::Int(self.config.views_per_source as i64),
            ),
            (
                "updates_per_source",
                Json::Int(self.config.updates_per_source as i64),
            ),
            ("workers", Json::Int(self.config.workers as i64)),
            (
                "io_latency_us",
                Json::Int(self.config.io_latency.as_micros() as i64),
            ),
            ("serial", runtime(&self.serial)),
            ("concurrent", runtime(&self.concurrent)),
            ("speedup", Json::Num(self.speedup())),
        ])
    }
}

/// Join attribute domain size: every insert joins with a few preloaded
/// rows, so compensating queries return non-trivial answers.
const JOIN_DOMAIN: i64 = 17;
/// Preloaded rows per relation.
const PRELOAD: i64 = 50;

fn relation_names(s: usize) -> (String, String) {
    (format!("t{s}_1"), format!("t{s}_2"))
}

/// A freshly loaded source `s` plus the definitions of its views.
fn build_source(s: usize, cfg: &ThroughputConfig) -> (Source, Vec<ViewDef>) {
    let (r1, r2) = relation_names(s);
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new(&r1, &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new(&r2, &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source
        .load(&r1, (0..PRELOAD).map(|j| Tuple::ints([j, j % JOIN_DOMAIN])))
        .unwrap();
    source
        .load(
            &r2,
            (0..PRELOAD).map(|j| Tuple::ints([j % JOIN_DOMAIN, 3000 + j])),
        )
        .unwrap();
    source.set_io_latency(cfg.io_latency);
    let views = (0..cfg.views_per_source)
        .map(|v| {
            ViewDef::new(
                format!("V{s}_{v}"),
                vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])],
                Predicate::col_eq(1, 2),
                vec![0],
            )
            .unwrap()
        })
        .collect();
    (source, views)
}

/// Insert-only script for source `s`: alternating inserts into both
/// relations, always landing in the join domain.
fn build_script(s: usize, cfg: &ThroughputConfig) -> Vec<Update> {
    let (r1, r2) = relation_names(s);
    (0..cfg.updates_per_source as i64)
        .map(|i| {
            if i % 2 == 0 {
                Update::insert(&r1, Tuple::ints([1000 + i, i % JOIN_DOMAIN]))
            } else {
                Update::insert(&r2, Tuple::ints([i % JOIN_DOMAIN, 2000 + i]))
            }
        })
        .collect()
}

/// A full deployment, ready to run: sources, scripts, transports, and a
/// warehouse hosting every view.
struct Deployment {
    sources: Vec<Source>,
    scripts: Vec<Vec<Update>>,
    views: Vec<Vec<ViewDef>>,
    view_ids: Vec<Vec<ViewId>>,
    src_ends: Vec<SharedFifo>,
    wh_ends: Vec<SharedFifo>,
    meters: Vec<TransferMeter>,
    warehouse: Warehouse,
}

fn deploy(cfg: &ThroughputConfig) -> Deployment {
    let mut d = Deployment {
        sources: Vec::new(),
        scripts: Vec::new(),
        views: Vec::new(),
        view_ids: Vec::new(),
        src_ends: Vec::new(),
        wh_ends: Vec::new(),
        meters: Vec::new(),
        warehouse: Warehouse::new(),
    };
    // Throughput runs measure maintenance, not the §3.1 history audit:
    // without this, cloning the ever-growing MV after every event is
    // O(U²) CPU per view and (on few cores) drowns the I/O waiting both
    // runtimes are supposed to expose.
    d.warehouse.set_record_history(false);
    for s in 0..cfg.sources {
        let (source, views) = build_source(s, cfg);
        let src = d.warehouse.add_source(format!("s{s}"));
        let mut ids = Vec::new();
        for view in &views {
            let initial = view.eval(&source.snapshot()).unwrap();
            let maintainer = AlgorithmKind::Eca.instantiate(view, initial).unwrap();
            ids.push(d.warehouse.add_view(src, maintainer).unwrap());
        }
        let meter = TransferMeter::new();
        let (src_end, wh_end) = SharedFifo::pair(meter.clone());
        d.sources.push(source);
        d.scripts.push(build_script(s, cfg));
        d.views.push(views);
        d.view_ids.push(ids);
        d.src_ends.push(src_end);
        d.wh_ends.push(wh_end);
        d.meters.push(meter);
    }
    d
}

/// Collect a [`RuntimeResult`] from a finished deployment's meters.
fn collect(
    cfg: &ThroughputConfig,
    wall: Duration,
    meters: &[TransferMeter],
    sources: &[Source],
) -> RuntimeResult {
    let messages: u64 = meters
        .iter()
        .map(|m| m.messages_s2w() + m.messages_w2s())
        .sum();
    RuntimeResult {
        wall,
        updates_per_sec: cfg.total_updates() as f64 / wall.as_secs_f64(),
        query_roundtrips: meters.iter().map(|m| m.messages_w2s()).sum(),
        messages,
        bytes_s2w: meters.iter().map(|m| m.bytes_s2w()).sum(),
        answer_bytes: meters.iter().map(|m| m.answer_bytes()).sum(),
        io_reads: sources.iter().map(|s| s.io_meter().query_reads()).sum(),
    }
}

/// Check every view against its definition evaluated on the final base
/// state.
fn assert_converged(views: &[Vec<ViewDef>], sources: &[Source], materialized: &[Vec<SignedBag>]) {
    for (s, source) in sources.iter().enumerate() {
        let snapshot = source.snapshot();
        for (v, view) in views[s].iter().enumerate() {
            let expected = view.eval(&snapshot).unwrap();
            assert_eq!(
                materialized[s][v], expected,
                "view V{s}_{v} diverged from its definition"
            );
        }
    }
}

/// Run the serial baseline: one thread does everything, so every block
/// wait at every source is paid sequentially. Updates all execute first
/// (the same AllUpdatesFirst phase structure `Source::serve` imposes),
/// then warehouse pump and source answering alternate until quiescence.
pub fn run_serial(cfg: &ThroughputConfig) -> (RuntimeResult, Vec<Vec<SignedBag>>) {
    let mut d = deploy(cfg);
    let start = Instant::now();
    for s in 0..cfg.sources {
        for u in &d.scripts[s].clone() {
            assert!(d.sources[s].execute_update(u));
            d.src_ends[s]
                .send(&Message::UpdateNotification { update: u.clone() })
                .unwrap();
        }
    }
    loop {
        let mut progress = false;
        for s in 0..cfg.sources {
            let src = SourceId(s);
            progress |= d.warehouse.pump(src, &mut d.wh_ends[s]).unwrap() > 0;
            while let Some(msg) = d.src_ends[s].try_recv().unwrap() {
                let Message::QueryRequest { id, query } = msg else {
                    panic!("unexpected message at source {s}");
                };
                // The warehouse pump records answer payloads on the
                // shared meter; the source side must not double-count.
                let answer = d.sources[s].answer(&query).unwrap();
                d.src_ends[s]
                    .send(&Message::QueryAnswer { id, answer })
                    .unwrap();
                progress = true;
            }
        }
        if !progress && d.warehouse.is_quiescent() {
            break;
        }
    }
    let wall = start.elapsed();
    let materialized: Vec<Vec<SignedBag>> = d
        .view_ids
        .iter()
        .map(|ids| {
            ids.iter()
                .map(|id| d.warehouse.materialized(*id).clone())
                .collect()
        })
        .collect();
    assert_converged(&d.views, &d.sources, &materialized);
    (collect(cfg, wall, &d.meters, &d.sources), materialized)
}

/// Run the concurrent runtime: `Source::serve_pool` per source thread,
/// [`eca_warehouse::ConcurrentWarehouse::pump_all`] on the warehouse
/// side.
pub fn run_concurrent(cfg: &ThroughputConfig) -> (RuntimeResult, Vec<Vec<SignedBag>>) {
    let d = deploy(cfg);
    let cw = d.warehouse.into_concurrent();
    let expected = d.scripts.iter().map(|s| s.len() as u64);
    let endpoints: Vec<(SourceId, Box<dyn Transport + Send>, u64)> = d
        .wh_ends
        .into_iter()
        .zip(expected)
        .enumerate()
        .map(|(s, (t, n))| (SourceId(s), Box::new(t) as Box<dyn Transport + Send>, n))
        .collect();

    let start = Instant::now();
    let sources: Vec<Source> = std::thread::scope(|scope| {
        let handles: Vec<_> = d
            .sources
            .into_iter()
            .zip(d.src_ends)
            .zip(&d.scripts)
            .map(|((mut source, mut src_end), script)| {
                scope.spawn(move || {
                    let stats = source
                        .serve_pool(&mut src_end, script, cfg.workers)
                        .unwrap();
                    assert_eq!(stats.notifications, script.len() as u64);
                    source
                })
            })
            .collect();
        // pump_all returns once every shard settles, dropping the
        // transports — which hangs up the serve_pool loops.
        cw.pump_all(endpoints).unwrap();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();

    assert!(cw.is_quiescent());
    let materialized: Vec<Vec<SignedBag>> = d
        .view_ids
        .iter()
        .map(|ids| ids.iter().map(|id| cw.materialized(*id)).collect())
        .collect();
    assert_converged(&d.views, &sources, &materialized);
    (collect(cfg, wall, &d.meters, &sources), materialized)
}

/// Run one configuration under both runtimes and cross-check them: both
/// must converge to the same views with identical message, byte, and
/// block-read totals (the protocol is deterministic up to scheduling;
/// only wall time may differ).
pub fn run_scenario(cfg: ThroughputConfig) -> ScenarioResult {
    let (serial, serial_views) = run_serial(&cfg);
    let (concurrent, concurrent_views) = run_concurrent(&cfg);
    assert_eq!(serial_views, concurrent_views, "runtimes disagree on views");
    assert_eq!(
        serial.messages, concurrent.messages,
        "message counts differ"
    );
    assert_eq!(serial.bytes_s2w, concurrent.bytes_s2w, "byte counts differ");
    assert_eq!(serial.io_reads, concurrent.io_reads, "block reads differ");
    ScenarioResult {
        config: cfg,
        serial,
        concurrent,
    }
}

/// The default sweep: scale source count at fixed per-source load.
pub fn sweep(smoke: bool, io_latency: Duration, workers: usize) -> Vec<ScenarioResult> {
    let configs: Vec<ThroughputConfig> = if smoke {
        vec![ThroughputConfig {
            sources: 4,
            views_per_source: 2,
            updates_per_source: 30,
            workers: workers.min(4),
            io_latency,
        }]
    } else {
        [1usize, 2, 4, 8]
            .into_iter()
            .map(|sources| ThroughputConfig {
                sources,
                views_per_source: 4,
                updates_per_source: 100,
                workers,
                io_latency,
            })
            .collect()
    };
    configs.into_iter().map(run_scenario).collect()
}

// ---------------------------------------------------------------------
// Scaling sweep: thread-per-source vs reactor at fixed worker count.
// ---------------------------------------------------------------------

/// One scaling point: N sources × V views per source, driven CPU-bound.
///
/// Unlike [`ThroughputConfig`] runs, scaling points use **zero** I/O
/// latency: the serial-vs-concurrent sweep measures overlap of simulated
/// device waits, while this sweep measures *scheduling* — how much wall
/// time the runtime itself burns multiplexing many channels. Both sides
/// face the identical source fleet ([`eca_source::serve_fleet`] on one
/// thread), so the only difference between the two measured runs is the
/// warehouse runtime: one OS thread per source vs a fixed reactor pool.
#[derive(Clone, Copy, Debug)]
pub struct ScalingConfig {
    /// Number of autonomous sources.
    pub sources: usize,
    /// ECA views hosted per source (total views = sources × this).
    pub views_per_source: usize,
    /// Scripted updates per source (insert-only, so all effective).
    pub updates_per_source: usize,
    /// Reactor worker-pool size (the thread-per-source side ignores it
    /// and spawns `sources` pump threads).
    pub workers: usize,
}

impl ScalingConfig {
    /// Total views hosted across the warehouse.
    pub fn total_views(&self) -> usize {
        self.sources * self.views_per_source
    }

    fn as_throughput(&self) -> ThroughputConfig {
        ThroughputConfig {
            sources: self.sources,
            views_per_source: self.views_per_source,
            updates_per_source: self.updates_per_source,
            workers: self.workers,
            io_latency: Duration::ZERO,
        }
    }
}

/// Scaling scenarios preload fewer rows than the serial-vs-concurrent
/// sweep: setup builds `sources × views` relation pairs and the curve
/// measures runtime scheduling, not storage scans.
const SCALING_PRELOAD: i64 = 12;
const SCALING_JOIN_DOMAIN: i64 = 5;

/// A scaling source: `views_per_source` join views over *disjoint*
/// relation pairs, so one update triggers exactly one view's maintainer.
/// Holding per-update maintenance work constant is what makes the curve
/// comparable across points — it isolates how each runtime schedules
/// N mostly-idle channels, which is the thing under test (the shared
/// maintainer code is identical in both runtimes by construction).
fn build_scaling_source(s: usize, cfg: &ScalingConfig) -> (Source, Vec<ViewDef>) {
    let mut source = Source::new(Scenario::Indexed);
    let mut views = Vec::new();
    for v in 0..cfg.views_per_source {
        let (r1, r2) = (format!("u{s}_{v}_1"), format!("u{s}_{v}_2"));
        source
            .add_relation(Schema::new(&r1, &["W", "X"]), 20, Some("X"), &[])
            .unwrap();
        source
            .add_relation(Schema::new(&r2, &["X", "Y"]), 20, Some("X"), &[])
            .unwrap();
        source
            .load(
                &r1,
                (0..SCALING_PRELOAD).map(|j| Tuple::ints([j, j % SCALING_JOIN_DOMAIN])),
            )
            .unwrap();
        source
            .load(
                &r2,
                (0..SCALING_PRELOAD).map(|j| Tuple::ints([j % SCALING_JOIN_DOMAIN, 3000 + j])),
            )
            .unwrap();
        views.push(
            ViewDef::new(
                format!("V{s}_{v}"),
                vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])],
                Predicate::col_eq(1, 2),
                vec![0],
            )
            .unwrap(),
        );
    }
    (source, views)
}

/// Insert-only scaling script: update `i` round-robins across the
/// source's view pairs, alternating which side of the join it lands on.
fn build_scaling_script(s: usize, cfg: &ScalingConfig) -> Vec<Update> {
    (0..cfg.updates_per_source as i64)
        .map(|i| {
            let v = i as usize % cfg.views_per_source;
            let (r1, r2) = (format!("u{s}_{v}_1"), format!("u{s}_{v}_2"));
            if i % 2 == 0 {
                Update::insert(&r1, Tuple::ints([1000 + i, i % SCALING_JOIN_DOMAIN]))
            } else {
                Update::insert(&r2, Tuple::ints([i % SCALING_JOIN_DOMAIN, 2000 + i]))
            }
        })
        .collect()
}

/// Deploy a scaling scenario (disjoint view pairs, no simulated I/O
/// latency).
fn deploy_scaling(cfg: &ScalingConfig) -> Deployment {
    let mut d = Deployment {
        sources: Vec::new(),
        scripts: Vec::new(),
        views: Vec::new(),
        view_ids: Vec::new(),
        src_ends: Vec::new(),
        wh_ends: Vec::new(),
        meters: Vec::new(),
        warehouse: Warehouse::new(),
    };
    d.warehouse.set_record_history(false);
    for s in 0..cfg.sources {
        let (source, views) = build_scaling_source(s, cfg);
        let src = d.warehouse.add_source(format!("s{s}"));
        let mut ids = Vec::new();
        for view in &views {
            let initial = view.eval(&source.snapshot()).unwrap();
            let maintainer = AlgorithmKind::Eca.instantiate(view, initial).unwrap();
            ids.push(d.warehouse.add_view(src, maintainer).unwrap());
        }
        let meter = TransferMeter::new();
        let (src_end, wh_end) = SharedFifo::pair(meter.clone());
        d.sources.push(source);
        d.scripts.push(build_scaling_script(s, cfg));
        d.views.push(views);
        d.view_ids.push(ids);
        d.src_ends.push(src_end);
        d.wh_ends.push(wh_end);
        d.meters.push(meter);
    }
    d
}

/// Thread-per-source vs reactor results for one scaling point.
#[derive(Clone, Copy, Debug)]
pub struct ScalingResult {
    /// The configuration that was run.
    pub config: ScalingConfig,
    /// One pump thread per source ([`eca_warehouse::ConcurrentWarehouse`]).
    pub threaded: RuntimeResult,
    /// Fixed worker pool ([`eca_warehouse::ReactorWarehouse`]).
    pub reactor: RuntimeResult,
    /// Peak OS thread count observed during the reactor run (loopback-TCP
    /// points only; `None` on the in-memory sweep and on platforms
    /// without `/proc`). The TCP runner asserts this stays bounded by
    /// `workers + poller + listener` — independent of source count.
    pub reactor_peak_threads: Option<usize>,
}

impl ScalingResult {
    /// Reactor updates/sec over thread-per-source updates/sec.
    pub fn speedup(&self) -> f64 {
        self.reactor.updates_per_sec / self.threaded.updates_per_sec
    }

    /// JSON object for the artifact files.
    pub fn to_json(&self) -> Json {
        let runtime = |r: &RuntimeResult| {
            Json::obj([
                ("wall_seconds", Json::Num(r.wall.as_secs_f64())),
                ("updates_per_sec", Json::Num(r.updates_per_sec)),
                ("query_roundtrips", Json::Int(r.query_roundtrips as i64)),
                ("messages", Json::Int(r.messages as i64)),
                ("bytes_s2w", Json::Int(r.bytes_s2w as i64)),
                ("answer_bytes", Json::Int(r.answer_bytes as i64)),
                ("io_reads", Json::Int(r.io_reads as i64)),
            ])
        };
        let mut fields = vec![
            ("sources", Json::Int(self.config.sources as i64)),
            (
                "views_per_source",
                Json::Int(self.config.views_per_source as i64),
            ),
            ("total_views", Json::Int(self.config.total_views() as i64)),
            (
                "updates_per_source",
                Json::Int(self.config.updates_per_source as i64),
            ),
            ("workers", Json::Int(self.config.workers as i64)),
            ("threaded", runtime(&self.threaded)),
            ("reactor", runtime(&self.reactor)),
            ("reactor_speedup", Json::Num(self.speedup())),
        ];
        if let Some(peak) = self.reactor_peak_threads {
            fields.push(("reactor_peak_threads", Json::Int(peak as i64)));
        }
        Json::obj(fields)
    }
}

/// Turn a deployment's source halves into one multiplexed fleet.
fn fleet_of(
    sources: Vec<Source>,
    src_ends: Vec<SharedFifo>,
    scripts: &[Vec<Update>],
) -> Vec<FleetMember> {
    sources
        .into_iter()
        .zip(src_ends)
        .zip(scripts)
        .map(|((source, src_end), script)| FleetMember {
            source,
            transport: Box::new(src_end),
            script: script.clone(),
        })
        .collect()
}

fn endpoints_of(
    wh_ends: Vec<SharedFifo>,
    scripts: &[Vec<Update>],
) -> Vec<(SourceId, Box<dyn Transport + Send>, u64)> {
    wh_ends
        .into_iter()
        .enumerate()
        .map(|(s, t)| {
            (
                SourceId(s),
                Box::new(t) as Box<dyn Transport + Send>,
                scripts[s].len() as u64,
            )
        })
        .collect()
}

/// Thread-per-source side of a scaling point: `pump_all` (one pump
/// thread per source) against the single-threaded source fleet.
pub fn run_threaded_fleet(cfg: &ScalingConfig) -> (RuntimeResult, Vec<Vec<SignedBag>>) {
    let tcfg = cfg.as_throughput();
    let d = deploy_scaling(cfg);
    let cw = d.warehouse.into_concurrent();
    let endpoints = endpoints_of(d.wh_ends, &d.scripts);
    let mut members = fleet_of(d.sources, d.src_ends, &d.scripts);

    let start = Instant::now();
    let members = std::thread::scope(|scope| {
        let fleet = scope.spawn(move || {
            serve_fleet(&mut members).unwrap();
            members
        });
        cw.pump_all(endpoints).unwrap();
        fleet.join().unwrap()
    });
    let wall = start.elapsed();

    assert!(cw.is_quiescent());
    let sources: Vec<Source> = members.into_iter().map(|m| m.source).collect();
    let materialized: Vec<Vec<SignedBag>> = d
        .view_ids
        .iter()
        .map(|ids| ids.iter().map(|id| cw.materialized(*id)).collect())
        .collect();
    assert_converged(&d.views, &sources, &materialized);
    (collect(&tcfg, wall, &d.meters, &sources), materialized)
}

/// Reactor side of a scaling point: a fixed worker pool against the
/// identical single-threaded source fleet.
pub fn run_reactor_fleet(cfg: &ScalingConfig) -> (RuntimeResult, Vec<Vec<SignedBag>>) {
    let tcfg = cfg.as_throughput();
    let d = deploy_scaling(cfg);
    let rw = d.warehouse.into_reactor(cfg.workers);
    let endpoints = endpoints_of(d.wh_ends, &d.scripts);
    let mut members = fleet_of(d.sources, d.src_ends, &d.scripts);

    let start = Instant::now();
    let members = std::thread::scope(|scope| {
        let fleet = scope.spawn(move || {
            serve_fleet(&mut members).unwrap();
            members
        });
        rw.run(endpoints).unwrap();
        fleet.join().unwrap()
    });
    let wall = start.elapsed();

    assert!(rw.is_quiescent());
    let sources: Vec<Source> = members.into_iter().map(|m| m.source).collect();
    let materialized: Vec<Vec<SignedBag>> = d
        .view_ids
        .iter()
        .map(|ids| ids.iter().map(|id| rw.materialized(*id)).collect())
        .collect();
    assert_converged(&d.views, &sources, &materialized);
    (collect(&tcfg, wall, &d.meters, &sources), materialized)
}

/// Per-runtime repetitions at each scaling point; the fastest run wins.
/// Wall times are tens of milliseconds, so a single descheduling blip
/// can swing one run by 2×; min-of-N is the standard antidote.
const SCALING_ITERATIONS: usize = 3;

/// Run one scaling point under both warehouse runtimes (best of
/// `SCALING_ITERATIONS` each) and cross-check: identical views,
/// messages, bytes and block reads — only wall time may differ.
pub fn run_scaling_point(cfg: ScalingConfig) -> ScalingResult {
    let best = |runs: Vec<(RuntimeResult, Vec<Vec<SignedBag>>)>| {
        runs.into_iter()
            .min_by(|a, b| a.0.wall.cmp(&b.0.wall))
            .unwrap()
    };
    let (threaded, threaded_views) = best(
        (0..SCALING_ITERATIONS)
            .map(|_| run_threaded_fleet(&cfg))
            .collect(),
    );
    let (reactor, reactor_views) = best(
        (0..SCALING_ITERATIONS)
            .map(|_| run_reactor_fleet(&cfg))
            .collect(),
    );
    assert_eq!(threaded_views, reactor_views, "runtimes disagree on views");
    assert_eq!(threaded.messages, reactor.messages, "message counts differ");
    assert_eq!(threaded.bytes_s2w, reactor.bytes_s2w, "byte counts differ");
    assert_eq!(threaded.io_reads, reactor.io_reads, "block reads differ");
    ScalingResult {
        config: cfg,
        threaded,
        reactor,
        reactor_peak_threads: None,
    }
}

// ---------------------------------------------------------------------
// Loopback-TCP scaling: the same duel with every link on a real socket.
// ---------------------------------------------------------------------

/// Current OS thread count of this process (`/proc/self/status`); `None`
/// where `/proc` is unavailable.
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Thread-per-connection side of a TCP scaling point: the fleet dials
/// in over loopback, the main thread accepts and handshakes every
/// connection up front, and [`eca_warehouse::ConcurrentWarehouse::pump_all`]
/// parks one OS thread per socket in blocking `recv` — the design the
/// reactor replaces.
pub fn run_tcp_threaded_fleet(cfg: &ScalingConfig) -> (RuntimeResult, Vec<Vec<SignedBag>>) {
    let tcfg = cfg.as_throughput();
    let d = deploy_scaling(cfg);
    let cw = d.warehouse.into_concurrent();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let meters: Vec<TransferMeter> = (0..cfg.sources).map(|_| TransferMeter::new()).collect();
    // Source-side poller so the fleet multiplexer is readiness-driven
    // too — both runtimes get the identical client, so the measured
    // difference is purely warehouse-side.
    let src_poller = Poller::new().unwrap();

    let start = Instant::now();
    let members = std::thread::scope(|scope| {
        let sources = d.sources;
        let (scripts, meters, src_poller) = (&d.scripts, &meters, &src_poller);
        let fleet = scope.spawn(move || {
            let mut members: Vec<FleetMember> = sources
                .into_iter()
                .enumerate()
                .map(|(s, source)| FleetMember {
                    source,
                    transport: Box::new({
                        let mut t = connect_source(addr, SourceId(s), meters[s].clone()).unwrap();
                        t.attach_poller(Arc::clone(src_poller));
                        t
                    }),
                    script: scripts[s].clone(),
                })
                .collect();
            serve_fleet(&mut members).unwrap();
            members
        });
        // Accept + handshake every connection, then hand the sockets to
        // pump_all, which spawns its thread per source.
        type Endpoint = (SourceId, Box<dyn Transport + Send>, u64);
        let mut endpoints: Vec<Option<Endpoint>> = (0..cfg.sources).map(|_| None).collect();
        for _ in 0..cfg.sources {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = &stream;
            let frame = read_frame(&mut reader).unwrap().expect("handshake EOF");
            let Ok(Message::Hello { epoch }) = Message::decode(frame) else {
                panic!("bad handshake frame");
            };
            let s = epoch as usize;
            let transport =
                TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            assert!(
                endpoints[s]
                    .replace((SourceId(s), Box::new(transport), d.scripts[s].len() as u64))
                    .is_none(),
                "duplicate Hello for source {s}"
            );
        }
        cw.pump_all(endpoints.into_iter().map(Option::unwrap).collect())
            .unwrap();
        fleet.join().unwrap()
    });
    let wall = start.elapsed();

    assert!(cw.is_quiescent());
    let sources: Vec<Source> = members.into_iter().map(|m| m.source).collect();
    let materialized: Vec<Vec<SignedBag>> = d
        .view_ids
        .iter()
        .map(|ids| ids.iter().map(|id| cw.materialized(*id)).collect())
        .collect();
    assert_converged(&d.views, &sources, &materialized);
    (collect(&tcfg, wall, &meters, &sources), materialized)
}

/// Reactor side of a TCP scaling point: sources dial a
/// [`eca_warehouse::ReactorWarehouse::run_listener`] endpoint and every
/// socket's readiness is multiplexed by one [`Poller`] thread into a
/// fixed worker pool. Returns the peak OS thread count sampled during
/// the run, after asserting it stays within
/// `workers + poller + listener + harness` — i.e. independent of how
/// many sources connected.
pub fn run_tcp_reactor_fleet(
    cfg: &ScalingConfig,
) -> (RuntimeResult, Vec<Vec<SignedBag>>, Option<usize>) {
    let tcfg = cfg.as_throughput();
    let d = deploy_scaling(cfg);
    let rw = d.warehouse.into_reactor(cfg.workers);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let poller = Poller::new().unwrap();
    let expected: Vec<u64> = d.scripts.iter().map(|s| s.len() as u64).collect();
    let meters: Vec<TransferMeter> = (0..cfg.sources).map(|_| TransferMeter::new()).collect();
    // Mirror of the threaded side's client poller, created *before* the
    // baseline snapshot so its thread is part of the baseline.
    let src_poller = Poller::new().unwrap();
    // Snapshot before spawning anything run-related; both poller
    // threads already exist and are part of the baseline.
    let base_threads = os_thread_count();

    let start = Instant::now();
    let (members, peak) = std::thread::scope(|scope| {
        let sources = d.sources;
        let (scripts, meters, src_poller) = (&d.scripts, &meters, &src_poller);
        let fleet = scope.spawn(move || {
            let mut members: Vec<FleetMember> = sources
                .into_iter()
                .enumerate()
                .map(|(s, source)| FleetMember {
                    source,
                    transport: Box::new({
                        let mut t = connect_source(addr, SourceId(s), meters[s].clone()).unwrap();
                        t.attach_poller(Arc::clone(src_poller));
                        t
                    }),
                    script: scripts[s].clone(),
                })
                .collect();
            serve_fleet(&mut members).unwrap();
            members
        });
        let (rw, listener, poller, expected) = (&rw, listener, &poller, &expected);
        let runner = scope.spawn(move || {
            rw.run_listener(listener, poller, expected).unwrap();
        });
        // This thread is free while the run executes: sample the
        // process-wide thread count to catch the peak.
        let mut peak = base_threads;
        loop {
            if let (Some(p), Some(now)) = (peak, os_thread_count()) {
                peak = Some(p.max(now));
            }
            if runner.is_finished() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        runner.join().unwrap();
        (fleet.join().unwrap(), peak)
    });
    let wall = start.elapsed();

    // The whole point of the reactor: warehouse-side threads do not grow
    // with source count. Beyond the pre-run baseline the run adds the
    // fleet thread, the run_listener caller, its accept loop and the
    // worker pool — and nothing per source.
    if let (Some(base), Some(peak)) = (base_threads, peak) {
        let allowed = base + cfg.workers.min(cfg.sources) + 3;
        assert!(
            peak <= allowed,
            "reactor TCP run grew to {peak} OS threads (baseline {base}, allowed {allowed}) \
             at {} sources — thread count must not scale with connections",
            cfg.sources
        );
    }

    assert!(rw.is_quiescent());
    let sources: Vec<Source> = members.into_iter().map(|m| m.source).collect();
    let materialized: Vec<Vec<SignedBag>> = d
        .view_ids
        .iter()
        .map(|ids| ids.iter().map(|id| rw.materialized(*id)).collect())
        .collect();
    assert_converged(&d.views, &sources, &materialized);
    (collect(&tcfg, wall, &meters, &sources), materialized, peak)
}

/// Run one loopback-TCP scaling point under both warehouse runtimes
/// (best of `SCALING_ITERATIONS` each) and cross-check observables,
/// exactly like [`run_scaling_point`] but with every link on a socket.
pub fn run_tcp_scaling_point(cfg: ScalingConfig) -> ScalingResult {
    let best = |runs: Vec<(RuntimeResult, Vec<Vec<SignedBag>>)>| {
        runs.into_iter()
            .min_by(|a, b| a.0.wall.cmp(&b.0.wall))
            .unwrap()
    };
    let (threaded, threaded_views) = best(
        (0..SCALING_ITERATIONS)
            .map(|_| run_tcp_threaded_fleet(&cfg))
            .collect(),
    );
    let mut peak = None;
    let (reactor, reactor_views) = best(
        (0..SCALING_ITERATIONS)
            .map(|_| {
                let (result, views, p) = run_tcp_reactor_fleet(&cfg);
                peak = peak.max(p);
                (result, views)
            })
            .collect(),
    );
    assert_eq!(threaded_views, reactor_views, "runtimes disagree on views");
    assert_eq!(threaded.messages, reactor.messages, "message counts differ");
    assert_eq!(threaded.bytes_s2w, reactor.bytes_s2w, "byte counts differ");
    assert_eq!(threaded.io_reads, reactor.io_reads, "block reads differ");
    ScalingResult {
        config: cfg,
        threaded,
        reactor,
        reactor_peak_threads: peak,
    }
}

/// The loopback-TCP scaling sweep. The full sweep charts the curve
/// from 32 to 256 concurrent TCP sources — all multiplexed through one
/// poller thread and a fixed pool on the warehouse side, versus one
/// blocked thread per socket on the baseline. Burst scripts (two
/// updates per source) keep every point in the regime the reactor
/// exists for — many mostly-idle connections — where the baseline pays
/// a full thread lifecycle (spawn, stack, first wake, join) per socket
/// for a handful of events. At the small end thread-per-connection
/// still competes (each socket's kernel wakeup lands directly on its
/// own thread; the reactor pays poller → waker → worker indirection),
/// so the curve includes points near 1.0x by design; the reactor pulls
/// ahead as thread count grows. `smoke` runs only the CI gate point
/// (128 sources), past the crossover, where the reactor's win is
/// robust.
pub fn tcp_scaling_sweep(smoke: bool, workers: usize) -> Vec<ScalingResult> {
    let _ = run_tcp_scaling_point(ScalingConfig {
        sources: 4,
        views_per_source: 2,
        updates_per_source: 2,
        workers,
    });
    let sources_points: &[usize] = if smoke { &[128] } else { &[32, 64, 128, 256] };
    sources_points
        .iter()
        .map(|&sources| {
            run_tcp_scaling_point(ScalingConfig {
                sources,
                views_per_source: 4,
                updates_per_source: 2,
                workers,
            })
        })
        .collect()
}

/// The scaling sweep: sources × views growing to 100 × 1000 at a fixed
/// reactor pool. `smoke` runs only the CI gate point (32 sources).
///
/// A small discarded warm-up point runs first: the first deployment in a
/// process pays one-off costs (heap growth, page faults, lazy init) that
/// would otherwise be charged entirely to whichever runtime happens to
/// run first and swamp the scheduling difference being measured.
pub fn scaling_sweep(smoke: bool, workers: usize) -> Vec<ScalingResult> {
    let _ = run_scaling_point(ScalingConfig {
        sources: 4,
        views_per_source: 2,
        updates_per_source: 10,
        workers,
    });
    let configs: Vec<ScalingConfig> = if smoke {
        // The CI gate point: burst traffic across 32 sources, the
        // regime the reactor exists for.
        vec![ScalingConfig {
            sources: 32,
            views_per_source: 4,
            updates_per_source: 2,
            workers,
        }]
    } else {
        vec![
            // Sustained regime: enough updates per source that shared
            // maintenance work dominates and the runtimes converge.
            ScalingConfig {
                sources: 8,
                views_per_source: 4,
                updates_per_source: 20,
                workers,
            },
            ScalingConfig {
                sources: 32,
                views_per_source: 4,
                updates_per_source: 20,
                workers,
            },
            ScalingConfig {
                sources: 64,
                views_per_source: 8,
                updates_per_source: 2,
                workers,
            },
            // The headline point: 100 sources × 1000 views, sustained.
            ScalingConfig {
                sources: 100,
                views_per_source: 10,
                updates_per_source: 2,
                workers,
            },
            // Burst regime: a short burst per source, so per-thread
            // costs (spawn, first wake, join) dominate — the
            // many-mostly-idle-sources workload a warehouse actually
            // sees, where thread-per-source pays a thread's lifecycle
            // for a handful of events.
            ScalingConfig {
                sources: 32,
                views_per_source: 4,
                updates_per_source: 2,
                workers,
            },
            ScalingConfig {
                sources: 64,
                views_per_source: 8,
                updates_per_source: 2,
                workers,
            },
            // 100 sources × 1000 views, burst.
            ScalingConfig {
                sources: 100,
                views_per_source: 10,
                updates_per_source: 2,
                workers,
            },
            // Far end: traffic sliced ever thinner across ever more
            // sources.
            ScalingConfig {
                sources: 256,
                views_per_source: 4,
                updates_per_source: 5,
                workers,
            },
        ]
    };
    configs.into_iter().map(run_scaling_point).collect()
}

/// The artifact document written to `results/throughput.json` and
/// `BENCH_throughput.json`.
pub fn report(
    results: &[ScenarioResult],
    scaling: &[ScalingResult],
    tcp_scaling: &[ScalingResult],
    selfmaint: Json,
    serving: Json,
    recovery: Json,
) -> Json {
    Json::obj([
        (
            "benchmark",
            Json::str("serial vs concurrent warehouse runtime throughput"),
        ),
        (
            "method",
            Json::str(
                "M sources x V ECA views x U insert updates over SharedFifo links; \
                 per-block simulated device latency at each source; both runtimes \
                 answer on post-script state so M/B/reads are identical and only \
                 wall time differs",
            ),
        ),
        ("scenarios", Json::arr(results.iter().map(|r| r.to_json()))),
        (
            "scaling_method",
            Json::str(
                "thread-per-source (ConcurrentWarehouse) vs fixed worker pool \
                 (ReactorWarehouse) at zero io latency, both fed by one \
                 serve_fleet thread multiplexing every source, so the measured \
                 difference is warehouse-side scheduling alone",
            ),
        ),
        ("scaling", Json::arr(scaling.iter().map(|r| r.to_json()))),
        (
            "tcp_scaling_method",
            Json::str(
                "same duel over loopback TCP: thread-per-connection pump_all \
                 (one blocked OS thread per socket) vs ReactorWarehouse::run_listener \
                 (live accept, one poll(2) thread translating readiness into waker \
                 notifications, fixed worker pool); sources dial in with a Hello \
                 handshake and meters are read source-side; reactor peak OS threads \
                 are sampled from /proc and asserted independent of source count; \
                 thread-per-connection competes at the small end of the curve \
                 (direct kernel wakeups, no poller indirection) and collapses as \
                 thread count grows, so the CI gate sits at 128 sources, past \
                 the crossover",
            ),
        ),
        (
            "tcp_scaling",
            Json::arr(tcp_scaling.iter().map(|r| r.to_json())),
        ),
        ("selfmaint", selfmaint),
        ("serving", serving),
        ("recovery", recovery),
    ])
}
