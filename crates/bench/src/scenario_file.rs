//! Parser for `warehouse_demo` scenario files.
//!
//! Line-oriented; `#` starts a comment. Directives:
//!
//! ```text
//! relation r1(W, X) key(W) cluster(X)
//! load r1 (1,2) (3,4)
//! view V = SELECT r1.W FROM r1, r2 WHERE r1.X = r2.X
//! algorithm ECA            # Basic|ECA|ECA*|ECA-Key|ECA-Local|LCA|SC|RV:s|Batch:n
//! policy adversarial       # serial|adversarial|random:SEED
//! insert r2 (2,3)
//! delete r1 (1,2)
//! ```

use eca_core::algorithms::AlgorithmKind;
use eca_relational::{Schema, Tuple, Update, Value};
use eca_sim::Policy;

/// A parsed scenario: declarations, script and run configuration.
#[derive(Debug)]
pub struct ScenarioFile {
    /// Declared base relations.
    pub relations: Vec<RelationDecl>,
    /// Initial tuples per relation.
    pub loads: Vec<(String, Vec<Tuple>)>,
    /// View name and SQL text.
    pub view_sql: Option<(String, String)>,
    /// The maintenance algorithm to instantiate.
    pub algorithm: AlgorithmKind,
    /// The interleaving policy.
    pub policy: Policy,
    /// The scripted updates, in order.
    pub updates: Vec<Update>,
}

/// One declared relation with its physical layout.
#[derive(Debug)]
pub struct RelationDecl {
    /// The schema (with keys, if declared).
    pub schema: Schema,
    /// Clustering attribute, if declared.
    pub cluster: Option<String>,
}

pub(crate) fn fail_at(line_no: usize, message: impl std::fmt::Display) -> String {
    format!("line {line_no}: {message}")
}

/// Parse `(v1,v2,…)` into a tuple.
pub fn parse_tuple(text: &str) -> Result<Tuple, String> {
    let trimmed = text.trim();
    let inner = trimmed
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| format!("expected (v1,v2,...), got {trimmed:?}"))?;
    let values: Result<Vec<Value>, String> = inner
        .split(',')
        .map(|v| {
            let v = v.trim();
            if let Ok(i) = v.parse::<i64>() {
                Ok(Value::Int(i))
            } else if v.starts_with('\'') && v.ends_with('\'') && v.len() >= 2 {
                Ok(Value::str(&v[1..v.len() - 1]))
            } else {
                Err(format!("bad value {v:?} (integer or 'string')"))
            }
        })
        .collect();
    Ok(Tuple::new(values?))
}

fn parse_relation_decl(rest: &str) -> Result<RelationDecl, String> {
    // r1(W, X) [key(W[,B])] [cluster(X)]
    let open = rest.find('(').ok_or("expected relation(attrs...)")?;
    let name = rest[..open].trim().to_owned();
    let close = rest[open..].find(')').ok_or("unclosed attribute list")? + open;
    let attrs: Vec<&str> = rest[open + 1..close].split(',').map(str::trim).collect();
    let tail = &rest[close + 1..];

    let extract = |keyword: &str| -> Option<Vec<String>> {
        let at = tail.find(keyword)?;
        let seg = &tail[at + keyword.len()..];
        let open = seg.find('(')?;
        let close = seg.find(')')?;
        Some(
            seg[open + 1..close]
                .split(',')
                .map(|s| s.trim().to_owned())
                .collect(),
        )
    };
    let keys = extract("key");
    let cluster = extract("cluster").and_then(|v| v.into_iter().next());

    let schema = match keys {
        Some(keys) => {
            let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            Schema::with_key(&name, &attrs, &key_refs).map_err(|e| e.to_string())?
        }
        None => Schema::new(&name, &attrs),
    };
    Ok(RelationDecl { schema, cluster })
}

fn parse_algorithm(text: &str) -> Result<AlgorithmKind, String> {
    let text = text.trim();
    if let Some(s) = text.strip_prefix("RV:") {
        let period = s.parse().map_err(|_| format!("bad RV period {s:?}"))?;
        return Ok(AlgorithmKind::RecomputeView { period });
    }
    if let Some(s) = text.strip_prefix("Batch:") {
        let n = s.parse().map_err(|_| format!("bad batch size {s:?}"))?;
        return Ok(AlgorithmKind::BatchEca { batch_size: n });
    }
    Ok(match text {
        "Basic" => AlgorithmKind::Basic,
        "ECA" => AlgorithmKind::Eca,
        "ECA*" => AlgorithmKind::EcaOptimized,
        "ECA-Key" => AlgorithmKind::EcaKey,
        "ECA-Local" => AlgorithmKind::EcaLocal,
        "LCA" => AlgorithmKind::Lca,
        "SC" => AlgorithmKind::StoreCopies,
        other => return Err(format!("unknown algorithm {other:?}")),
    })
}

fn parse_policy(text: &str) -> Result<Policy, String> {
    let text = text.trim();
    if let Some(s) = text.strip_prefix("random:") {
        let seed = s.parse().map_err(|_| format!("bad seed {s:?}"))?;
        return Ok(Policy::Random { seed });
    }
    Ok(match text {
        "serial" => Policy::Serial,
        "adversarial" => Policy::AllUpdatesFirst,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

/// Parse a full scenario file.
///
/// # Errors
/// A human-readable message naming the offending line.
pub fn parse_scenario(text: &str) -> Result<ScenarioFile, String> {
    let mut sf = ScenarioFile {
        relations: Vec::new(),
        loads: Vec::new(),
        view_sql: None,
        algorithm: AlgorithmKind::Eca,
        policy: Policy::AllUpdatesFirst,
        updates: Vec::new(),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match keyword {
            "relation" => sf
                .relations
                .push(parse_relation_decl(rest).map_err(|e| fail_at(line_no, e))?),
            "load" => {
                let (rel, tuples_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| fail_at(line_no, "load <rel> (t) (t) ..."))?;
                let mut tuples = Vec::new();
                for part in tuples_text.split(')').filter(|p| !p.trim().is_empty()) {
                    tuples.push(
                        parse_tuple(&format!("{})", part.trim()))
                            .map_err(|e| fail_at(line_no, e))?,
                    );
                }
                sf.loads.push((rel.to_owned(), tuples));
            }
            "view" => {
                let (name, sql) = rest
                    .split_once('=')
                    .ok_or_else(|| fail_at(line_no, "view <name> = SELECT ..."))?;
                sf.view_sql = Some((name.trim().to_owned(), sql.trim().to_owned()));
            }
            "algorithm" => sf.algorithm = parse_algorithm(rest).map_err(|e| fail_at(line_no, e))?,
            "policy" => sf.policy = parse_policy(rest).map_err(|e| fail_at(line_no, e))?,
            "insert" | "delete" => {
                let (rel, tuple_text) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| fail_at(line_no, format!("{keyword} <rel> (t)")))?;
                let tuple = parse_tuple(tuple_text).map_err(|e| fail_at(line_no, e))?;
                sf.updates.push(if keyword == "insert" {
                    Update::insert(rel, tuple)
                } else {
                    Update::delete(rel, tuple)
                });
            }
            other => return Err(fail_at(line_no, format!("unknown directive {other:?}"))),
        }
    }
    if sf.view_sql.is_none() {
        return Err("scenario declares no view".to_owned());
    }
    Ok(sf)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# comment
relation r1(W, X) key(W) cluster(X)
relation r2(X, Y)
load r1 (1,2) (3,4)
view V = SELECT r1.W FROM r1, r2 WHERE r1.X = r2.X
algorithm Batch:3
policy random:9
insert r2 (2,3)
delete r1 (1,2)
";

    #[test]
    fn parses_a_full_scenario() {
        let sf = parse_scenario(SAMPLE).unwrap();
        assert_eq!(sf.relations.len(), 2);
        assert_eq!(sf.relations[0].schema.relation(), "r1");
        assert!(sf.relations[0].schema.has_key());
        assert_eq!(sf.relations[0].cluster.as_deref(), Some("X"));
        assert_eq!(sf.loads[0].1.len(), 2);
        assert_eq!(sf.view_sql.as_ref().unwrap().0, "V");
        assert_eq!(sf.algorithm, AlgorithmKind::BatchEca { batch_size: 3 });
        assert_eq!(sf.policy, Policy::Random { seed: 9 });
        assert_eq!(sf.updates.len(), 2);
    }

    #[test]
    fn tuples_parse_ints_and_strings() {
        assert_eq!(parse_tuple("(1, 2)").unwrap(), Tuple::ints([1, 2]));
        assert_eq!(
            parse_tuple("('a', 3)").unwrap(),
            Tuple::new([Value::str("a"), Value::Int(3)])
        );
        assert!(parse_tuple("1,2").is_err());
        assert!(parse_tuple("(x)").is_err());
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_scenario("view V = SELECT\nbogus directive").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse_scenario("insert r1 (1)")
            .unwrap_err()
            .contains("no view"));
    }

    #[test]
    fn algorithm_and_policy_variants() {
        for (text, want) in [
            ("Basic", AlgorithmKind::Basic),
            ("ECA", AlgorithmKind::Eca),
            ("ECA*", AlgorithmKind::EcaOptimized),
            ("ECA-Key", AlgorithmKind::EcaKey),
            ("LCA", AlgorithmKind::Lca),
            ("SC", AlgorithmKind::StoreCopies),
            ("RV:5", AlgorithmKind::RecomputeView { period: 5 }),
        ] {
            assert_eq!(parse_algorithm(text).unwrap(), want, "{text}");
        }
        assert!(parse_algorithm("nope").is_err());
        assert_eq!(parse_policy("serial").unwrap(), Policy::Serial);
        assert_eq!(
            parse_policy("adversarial").unwrap(),
            Policy::AllUpdatesFirst
        );
        assert!(parse_policy("chaotic").is_err());
    }
}
