//! Crash-recovery bench: WAL/checkpoint recovery vs the full-RV fallback.
//!
//! One source hosts several copies of the Example 6 view so a crashed
//! warehouse has real state to lose: the §4 fallback must re-fetch a
//! full `V(ss)` per view, while durable recovery replays the WAL tail
//! and asks the source only for notifications past the durable
//! watermark. Each point crashes the warehouse mid-run at one
//! checkpoint cadence and charges both strategies against the same
//! fault-free golden run; the CI gate (`throughput --recovery-smoke`)
//! requires incremental recovery to spend at most half the extra
//! messages (and bytes) of the full-RV baseline. The cadence ladder of
//! the full sweep traces the recovery-time-vs-checkpoint-age curve for
//! `results/recovery.json`.

use eca_core::algorithms::AlgorithmKind;
use eca_relational::SignedBag;
use eca_sim::{ChaosProfile, ChaosSimulation, ChaosStats, Policy};
use eca_storage::Scenario;
use eca_warehouse::{DurabilityConfig, FsyncPolicy};
use eca_workload::{Example6, Params, UpdateMix};

use crate::json::Json;

/// Views hosted over the single source: the full-RV fallback pays one
/// resync round-trip (with a full-view answer) per view, while the WAL
/// tail the durable path re-sends is independent of the view count.
const VIEWS: usize = 4;

/// One cadence point: the same crash served by both recovery strategies.
#[derive(Clone, Debug)]
pub struct RecoveryPoint {
    /// Checkpoint cadence (records between cuts) of the durable run.
    pub checkpoint_every: u64,
    /// Scheduler step the warehouse crashed at.
    pub crash_step: u64,
    /// Scripted updates in the run.
    pub updates: u64,
    /// Fault-free logical messages, all sites.
    pub golden_messages: u64,
    /// Fault-free logical bytes, all sites.
    pub golden_bytes: u64,
    /// Durable-run logical messages.
    pub durable_messages: u64,
    /// Durable-run logical bytes.
    pub durable_bytes: u64,
    /// Wall-clock microseconds inside durable recovery.
    pub durable_recovery_us: u64,
    /// WAL records replayed on top of the checkpoint.
    pub wal_replayed: u64,
    /// Notification tail re-sent past the durable watermark.
    pub resync_notifications: u64,
    /// Channels recovered incrementally (must be every channel).
    pub recovered_incremental: u64,
    /// Channels that fell back to full RV resync (must be none).
    pub recovered_full: u64,
    /// Durable run quiesced, converged, and matched the golden views.
    pub durable_ok: bool,
    /// Full-RV-run logical messages.
    pub full_messages: u64,
    /// Full-RV-run logical bytes.
    pub full_bytes: u64,
    /// Wall-clock microseconds inside the full-RV rebuild.
    pub full_recovery_us: u64,
    /// Full-RV run quiesced, converged, and matched the golden views.
    pub full_ok: bool,
}

impl RecoveryPoint {
    /// Extra logical messages the durable crash cost over fault-free.
    pub fn durable_extra_messages(&self) -> u64 {
        self.durable_messages.saturating_sub(self.golden_messages)
    }

    /// Extra logical messages the full-RV crash cost over fault-free.
    pub fn full_extra_messages(&self) -> u64 {
        self.full_messages.saturating_sub(self.golden_messages)
    }

    /// Extra logical bytes the durable crash cost over fault-free.
    pub fn durable_extra_bytes(&self) -> u64 {
        self.durable_bytes.saturating_sub(self.golden_bytes)
    }

    /// Extra logical bytes the full-RV crash cost over fault-free.
    pub fn full_extra_bytes(&self) -> u64 {
        self.full_bytes.saturating_sub(self.golden_bytes)
    }

    /// The CI gate: both strategies converge to the golden views, every
    /// channel recovers incrementally, and the durable path spends at
    /// most half the extra messages and bytes of the full-RV fallback —
    /// the ISSUE's "≥ 50% fewer resync messages" bar.
    pub fn ok(&self) -> bool {
        self.durable_ok
            && self.full_ok
            && self.recovered_incremental >= 1
            && self.recovered_full == 0
            && 2 * self.durable_extra_messages() <= self.full_extra_messages()
            && 2 * self.durable_extra_bytes() <= self.full_extra_bytes()
    }
}

/// What one chaos run charged, reduced to the comparison the bench makes.
struct RunTotals {
    messages: u64,
    bytes: u64,
    ok: bool,
    finals: Vec<SignedBag>,
    stats: ChaosStats,
    recovery_us: u64,
}

/// The multi-view Example 6 deployment, optionally crashing at a step.
fn build(updates: usize, crash_at: Option<u64>) -> ChaosSimulation {
    let workload = Example6::new(Params::default(), 42);
    let source = workload
        .build_source(Scenario::Indexed)
        .expect("calibrated source");
    let script = workload.updates(updates, UpdateMix::Mixed);
    let snapshot = source.snapshot();
    let profile = match crash_at {
        Some(at) => ChaosProfile::none().with_warehouse_crashes(&[at]),
        None => ChaosProfile::none(),
    };
    let mut sim = ChaosSimulation::new();
    let site = sim.add_source_with("s0", source, script, profile);
    for _ in 0..VIEWS {
        let view = Example6::view().expect("static view");
        let snap = snapshot.clone();
        sim.add_view_with_factory(site, move || {
            let initial = view.eval(&snap).expect("initial state");
            AlgorithmKind::Eca
                .instantiate_with_base(&view, initial, Some(snap.clone()))
                .expect("ECA applies to any view")
        })
        .expect("view over site");
    }
    sim
}

fn run(sim: ChaosSimulation) -> RunTotals {
    let report = sim.run(Policy::Serial).expect("serial run settles");
    RunTotals {
        messages: report
            .sites
            .iter()
            .map(|s| s.query_messages + s.answer_messages + s.notification_messages)
            .sum(),
        bytes: report.sites.iter().map(|s| s.bytes_s2w + s.bytes_w2s).sum(),
        ok: report.quiescent && report.converged(),
        finals: report.views.iter().map(|v| v.final_mv.clone()).collect(),
        stats: report.stats,
        recovery_us: report.recovery_time.as_micros() as u64,
    }
}

/// A scratch durability directory for one cadence point.
fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("eca-recovery-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Run the bench: one golden run, one full-RV crash, and one durable
/// crash per checkpoint cadence. `smoke` keeps CI to a single cadence;
/// the full sweep walks a cadence ladder so `results/recovery.json`
/// carries the recovery-time-vs-checkpoint-age curve.
pub fn sweep(smoke: bool) -> Vec<RecoveryPoint> {
    let updates = if smoke { 10 } else { 24 };
    let cadences: &[u64] = if smoke { &[4] } else { &[1, 4, 16, 64] };

    let golden = run(build(updates, None));
    assert!(golden.ok, "fault-free golden run must converge");
    let crash_step = (golden.stats.steps / 2).max(1);
    let full = run(build(updates, Some(crash_step)));

    cadences
        .iter()
        .map(|&cadence| {
            let dir = tmpdir(&format!("c{cadence}-u{updates}"));
            let mut sim = build(updates, Some(crash_step));
            sim.enable_durability(
                DurabilityConfig::new(&dir)
                    .with_fsync(FsyncPolicy::PerRecord)
                    .with_checkpoint_every(cadence),
            )
            .expect("durability over scratch dir");
            let durable = run(sim);
            RecoveryPoint {
                checkpoint_every: cadence,
                crash_step,
                updates: updates as u64,
                golden_messages: golden.messages,
                golden_bytes: golden.bytes,
                durable_messages: durable.messages,
                durable_bytes: durable.bytes,
                durable_recovery_us: durable.recovery_us,
                wal_replayed: durable.stats.wal_replayed,
                resync_notifications: durable.stats.resync_notifications,
                recovered_incremental: durable.stats.recovered_incremental,
                recovered_full: durable.stats.recovered_full,
                durable_ok: durable.ok && durable.finals == golden.finals,
                full_messages: full.messages,
                full_bytes: full.bytes,
                full_recovery_us: full.recovery_us,
                full_ok: full.ok && full.finals == golden.finals,
            }
        })
        .collect()
}

/// Points that failed the recovery gate.
pub fn violations(points: &[RecoveryPoint]) -> Vec<&RecoveryPoint> {
    points.iter().filter(|p| !p.ok()).collect()
}

/// The `results/recovery.json` document.
pub fn report(points: &[RecoveryPoint]) -> Json {
    Json::obj([
        ("experiment", Json::str("recovery")),
        (
            "description",
            Json::str(
                "warehouse crash recovery: WAL/checkpoint incremental resync vs \
                 full RV fallback, across checkpoint cadences",
            ),
        ),
        ("views", Json::Int(VIEWS as i64)),
        ("violations", Json::Int(violations(points).len() as i64)),
        (
            "points",
            Json::arr(points.iter().map(|p| {
                Json::obj([
                    ("checkpoint_every", Json::from(p.checkpoint_every)),
                    ("crash_step", Json::from(p.crash_step)),
                    ("updates", Json::from(p.updates)),
                    ("golden_messages", Json::from(p.golden_messages)),
                    ("golden_bytes", Json::from(p.golden_bytes)),
                    ("durable_messages", Json::from(p.durable_messages)),
                    ("durable_bytes", Json::from(p.durable_bytes)),
                    (
                        "durable_extra_messages",
                        Json::from(p.durable_extra_messages()),
                    ),
                    ("durable_extra_bytes", Json::from(p.durable_extra_bytes())),
                    ("durable_recovery_us", Json::from(p.durable_recovery_us)),
                    ("wal_replayed", Json::from(p.wal_replayed)),
                    ("resync_notifications", Json::from(p.resync_notifications)),
                    ("recovered_incremental", Json::from(p.recovered_incremental)),
                    ("recovered_full", Json::from(p.recovered_full)),
                    ("full_messages", Json::from(p.full_messages)),
                    ("full_bytes", Json::from(p.full_bytes)),
                    ("full_extra_messages", Json::from(p.full_extra_messages())),
                    ("full_extra_bytes", Json::from(p.full_extra_bytes())),
                    ("full_recovery_us", Json::from(p.full_recovery_us)),
                    ("durable_ok", Json::from(p.durable_ok)),
                    ("full_ok", Json::from(p.full_ok)),
                    ("gate_ok", Json::from(p.ok())),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_passes_the_gate() {
        let points = sweep(true);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.ok(), "gate failed: {p:?}");
        // Incremental recovery's wire cost is the in-flight tail, not
        // the view set: strictly cheaper than one round-trip per view.
        assert!(p.durable_extra_messages() < 2 * VIEWS as u64);
        assert!(p.full_extra_messages() >= 2 * VIEWS as u64);
        // Replay is bounded by the updates the run had applied.
        assert!(p.wal_replayed <= p.updates);
    }

    #[test]
    #[ignore = "full cadence ladder; covered by the throughput binary"]
    fn full_sweep_passes_the_gate() {
        let points = sweep(false);
        println!("{}", report(&points).pretty());
        assert_eq!(points.len(), 4);
        assert!(violations(&points).is_empty(), "{points:?}");
    }

    #[test]
    fn report_shape_is_stable() {
        let points = sweep(true);
        let doc = report(&points).pretty();
        assert!(doc.contains("\"experiment\": \"recovery\""));
        assert!(doc.contains("\"violations\": 0"));
        assert!(doc.contains("\"durable_extra_messages\""));
    }
}
