//! Mixed read/write serving bench (ROADMAP item 4).
//!
//! One serial maintenance loop keeps a warehouse's views fresh from a
//! live update stream while N concurrent [`eca_serve::ReadClient`]s
//! hammer the [`eca_serve::ReadServer`] over [`SharedFifo`] channels —
//! in-process links so the harness can field ≥1000 genuinely concurrent
//! clients without burning a file descriptor per reader (the TCP front
//! end has its own demo and tests; what this bench measures is the
//! serving layer's concurrency story, not the kernel's socket table).
//!
//! Readers are split evenly across the three §3 consistency levels.
//! The harness records:
//!
//! * reads/sec over the whole reading window,
//! * p50/p99 read latency (begin-to-answer, microseconds),
//! * the per-level staleness distribution in epochs (`latest - epoch`
//!   at serve time) — convergent samples the whole published ring, weak
//!   is monotone per client, strong is pinned to the newest quiescent
//!   epoch,
//! * monotonicity violations (client-detected; must be zero),
//!
//! and then replays every *distinct* strong answer against the §3.1
//! state history the warehouse recorded (`Warehouse::view_states`):
//! every strong snapshot must be a state the view actually passed
//! through — strong reads are never invented states.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
use eca_serve::{ReadClient, ReadServer, ServeError};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::{SourceId, ViewId, Warehouse};
use eca_wire::{Message, ReadLevel, SharedFifo, TransferMeter, Transport};

use crate::json::Json;

/// Rows preloaded into each base relation.
const PRELOAD: i64 = 30;
/// Join-column domain: small, so every insert touches the views.
const JOIN_DOMAIN: i64 = 6;

/// One mixed-workload serving scenario.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// Concurrent read clients (each its own channel + floors).
    pub readers: usize,
    /// Driver threads multiplexing the clients.
    pub reader_threads: usize,
    /// Server worker threads draining request channels.
    pub server_workers: usize,
    /// Reads each client completes.
    pub reads_per_reader: u64,
    /// Length of the live update stream maintained concurrently.
    pub updates: u64,
    /// Views maintained (all over one source).
    pub views: usize,
    /// Epoch-ring capacity per view (the convergent staleness window).
    pub ring_cap: usize,
}

impl ServingConfig {
    /// The full-artifact configuration: ≥1000 concurrent readers.
    pub fn full() -> ServingConfig {
        ServingConfig {
            readers: 1000,
            reader_threads: 8,
            server_workers: 4,
            reads_per_reader: 30,
            updates: 200,
            views: 2,
            ring_cap: 8,
        }
    }

    /// The CI smoke configuration: same shape, minutes → seconds.
    pub fn smoke() -> ServingConfig {
        ServingConfig {
            readers: 64,
            reader_threads: 4,
            server_workers: 2,
            reads_per_reader: 10,
            updates: 40,
            views: 2,
            ring_cap: 8,
        }
    }

    /// Total reads the run will complete.
    pub fn total_reads(&self) -> u64 {
        self.readers as u64 * self.reads_per_reader
    }
}

/// What one run measured.
pub struct ServingResult {
    /// The configuration measured.
    pub config: ServingConfig,
    /// Wall time of the reading window.
    pub read_wall: Duration,
    /// Reads completed (== `config.total_reads()`).
    pub reads: u64,
    /// Reads per second over the reading window.
    pub reads_per_sec: f64,
    /// Median read latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile read latency, microseconds.
    pub p99_us: u64,
    /// Per-level `(reads, staleness histogram)`, indexed by
    /// [`level_ix`].
    pub levels: [(u64, BTreeMap<u64, u64>); 3],
    /// Client-detected monotonicity violations (must be zero).
    pub violations: u64,
    /// Distinct `(view, epoch)` strong snapshots observed.
    pub strong_distinct: u64,
    /// Every distinct strong snapshot matched a §3.1 history state.
    pub strong_all_in_history: bool,
    /// Updates maintained during the run.
    pub updates: u64,
    /// Maintenance throughput while serving (updates/sec).
    pub updates_per_sec: f64,
}

/// Stable index for a level: convergent 0, weak 1, strong 2.
pub fn level_ix(level: ReadLevel) -> usize {
    match level {
        ReadLevel::Convergent => 0,
        ReadLevel::Weak => 1,
        ReadLevel::Strong => 2,
    }
}

fn build_source(views: usize) -> (Source, Vec<ViewDef>) {
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .unwrap();
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .unwrap();
    source
        .load(
            "r1",
            (0..PRELOAD).map(|j| Tuple::ints([j, j % JOIN_DOMAIN])),
        )
        .unwrap();
    source
        .load(
            "r2",
            (0..PRELOAD).map(|j| Tuple::ints([j % JOIN_DOMAIN, 3000 + j])),
        )
        .unwrap();
    let views = (0..views)
        .map(|v| {
            ViewDef::new(
                format!("V{v}"),
                vec![
                    Schema::new("r1", &["W", "X"]),
                    Schema::new("r2", &["X", "Y"]),
                ],
                Predicate::col_eq(1, 2),
                vec![0],
            )
            .unwrap()
        })
        .collect();
    (source, views)
}

fn build_script(updates: u64) -> Vec<Update> {
    (0..updates as i64)
        .map(|i| {
            if i % 2 == 0 {
                Update::insert("r1", Tuple::ints([1000 + i, i % JOIN_DOMAIN]))
            } else {
                Update::insert("r2", Tuple::ints([i % JOIN_DOMAIN, 2000 + i]))
            }
        })
        .collect()
}

/// Drive the maintenance stream to completion, settling each update so
/// quiescent (strong-eligible) epochs keep advancing under the readers.
fn maintenance_duty(
    mut wh: Warehouse,
    mut source: Source,
    mut src_end: SharedFifo,
    mut wh_end: SharedFifo,
    script: Vec<Update>,
) -> (Warehouse, Duration) {
    let start = Instant::now();
    for u in &script {
        assert!(source.execute_update(u), "script update rejected");
        src_end
            .send(&Message::UpdateNotification { update: u.clone() })
            .unwrap();
        loop {
            let mut progress = wh.pump(SourceId(0), &mut wh_end).unwrap() > 0;
            while let Some(msg) = src_end.try_recv().unwrap() {
                let Message::QueryRequest { id, query } = msg else {
                    panic!("unexpected message at source");
                };
                let answer = source.answer(&query).unwrap();
                src_end.send(&Message::QueryAnswer { id, answer }).unwrap();
                progress = true;
            }
            if !progress && wh.is_quiescent() {
                break;
            }
        }
    }
    (wh, start.elapsed())
}

/// What one reader-driver thread brings home.
struct DriverReport {
    latencies_us: Vec<u64>,
    /// Per-level `(reads, staleness → count)`.
    levels: [(u64, BTreeMap<u64, u64>); 3],
    violations: u64,
    /// Distinct strong answers seen: `(view, epoch) → rows`.
    strong: BTreeMap<(u64, u64), SignedBag>,
}

/// One client slot inside a driver: a channel, a level, and the read in
/// flight.
struct Slot {
    client: ReadClient<SharedFifo>,
    level: ReadLevel,
    view: u64,
    sent: Option<Instant>,
    done: u64,
}

fn driver_duty(mut slots: Vec<Slot>, reads_per_reader: u64) -> DriverReport {
    let mut report = DriverReport {
        latencies_us: Vec::new(),
        levels: Default::default(),
        violations: 0,
        strong: BTreeMap::new(),
    };
    loop {
        let mut live = false;
        let mut progressed = false;
        for slot in &mut slots {
            if slot.done >= reads_per_reader {
                continue;
            }
            live = true;
            match slot.sent {
                None => {
                    slot.client.begin_read(slot.view, slot.level).unwrap();
                    slot.sent = Some(Instant::now());
                    progressed = true;
                }
                Some(at) => match slot.client.try_finish() {
                    Ok(None) => {}
                    Ok(Some(out)) => {
                        report.latencies_us.push(at.elapsed().as_micros() as u64);
                        let (count, hist) = &mut report.levels[level_ix(slot.level)];
                        *count += 1;
                        *hist.entry(out.staleness()).or_insert(0) += 1;
                        if slot.level == ReadLevel::Strong {
                            report
                                .strong
                                .entry((out.view, out.epoch))
                                .or_insert(out.rows);
                        }
                        slot.done += 1;
                        slot.sent = None;
                        progressed = true;
                    }
                    Err(ServeError::NonMonotonic { .. }) => {
                        report.violations += 1;
                        slot.done += 1;
                        slot.sent = None;
                        progressed = true;
                    }
                    Err(e) => panic!("reader failed: {e}"),
                },
            }
        }
        if !live {
            return report;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(20));
        }
    }
}

/// Run one mixed-workload scenario.
pub fn run(cfg: ServingConfig) -> ServingResult {
    let (source, views) = build_source(cfg.views);
    let mut wh = Warehouse::new();
    wh.set_record_history(true);
    let src = wh.add_source("s0");
    let mut view_ids = Vec::new();
    for view in &views {
        let initial = view.eval(&source.snapshot()).unwrap();
        let maintainer = AlgorithmKind::Eca.instantiate(view, initial).unwrap();
        view_ids.push(wh.add_view(src, maintainer).unwrap());
    }
    let registry = wh.enable_serving(cfg.ring_cap);
    let server = Arc::new(ReadServer::new(Arc::clone(&registry)));

    // One channel per reader; server ends dealt round-robin to workers.
    let mut server_ends: Vec<Vec<SharedFifo>> =
        (0..cfg.server_workers).map(|_| Vec::new()).collect();
    let mut client_ends = Vec::new();
    for i in 0..cfg.readers {
        let (client_end, server_end) = SharedFifo::pair(TransferMeter::new());
        client_ends.push(client_end);
        server_ends[i % cfg.server_workers].push(server_end);
    }

    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let mut server_threads = Vec::new();
    for ends in server_ends {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&served);
        server_threads.push(std::thread::spawn(move || {
            let mut ends = ends;
            while !stop.load(Ordering::Acquire) {
                let mut n = 0usize;
                for t in ends.iter_mut() {
                    n += server.serve_ready(t).unwrap();
                }
                if n == 0 {
                    std::thread::sleep(Duration::from_micros(20));
                } else {
                    served.fetch_add(n as u64, Ordering::Relaxed);
                }
            }
        }));
    }

    // Maintenance runs concurrently with the whole reading window.
    let (src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
    let script = build_script(cfg.updates);
    let maintenance =
        std::thread::spawn(move || maintenance_duty(wh, source, src_end, wh_end, script));

    // Reader drivers: levels dealt round-robin so each level gets a
    // third of the clients; views likewise.
    let mut driver_slots: Vec<Vec<Slot>> = (0..cfg.reader_threads).map(|_| Vec::new()).collect();
    for (i, client_end) in client_ends.into_iter().enumerate() {
        let level = [ReadLevel::Convergent, ReadLevel::Weak, ReadLevel::Strong][i % 3];
        driver_slots[i % cfg.reader_threads].push(Slot {
            client: ReadClient::new(client_end),
            level,
            view: (i % cfg.views) as u64,
            sent: None,
            done: 0,
        });
    }
    let read_start = Instant::now();
    let drivers: Vec<_> = driver_slots
        .into_iter()
        .map(|slots| std::thread::spawn(move || driver_duty(slots, cfg.reads_per_reader)))
        .collect();

    let reports: Vec<DriverReport> = drivers.into_iter().map(|d| d.join().unwrap()).collect();
    let read_wall = read_start.elapsed();
    let (wh, maint_wall) = maintenance.join().unwrap();
    stop.store(true, Ordering::Release);
    for t in server_threads {
        t.join().unwrap();
    }

    // Merge driver reports.
    let mut latencies: Vec<u64> = Vec::new();
    let mut levels: [(u64, BTreeMap<u64, u64>); 3] = Default::default();
    let mut violations = 0;
    let mut strong: BTreeMap<(u64, u64), SignedBag> = BTreeMap::new();
    for report in reports {
        latencies.extend(report.latencies_us);
        violations += report.violations;
        for (ix, (count, hist)) in report.levels.into_iter().enumerate() {
            levels[ix].0 += count;
            for (staleness, n) in hist {
                *levels[ix].1.entry(staleness).or_insert(0) += n;
            }
        }
        for (key, rows) in report.strong {
            strong.entry(key).or_insert(rows);
        }
    }
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let ix = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[ix]
    };

    // §3.1 verification: every distinct strong snapshot is a state the
    // view actually passed through.
    let mut all_in_history = true;
    let mut checked: BTreeSet<(u64, u64)> = BTreeSet::new();
    for ((view, epoch), rows) in &strong {
        checked.insert((*view, *epoch));
        let history = wh.view_states(ViewId(*view as usize));
        if !history.contains(rows) {
            all_in_history = false;
        }
    }

    let reads: u64 = levels.iter().map(|(count, _)| count).sum();
    ServingResult {
        config: cfg,
        read_wall,
        reads,
        reads_per_sec: reads as f64 / read_wall.as_secs_f64(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        levels,
        violations,
        strong_distinct: checked.len() as u64,
        strong_all_in_history: all_in_history,
        updates: cfg.updates,
        updates_per_sec: cfg.updates as f64 / maint_wall.as_secs_f64(),
    }
}

impl ServingResult {
    /// Render for the artifact.
    pub fn to_json(&self) -> Json {
        let level_names = ["convergent", "weak", "strong"];
        Json::obj([
            (
                "config",
                Json::obj([
                    ("readers", Json::Int(self.config.readers as i64)),
                    (
                        "reader_threads",
                        Json::Int(self.config.reader_threads as i64),
                    ),
                    (
                        "server_workers",
                        Json::Int(self.config.server_workers as i64),
                    ),
                    (
                        "reads_per_reader",
                        Json::Int(self.config.reads_per_reader as i64),
                    ),
                    ("updates", Json::Int(self.config.updates as i64)),
                    ("views", Json::Int(self.config.views as i64)),
                    ("ring_cap", Json::Int(self.config.ring_cap as i64)),
                ]),
            ),
            ("reads", Json::Int(self.reads as i64)),
            (
                "read_wall_ms",
                Json::Num(self.read_wall.as_secs_f64() * 1e3),
            ),
            ("reads_per_sec", Json::Num(self.reads_per_sec)),
            ("p50_us", Json::Int(self.p50_us as i64)),
            ("p99_us", Json::Int(self.p99_us as i64)),
            (
                "levels",
                Json::arr(self.levels.iter().enumerate().map(|(ix, (count, hist))| {
                    Json::obj([
                        ("level", Json::str(level_names[ix])),
                        ("reads", Json::Int(*count as i64)),
                        (
                            "staleness_epochs",
                            Json::obj(
                                hist.iter()
                                    .map(|(s, n)| (s.to_string(), Json::Int(*n as i64))),
                            ),
                        ),
                    ])
                })),
            ),
            ("violations", Json::Int(self.violations as i64)),
            (
                "strong",
                Json::obj([
                    ("distinct_snapshots", Json::Int(self.strong_distinct as i64)),
                    (
                        "all_in_section_3_1_history",
                        Json::Int(i64::from(self.strong_all_in_history)),
                    ),
                ]),
            ),
            (
                "maintenance",
                Json::obj([
                    ("updates", Json::Int(self.updates as i64)),
                    ("updates_per_sec", Json::Num(self.updates_per_sec)),
                ]),
            ),
        ])
    }
}

/// The full serving artifact document.
pub fn report(result: &ServingResult) -> Json {
    Json::obj([
        ("benchmark", Json::str("mixed read/write serving")),
        (
            "method",
            Json::str(
                "N concurrent ReadClients over SharedFifo channels against a \
                 ReadServer worker pool, while one maintenance loop streams \
                 updates through the warehouse; every committed event publishes \
                 an epoch snapshot (copy-on-publish) into the registry the \
                 servers read, so reads never block maintenance; readers are \
                 split across the three section-3 consistency levels and every \
                 distinct strong answer is replayed against the section-3.1 \
                 state history after the run",
            ),
        ),
        ("result", result.to_json()),
    ])
}

/// CI gate: zero violations, strong reads all in the §3.1 history,
/// every read completed, and a sanity floor on throughput.
pub fn smoke(result: &ServingResult) -> bool {
    let mut ok = true;
    if result.violations != 0 {
        eprintln!("FAIL: {} monotonicity violations", result.violations);
        ok = false;
    }
    if !result.strong_all_in_history {
        eprintln!("FAIL: a strong read served a state outside the section-3.1 history");
        ok = false;
    }
    if result.reads != result.config.total_reads() {
        eprintln!(
            "FAIL: {} of {} reads completed",
            result.reads,
            result.config.total_reads()
        );
        ok = false;
    }
    if result.reads_per_sec < 500.0 {
        eprintln!(
            "FAIL: serving throughput {:.0} reads/sec below the 500/sec floor",
            result.reads_per_sec
        );
        ok = false;
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_is_green() {
        let mut cfg = ServingConfig::smoke();
        cfg.readers = 12;
        cfg.reader_threads = 2;
        cfg.reads_per_reader = 5;
        cfg.updates = 10;
        let result = run(cfg);
        assert_eq!(result.reads, cfg.total_reads());
        assert_eq!(result.violations, 0);
        assert!(result.strong_all_in_history);
        // All three levels got traffic.
        for (count, _) in &result.levels {
            assert!(*count > 0);
        }
    }
}
