//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! figures [--table1] [--messages] [--fig62] [--fig63] [--fig64] [--fig65]
//!         [--crossovers] [--batch] [--selfmaint] [--all] [--quick]
//!         [--json DIR] [--seed N]
//! ```
//!
//! With no selection flags, `--all` is assumed. `--quick` uses coarser
//! sweeps (used by CI / the verification run). `--json DIR` additionally
//! dumps each series as a JSON artifact.

use std::path::PathBuf;

use eca_bench::json::ToJson;
use eca_bench::{
    batch_series, crossover_report, fig62_series, fig63_series, fig64_series, fig65_series,
    messages_series, render_rows, FigureRow,
};
use eca_workload::Params;

struct Options {
    table1: bool,
    messages: bool,
    fig62: bool,
    fig63: bool,
    fig64: bool,
    fig65: bool,
    crossovers: bool,
    batch: bool,
    selfmaint: bool,
    quick: bool,
    json: Option<PathBuf>,
    seed: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        table1: false,
        messages: false,
        fig62: false,
        fig63: false,
        fig64: false,
        fig65: false,
        crossovers: false,
        batch: false,
        selfmaint: false,
        quick: false,
        json: None,
        seed: 1,
    };
    let mut any = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table1" => {
                opts.table1 = true;
                any = true;
            }
            "--messages" => {
                opts.messages = true;
                any = true;
            }
            "--fig62" => {
                opts.fig62 = true;
                any = true;
            }
            "--fig63" => {
                opts.fig63 = true;
                any = true;
            }
            "--fig64" => {
                opts.fig64 = true;
                any = true;
            }
            "--fig65" => {
                opts.fig65 = true;
                any = true;
            }
            "--crossovers" => {
                opts.crossovers = true;
                any = true;
            }
            "--batch" => {
                opts.batch = true;
                any = true;
            }
            "--selfmaint" => {
                opts.selfmaint = true;
                any = true;
            }
            "--all" => {
                any = false;
            }
            "--quick" => opts.quick = true,
            "--json" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                });
                opts.json = Some(PathBuf::from(dir));
            }
            "--seed" => {
                let seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer argument");
                    std::process::exit(2);
                });
                opts.seed = seed;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if !any {
        opts.table1 = true;
        opts.messages = true;
        opts.fig62 = true;
        opts.fig63 = true;
        opts.fig64 = true;
        opts.fig65 = true;
        opts.crossovers = true;
        opts.batch = true;
        opts.selfmaint = true;
    }
    opts
}

fn dump_json(dir: &Option<PathBuf>, name: &str, rows: &[FigureRow]) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = dir.join(format!("{name}.json"));
    let body = rows.to_json().pretty();
    std::fs::write(&path, body).expect("write json");
    println!("(wrote {})", path.display());
}

fn main() {
    let opts = parse_args();
    let seed = opts.seed;

    if opts.table1 {
        println!(
            "## Table 1 — variables and defaults\n{}",
            Params::default().table1()
        );
    }

    if opts.messages {
        let ks: Vec<u64> = if opts.quick {
            vec![1, 5, 10]
        } else {
            vec![1, 5, 10, 20, 40, 80, 120]
        };
        let rows = messages_series(&ks, seed);
        println!(
            "{}",
            render_rows(
                "Messages M vs k (paper 6.1: M_ECA = 2k, M_RV = 2*ceil(k/s))",
                "k",
                &rows
            )
        );
        dump_json(&opts.json, "messages", &rows);
    }

    if opts.fig62 {
        let cs: Vec<u64> = if opts.quick {
            vec![4, 12, 20]
        } else {
            vec![1, 2, 4, 6, 8, 10, 12, 16, 20]
        };
        let rows = fig62_series(&cs, seed);
        println!(
            "{}",
            render_rows("Figure 6.2 — B (bytes) vs C, k = 3", "C", &rows)
        );
        dump_json(&opts.json, "fig62", &rows);
    }

    if opts.fig63 {
        let ks: Vec<u64> = if opts.quick {
            vec![3, 30, 60]
        } else {
            vec![3, 15, 30, 45, 60, 75, 90, 105, 120]
        };
        let rows = fig63_series(&ks, seed);
        println!(
            "{}",
            render_rows("Figure 6.3 — B (bytes) vs k, C = 100", "k", &rows)
        );
        dump_json(&opts.json, "fig63", &rows);
    }

    if opts.fig64 {
        let ks: Vec<u64> = if opts.quick {
            vec![1, 5, 11]
        } else {
            (1..=11).collect()
        };
        let rows = fig64_series(&ks, seed);
        println!(
            "{}",
            render_rows("Figure 6.4 — IO vs k, Scenario 1 (indexed)", "k", &rows)
        );
        dump_json(&opts.json, "fig64", &rows);
    }

    if opts.fig65 {
        let ks: Vec<u64> = if opts.quick {
            vec![1, 5, 11]
        } else {
            (1..=11).collect()
        };
        let rows = fig65_series(&ks, seed);
        println!(
            "{}",
            render_rows(
                "Figure 6.5 — IO vs k, Scenario 2 (no indexes, 3 blocks)",
                "k",
                &rows
            )
        );
        dump_json(&opts.json, "fig65", &rows);
    }

    if opts.batch {
        let ns: &[usize] = if opts.quick {
            &[1, 4, 12]
        } else {
            &[1, 2, 3, 4, 6, 8, 12, 24]
        };
        let rows = batch_series(24, ns, seed);
        println!(
            "{}",
            render_rows(
                "Batching ablation (7 future work) - Batch-ECA at k = 24, adversarial timing",
                "n",
                &rows
            )
        );
        dump_json(&opts.json, "batch", &rows);
    }

    if opts.selfmaint {
        let k = if opts.quick { 12 } else { 24 };
        let curve = eca_bench::selfmaint::storage_curve(k, seed);
        let rows: Vec<FigureRow> = curve
            .iter()
            .map(|p| FigureRow {
                x: p.covered as u64,
                series: vec![
                    eca_bench::SeriesPoint {
                        label: "messages",
                        analytic: p.messages_analytic as f64,
                        measured: p.messages_measured as f64,
                    },
                    eca_bench::SeriesPoint {
                        label: "aux blocks",
                        analytic: (eca_analytic::selfmaint::aux_storage_tuples(
                            &Params::default(),
                            &[p.covered >= 1, p.covered >= 2, p.covered >= 3],
                        ) as f64
                            / Params::default().tuples_per_block as f64)
                            .ceil(),
                        measured: p.aux_blocks as f64,
                    },
                ],
            })
            .collect();
        println!(
            "{}",
            render_rows(
                &format!("Self-maintenance - auxiliary storage vs messages, k = {k}"),
                "aux",
                &rows
            )
        );
        if let Some(dir) = &opts.json {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = dir.join("selfmaint.json");
            std::fs::write(&path, eca_bench::selfmaint::report(k, seed).pretty())
                .expect("write selfmaint json");
            println!("(wrote {})", path.display());
        }
    }

    if opts.crossovers {
        println!("## Crossovers (paper 6.2-6.3)");
        println!(
            "{:<45} {:>32} {:>12} {:>12}",
            "comparison", "paper", "analytic k", "measured k"
        );
        for line in crossover_report(seed) {
            let fmt = |k: Option<u64>| k.map_or("none".to_owned(), |v| v.to_string());
            println!(
                "{:<45} {:>32} {:>12} {:>12}",
                line.comparison,
                line.paper,
                fmt(line.analytic_k),
                fmt(line.measured_k)
            );
        }
        println!();
    }
}
