//! Produce `results/planner.json`: naive-vs-planned SPJ evaluation
//! timings at the logical layer, and the I/O (block-read) evidence for
//! multi-term batching at the source — the measured counterpart of the
//! planner criterion bench.
//!
//! ```text
//! planner_report [--out PATH] [--seed N]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use eca_bench::json::Json;
use eca_core::Query;
use eca_relational::algebra::{spj, spj_naive};
use eca_relational::{Predicate, SignedBag, Tuple};
use eca_storage::Scenario;
use eca_wire::WireQuery;
use eca_workload::{Example6, Params};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn parse_args() -> (PathBuf, u64) {
    let mut out = PathBuf::from("results/planner.json");
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer argument");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    (out, seed)
}

/// Median wall-clock nanoseconds of `f` over `samples` runs.
fn median_nanos(samples: usize, mut f: impl FnMut()) -> u64 {
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Chained binary relations with join values in `0..dom`.
fn chain_inputs(n_rel: usize, rows: usize, dom: i64, seed: u64) -> Vec<SignedBag> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_rel)
        .map(|_| {
            SignedBag::from_tuples(
                (0..rows).map(|_| Tuple::ints([rng.gen_range(0..dom), rng.gen_range(0..dom)])),
            )
        })
        .collect()
}

fn chain_cond(n_rel: usize) -> Predicate {
    let mut cond = Predicate::True;
    for i in 1..n_rel {
        cond = cond.and(Predicate::col_eq(2 * i - 1, 2 * i));
    }
    cond
}

/// Logical layer: planned vs naive evaluation of one chain term.
fn term_report(n_rel: usize, seed: u64) -> Json {
    let rows = if n_rel == 4 { 12 } else { 30 };
    let inputs = chain_inputs(n_rel, rows, 6, seed.wrapping_add(n_rel as u64));
    let refs: Vec<&SignedBag> = inputs.iter().collect();
    let cond = chain_cond(n_rel);
    let proj = vec![0usize, 2 * n_rel - 1];
    let planned = spj(&refs, &cond, &proj).unwrap();
    let naive = spj_naive(&refs, &cond, &proj).unwrap();
    assert_eq!(planned, naive, "planned result must match the oracle");
    let planned_ns = median_nanos(30, || {
        spj(&refs, &cond, &proj).unwrap();
    });
    let naive_ns = median_nanos(30, || {
        spj_naive(&refs, &cond, &proj).unwrap();
    });
    Json::obj([
        ("relations", Json::from(n_rel as u64)),
        ("rows_per_relation", Json::from(rows as u64)),
        ("answer_tuples", Json::from(planned.signed_len())),
        ("planned_ns_median", Json::from(planned_ns)),
        ("naive_ns_median", Json::from(naive_ns)),
        (
            "speedup",
            Json::from(naive_ns as f64 / planned_ns.max(1) as f64),
        ),
        ("answers_match", Json::from(true)),
    ])
}

/// The 4-term compensating query of the Example-6 walk-through: after
/// updates U1(r1), U2(r3), U3(r2), ECA's third query is
/// `Q3 = V⟨U3⟩ − V⟨U1⟩⟨U3⟩ − V⟨U2⟩⟨U3⟩ + V⟨U1⟩⟨U2⟩⟨U3⟩`.
fn four_term_query(workload: &Example6) -> Query {
    let view = Example6::view().unwrap();
    let updates = workload.paper_updates();
    let (u1, u3, u2) = (&updates[0], &updates[1], &updates[2]);
    let q1 = view.substitute(u1).unwrap();
    let q2 = view.substitute(u2).unwrap().minus(&q1.substitute(u2));
    let q3 = view
        .substitute(u3)
        .unwrap()
        .minus(&q1.substitute(u3))
        .minus(&q2.substitute(u3));
    assert_eq!(q3.terms().len(), 4, "expected the 4-term Q3");
    q3
}

/// Physical layer: block reads for the 4-term query, per-term vs batched,
/// plus a parallel-equivalence check.
fn example6_report(seed: u64) -> Json {
    let params = Params::default();
    let workload = Example6::new(params, seed);
    let query = four_term_query(&workload);
    let wire = WireQuery::from_query(&query);

    let mut per_term = workload.build_source(Scenario::Indexed).unwrap();
    let answer_plain = per_term.answer(&wire).unwrap();
    let io_per_term = per_term.io_meter().query_reads();

    let mut batched = workload.build_source(Scenario::Indexed).unwrap();
    batched.enable_term_batching();
    let answer_batched = batched.answer(&wire).unwrap();
    let io_batched = batched.io_meter().query_reads();

    let mut parallel = workload.build_source(Scenario::Indexed).unwrap();
    let answer_parallel = parallel.answer_parallel(&wire).unwrap();

    assert_eq!(answer_plain, answer_batched, "batching changed the answer");
    assert_eq!(
        answer_plain, answer_parallel,
        "parallel evaluation changed the answer"
    );
    let ratio = io_per_term as f64 / io_batched.max(1) as f64;
    Json::obj([
        ("scenario", Json::str("indexed")),
        ("query_terms", Json::from(4u64)),
        ("cardinality", Json::from(params.cardinality)),
        ("join_factor", Json::from(params.join_factor)),
        ("io_reads_per_term", Json::from(io_per_term)),
        ("io_reads_batched", Json::from(io_batched)),
        ("io_reduction", Json::from(ratio)),
        ("answers_match", Json::from(true)),
    ])
}

fn main() {
    let (out, seed) = parse_args();
    let terms = Json::arr([2usize, 3, 4].map(|n| term_report(n, seed)));
    let example6 = example6_report(seed);

    if let Json::Obj(pairs) = &example6 {
        for (key, value) in pairs {
            if key.starts_with("io_") {
                println!("{key}: {}", value.pretty().trim());
            }
        }
    }

    let report = Json::obj([
        ("seed", Json::from(seed)),
        ("terms", terms),
        ("example6_four_term_query", example6),
    ]);
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&out, report.pretty()).expect("write report");
    println!("(wrote {})", out.display());
}
