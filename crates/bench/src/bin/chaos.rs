//! Chaos sweep driver: fault-rate grid over the ECA warehouse stack.
//!
//! Writes `results/chaos.json`, prints a per-point table, and exits
//! non-zero if any run fails the consistency gate (non-quiescent, or a
//! final view differing from the fault-free golden state) — the CI
//! smoke job runs `--smoke` (3 fixed seeds × drop/dup/reset plans).
//!
//! ```text
//! chaos [--smoke] [--out PATH]
//! ```

use std::path::PathBuf;

use eca_bench::chaos::{report, sweep, violations};

struct Args {
    smoke: bool,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        smoke: false,
        out: PathBuf::from("results/chaos.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--out" => {
                parsed.out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let points = sweep(args.smoke);

    println!(
        "{:>9} {:>10} {:>5} {:>5} {:>3} {:>7} {:>8} {:>7} {:>6} {:>8}",
        "scenario",
        "family",
        "rate",
        "ok",
        "seed",
        "retrans",
        "reissued",
        "resyncs",
        "stale",
        "overhead"
    );
    for p in &points {
        println!(
            "{:>9} {:>10} {:>5.2} {:>5} {:>3} {:>7} {:>8} {:>7} {:>6} {:>7.2}x",
            p.scenario,
            p.family.label(),
            p.rate,
            if p.ok() { "ok" } else { "FAIL" },
            p.seed,
            p.stats.retransmits,
            p.stats.reissued,
            p.stats.resyncs_completed,
            p.stats.stale_answers,
            p.overhead_ratio(),
        );
    }

    let doc = report(&points).pretty();
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&args.out, &doc).expect("write results artifact");
    println!("wrote {}", args.out.display());

    let bad = violations(&points);
    if !bad.is_empty() {
        eprintln!("FAIL: {} chaos run(s) violated consistency", bad.len());
        for p in bad {
            eprintln!(
                "  {} {} rate {:.2} seed {} (quiescent={}, matches_golden={})",
                p.scenario,
                p.family.label(),
                p.rate,
                p.seed,
                p.quiescent,
                p.matches_golden
            );
        }
        std::process::exit(1);
    }
}
