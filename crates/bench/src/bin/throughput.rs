//! End-to-end throughput sweep: serial vs concurrent warehouse runtime.
//!
//! Writes `results/throughput.json` and the repo-root
//! `BENCH_throughput.json`, prints a summary table, and exits non-zero
//! if the concurrent runtime is not faster than serial on every
//! scenario (the CI gate).
//!
//! ```text
//! throughput [--smoke] [--io-latency-us N] [--out PATH] [--root PATH]
//! ```

use std::path::PathBuf;
use std::time::Duration;

use eca_bench::throughput::{report, sweep};

struct Args {
    smoke: bool,
    io_latency: Duration,
    out: PathBuf,
    root: PathBuf,
}

fn parse_args() -> Args {
    // Default latency models a 1995-era disk conservatively: ~1ms per
    // block (real seek+rotate was nearer 10ms). The paper's cost model
    // counts blocks; this prices them.
    let mut parsed = Args {
        smoke: false,
        io_latency: Duration::from_micros(1000),
        out: PathBuf::from("results/throughput.json"),
        root: PathBuf::from("BENCH_throughput.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--io-latency-us" => {
                let us: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--io-latency-us requires an integer argument");
                    std::process::exit(2);
                });
                parsed.io_latency = Duration::from_micros(us);
            }
            "--out" => {
                parsed.out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                }));
            }
            "--root" => {
                parsed.root = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--root requires a path argument");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let results = sweep(args.smoke, args.io_latency);

    println!(
        "{:>7} {:>5} {:>7} {:>12} {:>12} {:>8}",
        "sources", "views", "updates", "serial u/s", "conc u/s", "speedup"
    );
    for r in &results {
        println!(
            "{:>7} {:>5} {:>7} {:>12.0} {:>12.0} {:>7.2}x",
            r.config.sources,
            r.config.views_per_source,
            r.config.updates_per_source,
            r.serial.updates_per_sec,
            r.concurrent.updates_per_sec,
            r.speedup()
        );
    }

    let doc = report(&results).pretty();
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&args.out, &doc).expect("write results artifact");
    std::fs::write(&args.root, &doc).expect("write root artifact");
    println!("wrote {} and {}", args.out.display(), args.root.display());

    let slow: Vec<_> = results.iter().filter(|r| r.speedup() <= 1.0).collect();
    if !slow.is_empty() {
        eprintln!(
            "FAIL: concurrent runtime not faster than serial on {} scenario(s)",
            slow.len()
        );
        std::process::exit(1);
    }
}
