//! End-to-end throughput sweep: serial vs concurrent warehouse runtime,
//! plus the thread-per-source vs reactor scaling curve.
//!
//! Writes `results/throughput.json` and the repo-root
//! `BENCH_throughput.json`, prints summary tables, and exits non-zero
//! if the concurrent runtime is not faster than serial on every
//! scenario, or the reactor does not beat thread-per-source at ≥32
//! sources (the CI gates).
//!
//! ```text
//! throughput [--smoke] [--scaling-smoke] [--tcp-scaling-smoke]
//!            [--selfmaint-smoke] [--serving-smoke] [--recovery-smoke]
//!            [--workers N] [--reactor-workers N]
//!            [--io-latency-us N] [--out PATH] [--root PATH]
//! ```
//!
//! `--workers` sizes the source-side answer pool of the serial-vs-
//! concurrent sweep; `--reactor-workers` sizes the reactor pool of the
//! scaling sweep (default 2 — on few cores a small pool wins, and every
//! scaling point records the value used).
//!
//! `--scaling-smoke` runs *only* the reduced scaling gate (32 sources,
//! threaded vs reactor) and skips the artifact files — the fast CI
//! check that the reactor's advantage has not regressed.
//! `--tcp-scaling-smoke` is the same gate over loopback TCP: every link
//! a real socket, thread-per-connection vs the readiness-driven
//! reactor (listener + poller), non-zero exit unless the reactor wins.
//! The TCP gate point is 128 sources — past the crossover where
//! thread-per-connection's per-thread cost overtakes its direct-wakeup
//! advantage (the full sweep charts the whole curve from 32 up).
//! `--selfmaint-smoke` runs only the self-maintenance gate: ECA-Aux on
//! the keyed fig-6.x scenario must answer ≥50% of compensating queries
//! locally and cut maintenance messages ≥50% vs ECA, with the exact
//! closed-form prediction matching the meter; it also refreshes
//! `results/selfmaint.json`.
//! `--serving-smoke` runs only the mixed read/write serving gate: a
//! reduced reader fleet against a live maintenance stream must complete
//! every read with zero monotonicity violations, every strong answer in
//! the §3.1 state history, and throughput above a sanity floor; it also
//! refreshes `results/serving.json`. The full (non-smoke) run measures
//! the ≥1000-reader configuration and embeds the result in the main
//! artifact.
//! `--recovery-smoke` runs only the crash-recovery gate: a warehouse
//! crashed mid-run must recover from its WAL + checkpoint, converge to
//! the fault-free golden views, and spend at most half the extra
//! messages (and bytes) of the full-RV fallback; it also refreshes
//! `results/recovery.json`. The full run sweeps a checkpoint-cadence
//! ladder for the recovery-time-vs-checkpoint-age curve.

use std::path::PathBuf;
use std::time::Duration;

use eca_bench::throughput::{report, scaling_sweep, sweep, tcp_scaling_sweep, ScalingResult};

/// The self-maintenance measurement point: k Mixed updates on the keyed
/// fig-6.x scenario (seed pinned so the artifact is reproducible).
const SELFMAINT_K: u64 = 24;
const SELFMAINT_SEED: u64 = 1;

struct Args {
    smoke: bool,
    scaling_smoke: bool,
    tcp_scaling_smoke: bool,
    selfmaint_smoke: bool,
    serving_smoke: bool,
    recovery_smoke: bool,
    workers: usize,
    reactor_workers: usize,
    io_latency: Duration,
    out: PathBuf,
    root: PathBuf,
}

fn parse_args() -> Args {
    // Default latency models a 1995-era disk conservatively: ~1ms per
    // block (real seek+rotate was nearer 10ms). The paper's cost model
    // counts blocks; this prices them.
    let mut parsed = Args {
        smoke: false,
        scaling_smoke: false,
        tcp_scaling_smoke: false,
        selfmaint_smoke: false,
        serving_smoke: false,
        recovery_smoke: false,
        workers: 8,
        reactor_workers: 2,
        io_latency: Duration::from_micros(1000),
        out: PathBuf::from("results/throughput.json"),
        root: PathBuf::from("BENCH_throughput.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => parsed.smoke = true,
            "--scaling-smoke" => parsed.scaling_smoke = true,
            "--tcp-scaling-smoke" => parsed.tcp_scaling_smoke = true,
            "--selfmaint-smoke" => parsed.selfmaint_smoke = true,
            "--serving-smoke" => parsed.serving_smoke = true,
            "--recovery-smoke" => parsed.recovery_smoke = true,
            "--workers" => {
                parsed.workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--workers requires a positive integer argument");
                        std::process::exit(2);
                    });
            }
            "--reactor-workers" => {
                parsed.reactor_workers = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&w| w > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--reactor-workers requires a positive integer argument");
                        std::process::exit(2);
                    });
            }
            "--io-latency-us" => {
                let us: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--io-latency-us requires an integer argument");
                    std::process::exit(2);
                });
                parsed.io_latency = Duration::from_micros(us);
            }
            "--out" => {
                parsed.out = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                }));
            }
            "--root" => {
                parsed.root = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--root requires a path argument");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn print_serving(r: &eca_bench::serving::ServingResult) {
    println!(
        "serving: {} readers x {} reads at {:.0} reads/sec (p50 {} us, p99 {} us), \
         {} violations, {} distinct strong snapshots all-in-history={}, \
         maintenance {:.0} updates/sec under load",
        r.config.readers,
        r.config.reads_per_reader,
        r.reads_per_sec,
        r.p50_us,
        r.p99_us,
        r.violations,
        r.strong_distinct,
        r.strong_all_in_history,
        r.updates_per_sec,
    );
}

fn print_recovery(points: &[eca_bench::recovery::RecoveryPoint]) {
    println!(
        "{:>9} {:>6} {:>10} {:>10} {:>9} {:>10} {:>10} {:>9} {:>5}",
        "ckpt",
        "crash",
        "dur extra",
        "dur extra",
        "recovery",
        "rv extra",
        "rv extra",
        "replayed",
        "gate"
    );
    println!(
        "{:>9} {:>6} {:>10} {:>10} {:>9} {:>10} {:>10} {:>9} {:>5}",
        "every", "step", "msgs", "bytes", "us", "msgs", "bytes", "records", ""
    );
    for p in points {
        println!(
            "{:>9} {:>6} {:>10} {:>10} {:>9} {:>10} {:>10} {:>9} {:>5}",
            p.checkpoint_every,
            p.crash_step,
            p.durable_extra_messages(),
            p.durable_extra_bytes(),
            p.durable_recovery_us,
            p.full_extra_messages(),
            p.full_extra_bytes(),
            p.wal_replayed,
            if p.ok() { "ok" } else { "FAIL" },
        );
    }
}

fn write_recovery(points: &[eca_bench::recovery::RecoveryPoint]) {
    let doc = eca_bench::recovery::report(points).pretty();
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/recovery.json", doc).expect("write recovery artifact");
    println!("wrote results/recovery.json");
}

fn print_scaling(scaling: &[ScalingResult]) {
    println!(
        "{:>7} {:>6} {:>7} {:>7} {:>12} {:>12} {:>8}",
        "sources", "views", "updates", "workers", "threaded u/s", "reactor u/s", "speedup"
    );
    for r in scaling {
        println!(
            "{:>7} {:>6} {:>7} {:>7} {:>12.0} {:>12.0} {:>7.2}x",
            r.config.sources,
            r.config.total_views(),
            r.config.updates_per_source,
            r.config.workers,
            r.threaded.updates_per_sec,
            r.reactor.updates_per_sec,
            r.speedup()
        );
    }
}

/// The reactor must beat the thread-per-source baseline at every point
/// with `min_sources` or more sources. In-memory links gate at 32; the
/// loopback-TCP gate sits at 128, past the crossover where
/// thread-per-connection's direct kernel wakeups stop compensating for
/// its per-thread cost (the full TCP curve still charts the small-N
/// points where the baseline legitimately competes).
fn gate_scaling(scaling: &[ScalingResult], min_sources: usize) -> bool {
    let slow: Vec<_> = scaling
        .iter()
        .filter(|r| r.config.sources >= min_sources && r.speedup() <= 1.0)
        .collect();
    for r in &slow {
        eprintln!(
            "FAIL: reactor not faster than thread-per-source at {} sources ({:.2}x)",
            r.config.sources,
            r.speedup()
        );
    }
    slow.is_empty()
}

fn main() {
    let args = parse_args();

    if args.scaling_smoke {
        let scaling = scaling_sweep(true, args.reactor_workers);
        print_scaling(&scaling);
        if !gate_scaling(&scaling, 32) {
            std::process::exit(1);
        }
        return;
    }

    if args.tcp_scaling_smoke {
        let tcp = tcp_scaling_sweep(true, args.reactor_workers);
        print_scaling(&tcp);
        if !gate_scaling(&tcp, 128) {
            std::process::exit(1);
        }
        return;
    }

    if args.selfmaint_smoke {
        let doc = eca_bench::selfmaint::report(SELFMAINT_K, SELFMAINT_SEED).pretty();
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/selfmaint.json", doc).expect("write selfmaint artifact");
        println!("wrote results/selfmaint.json");
        if !eca_bench::selfmaint::smoke(SELFMAINT_K, SELFMAINT_SEED) {
            std::process::exit(1);
        }
        return;
    }

    if args.serving_smoke {
        let result = eca_bench::serving::run(eca_bench::serving::ServingConfig::smoke());
        print_serving(&result);
        let doc = eca_bench::serving::report(&result).pretty();
        std::fs::create_dir_all("results").expect("create results dir");
        std::fs::write("results/serving.json", doc).expect("write serving artifact");
        println!("wrote results/serving.json");
        if !eca_bench::serving::smoke(&result) {
            std::process::exit(1);
        }
        return;
    }

    if args.recovery_smoke {
        let points = eca_bench::recovery::sweep(true);
        print_recovery(&points);
        write_recovery(&points);
        if !eca_bench::recovery::violations(&points).is_empty() {
            std::process::exit(1);
        }
        return;
    }

    let results = sweep(args.smoke, args.io_latency, args.workers);
    println!(
        "{:>7} {:>5} {:>7} {:>12} {:>12} {:>8}",
        "sources", "views", "updates", "serial u/s", "conc u/s", "speedup"
    );
    for r in &results {
        println!(
            "{:>7} {:>5} {:>7} {:>12.0} {:>12.0} {:>7.2}x",
            r.config.sources,
            r.config.views_per_source,
            r.config.updates_per_source,
            r.serial.updates_per_sec,
            r.concurrent.updates_per_sec,
            r.speedup()
        );
    }

    let scaling = scaling_sweep(args.smoke, args.reactor_workers);
    print_scaling(&scaling);

    let tcp_scaling = tcp_scaling_sweep(args.smoke, args.reactor_workers);
    println!("loopback TCP:");
    print_scaling(&tcp_scaling);

    // Mixed read/write serving: the full run fields the ≥1000-reader
    // configuration; `--smoke` keeps the reduced fleet.
    let serving_cfg = if args.smoke {
        eca_bench::serving::ServingConfig::smoke()
    } else {
        eca_bench::serving::ServingConfig::full()
    };
    let serving = eca_bench::serving::run(serving_cfg);
    print_serving(&serving);
    let serving_doc = eca_bench::serving::report(&serving);
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/serving.json", serving_doc.pretty()).expect("write serving artifact");
    println!("wrote results/serving.json");

    // Crash recovery: the full run walks the checkpoint-cadence ladder
    // for the recovery-time-vs-checkpoint-age curve.
    let recovery_points = eca_bench::recovery::sweep(args.smoke);
    print_recovery(&recovery_points);
    let recovery_doc = eca_bench::recovery::report(&recovery_points);
    write_recovery(&recovery_points);

    let doc = report(
        &results,
        &scaling,
        &tcp_scaling,
        eca_bench::selfmaint::report(SELFMAINT_K, SELFMAINT_SEED),
        serving_doc,
        recovery_doc,
    )
    .pretty();
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    std::fs::write(&args.out, &doc).expect("write results artifact");
    std::fs::write(&args.root, &doc).expect("write root artifact");
    println!("wrote {} and {}", args.out.display(), args.root.display());

    let mut failed = false;
    let slow: Vec<_> = results.iter().filter(|r| r.speedup() <= 1.0).collect();
    if !slow.is_empty() {
        eprintln!(
            "FAIL: concurrent runtime not faster than serial on {} scenario(s)",
            slow.len()
        );
        failed = true;
    }
    failed |= !gate_scaling(&scaling, 32);
    failed |= !gate_scaling(&tcp_scaling, 128);
    failed |= !eca_bench::serving::smoke(&serving);
    let recovery_violations = eca_bench::recovery::violations(&recovery_points);
    if !recovery_violations.is_empty() {
        eprintln!(
            "FAIL: {} recovery point(s) missed the incremental-resync gate",
            recovery_violations.len()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
