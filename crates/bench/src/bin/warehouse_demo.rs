//! Drive a warehouse maintenance scenario from a text file.
//!
//! ```text
//! warehouse_demo <scenario-file> [--trace]
//! ```
//!
//! Scenario format (line-oriented; `#` starts a comment):
//!
//! ```text
//! relation r1(W, X) key(W) cluster(X)     # declare a base relation
//! load r1 (1,2) (3,4)                     # initial tuples
//! view V = SELECT r1.W FROM r1, r2 WHERE r1.X = r2.X
//! algorithm ECA                           # Basic|ECA|ECA*|ECA-Key|LCA|SC|RV:s|Batch:n
//! policy adversarial                      # serial|adversarial|random:SEED
//! insert r2 (2,3)                         # scripted updates, in order
//! delete r1 (1,2)
//! ```
//!
//! Runs the scenario through the full stack and reports the final view,
//! correctness, consistency level and the three §6 cost factors. A sample
//! lives at `crates/bench/scenarios/example2.eca`.

use std::process::ExitCode;

use eca_core::{parse_view, ViewDef};
use eca_relational::Schema;
use eca_sim::Simulation;
use eca_source::Source;
use eca_storage::Scenario;

use eca_bench::scenario_file::{parse_scenario, ScenarioFile};

fn run(sf: &ScenarioFile, trace: bool) -> Result<bool, Box<dyn std::error::Error>> {
    let catalog: Vec<Schema> = sf.relations.iter().map(|r| r.schema.clone()).collect();
    let (view_name, sql) = sf.view_sql.as_ref().expect("validated");
    let view: ViewDef = parse_view(view_name, sql, &catalog)?;

    let mut source = Source::new(Scenario::Indexed);
    for decl in &sf.relations {
        source.add_relation(decl.schema.clone(), 20, decl.cluster.as_deref(), &[])?;
    }
    for (rel, tuples) in &sf.loads {
        source.load(rel, tuples.iter().cloned())?;
    }

    let snapshot = source.snapshot();
    let initial = view.eval(&snapshot)?;
    let warehouse = sf
        .algorithm
        .instantiate_with_base(&view, initial, Some(snapshot))?;
    let label = warehouse.algorithm();
    println!("view      : {view:?}");
    println!("algorithm : {label}");
    println!("policy    : {:?}", sf.policy);
    println!("updates   : {}", sf.updates.len());

    let report = Simulation::new(source, warehouse, sf.updates.clone())?.run(sf.policy)?;
    if trace {
        println!("\nevent trace:");
        for e in &report.trace {
            println!("  {e}");
        }
    }
    let check = eca_consistency::check(&report.source_view_states, &report.warehouse_view_states);
    println!("\nfinal view     : {:?}", report.final_mv);
    println!("source view    : {:?}", report.final_source_view);
    println!("correct        : {}", report.converged());
    println!("consistency    : {:?}", check.level());
    println!(
        "costs          : {} maintenance messages, {} answer bytes, {} block reads",
        report.maintenance_messages(),
        report.answer_bytes,
        report.io_reads
    );
    Ok(report.converged())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: warehouse_demo <scenario-file> [--trace]");
        return ExitCode::from(2);
    };
    let trace = args.any(|a| a == "--trace");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let scenario = match parse_scenario(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenario error: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&scenario, trace) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("\nview did NOT converge (try a compensating algorithm)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            ExitCode::from(2)
        }
    }
}
