//! A minimal JSON writer for the benchmark artifacts.
//!
//! The harness only ever *emits* JSON (figure dumps, the planner
//! report), so a tiny value tree plus a pretty-printer covers the whole
//! need without an external serialization framework.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values print as `null`).
    Num(f64),
    /// An integer, printed without a decimal point.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Artifact counters stay far below 2^53; i64 keeps printing exact.
        Json::Int(v as i64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::str(v)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the [`Json`] tree.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structure() {
        let v = Json::obj([
            ("name", Json::str("a\"b")),
            ("xs", Json::arr([Json::Int(1), Json::Num(2.5), Json::Null])),
            ("ok", Json::Bool(true)),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"a\\\"b\""));
        assert!(text.contains("2.5"));
        assert!(text.ends_with("}\n"));
        // Exact shape of a small document.
        assert_eq!(Json::arr([Json::Int(3)]).pretty(), "[\n  3\n]\n");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null\n");
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(Json::str("a\u{1}b").pretty(), "\"a\\u0001b\"\n");
    }
}
