//! Chaos sweep: convergence and reliability overhead across a fault-rate
//! grid.
//!
//! Each point runs a full warehouse scenario (Example 2's anomaly script
//! or the calibrated Example 6 workload) through the chaos harness — ECA
//! over [`eca_sim::ChaosSimulation`]'s `ReliableLink`-over-
//! `FaultyTransport` channels — under one fault family at one rate and
//! one scheduler seed, then checks the run against its fault-free golden
//! view state. The sweep records what the recovery machinery did
//! (retransmits, re-issues, RV resyncs, stale answers) and what
//! reliability cost on the wire (raw vs logical bytes), feeding
//! `results/chaos.json` and the CI smoke gate.

use eca_core::algorithms::AlgorithmKind;
use eca_core::ViewDef;
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};
use eca_sim::{ChaosProfile, ChaosSimulation, ChaosStats, Policy};
use eca_source::Source;
use eca_storage::Scenario;
use eca_warehouse::DurabilityConfig;
use eca_wire::FaultPlan;
use eca_workload::{Example6, Params, UpdateMix};

use crate::json::Json;

/// The fault families the sweep injects, one per run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Frames silently lost at the given per-message rate.
    Drops,
    /// Frames delivered twice.
    Duplicates,
    /// Frames held back and released later (reordering).
    Reorders,
    /// A mixed plan plus a scripted connection reset — the family that
    /// drives query re-issue and, with retries exhausted, RV resync.
    Resets,
    /// A mixed plan plus a scripted *source restart*: session state is
    /// lost on both ends, every view over the site degrades, and each
    /// recovers through an RV-style full resync (Alg. D.1).
    Restarts,
    /// A mixed plan plus a scripted *warehouse crash*: the warehouse
    /// process dies mid-run and recovers from its WAL + checkpoint,
    /// re-issuing in-flight queries and asking sources only for the
    /// notification tail past the durable watermark.
    Crashes,
}

impl Family {
    /// Every family, in sweep order.
    pub fn all() -> [Family; 6] {
        [
            Family::Drops,
            Family::Duplicates,
            Family::Reorders,
            Family::Resets,
            Family::Restarts,
            Family::Crashes,
        ]
    }

    /// Label used in the table and the JSON artifact.
    pub fn label(self) -> &'static str {
        match self {
            Family::Drops => "drops",
            Family::Duplicates => "duplicates",
            Family::Reorders => "reorders",
            Family::Resets => "resets",
            Family::Restarts => "restarts",
            Family::Crashes => "crashes",
        }
    }

    /// The symmetric per-site profile at `rate`, seeded per run.
    fn profile(self, seed: u64, rate: f64) -> ChaosProfile {
        match self {
            Family::Drops => ChaosProfile::symmetric(FaultPlan::drops(seed, rate)),
            Family::Duplicates => ChaosProfile::symmetric(FaultPlan::duplicates(seed, rate)),
            Family::Reorders => ChaosProfile::symmetric(FaultPlan::delays(seed, rate, 4)),
            Family::Resets => {
                ChaosProfile::symmetric(FaultPlan::mixed(seed, rate).with_resets(&[6]))
            }
            Family::Restarts => {
                ChaosProfile::symmetric(FaultPlan::mixed(seed, rate)).with_restarts(&[5])
            }
            Family::Crashes => {
                ChaosProfile::symmetric(FaultPlan::mixed(seed, rate)).with_warehouse_crashes(&[5])
            }
        }
    }
}

/// One grid point of the sweep.
#[derive(Clone, Debug)]
pub struct ChaosPoint {
    /// Scenario label (`example2` / `example6`).
    pub scenario: &'static str,
    /// Fault family injected.
    pub family: Family,
    /// Per-message fault rate.
    pub rate: f64,
    /// Scheduler and fault seed.
    pub seed: u64,
    /// Whether the warehouse reached quiescence.
    pub quiescent: bool,
    /// Whether the final view equals the fault-free golden state.
    pub matches_golden: bool,
    /// Injection and recovery counters for the run.
    pub stats: ChaosStats,
    /// Bytes the wire actually carried (frames, acks, retransmissions).
    pub raw_bytes: u64,
    /// Bytes the application logically transferred.
    pub logical_bytes: u64,
}

impl ChaosPoint {
    /// The consistency verdict the CI gate enforces.
    pub fn ok(&self) -> bool {
        self.quiescent && self.matches_golden
    }

    /// Raw-over-logical byte ratio: 1.0 means reliability was free.
    pub fn overhead_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.logical_bytes as f64
    }
}

/// Example 2's anomaly setup: `V = π_W(r1 ⋈ r2)`, one preloaded `r1`
/// tuple, the two-insert script.
fn example2_fixture() -> (Source, ViewDef, Vec<Update>) {
    let view = ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2),
        vec![0],
    )
    .expect("static view");
    let mut source = Source::new(Scenario::Indexed);
    source
        .add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
        .expect("static schema");
    source
        .add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &[])
        .expect("static schema");
    source.load("r1", [Tuple::ints([1, 2])]).expect("loads");
    let script = vec![
        Update::insert("r2", Tuple::ints([2, 3])),
        Update::insert("r1", Tuple::ints([4, 2])),
    ];
    (source, view, script)
}

/// The calibrated Example 6 workload with a 12-update mixed script.
fn example6_fixture() -> (Source, ViewDef, Vec<Update>) {
    let workload = Example6::new(Params::default(), 42);
    let source = workload
        .build_source(Scenario::Indexed)
        .expect("calibrated source");
    let view = Example6::view().expect("static view");
    let script = workload.updates(12, UpdateMix::Mixed);
    (source, view, script)
}

/// A scenario fixture: preloaded source, view definition, update script.
type Fixture = (Source, ViewDef, Vec<Update>);

/// A labelled fixture builder the sweep iterates over.
type ScenarioEntry = (&'static str, fn() -> Fixture);

fn single_site(fixture: Fixture, profile: ChaosProfile) -> ChaosSimulation {
    let (source, view, script) = fixture;
    let snapshot = source.snapshot();
    let mut sim = ChaosSimulation::new();
    let site = sim.add_source_with("s0", source, script, profile);
    // A factory rather than a one-shot maintainer so the crash family
    // can rebuild the warehouse process mid-run.
    sim.add_view_with_factory(site, move || {
        let initial = view.eval(&snapshot).expect("initial state");
        AlgorithmKind::Eca
            .instantiate_with_base(&view, initial, Some(snapshot.clone()))
            .expect("ECA applies to any view")
    })
    .expect("view over site");
    sim
}

/// A scratch durability directory for one crash-family run.
fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("eca-chaos-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn golden(fixture: fn() -> Fixture) -> SignedBag {
    single_site(fixture(), ChaosProfile::none())
        .run(Policy::Serial)
        .expect("fault-free run settles")
        .views[0]
        .final_mv
        .clone()
}

fn run_point(
    scenario: &'static str,
    fixture: fn() -> Fixture,
    golden_mv: &SignedBag,
    family: Family,
    rate: f64,
    seed: u64,
) -> ChaosPoint {
    let mut sim = single_site(fixture(), family.profile(seed, rate));
    if family == Family::Crashes {
        let dir = tmpdir(&format!("{scenario}-{seed}-{}", (rate * 100.0) as u32));
        sim.enable_durability(DurabilityConfig::new(&dir))
            .expect("durability over scratch dir");
    }
    match sim.run(Policy::Random { seed }) {
        Ok(report) => ChaosPoint {
            scenario,
            family,
            rate,
            seed,
            quiescent: report.quiescent,
            matches_golden: report.converged() && report.views[0].final_mv == *golden_mv,
            stats: report.stats,
            raw_bytes: report.overhead.iter().map(|o| o.raw_bytes).sum(),
            logical_bytes: report.overhead.iter().map(|o| o.logical_bytes).sum(),
        },
        // A scheduler error (livelocked channel, protocol violation) is
        // a sweep violation, not a crash: record it and let the gate
        // fail the run.
        Err(_) => ChaosPoint {
            scenario,
            family,
            rate,
            seed,
            quiescent: false,
            matches_golden: false,
            stats: ChaosStats::default(),
            raw_bytes: 0,
            logical_bytes: 0,
        },
    }
}

/// The three fixed seeds both the CI smoke job and the full sweep use.
pub const SEEDS: [u64; 3] = [1, 2, 3];

/// Run the grid. `smoke` keeps CI fast: Example 2 only, one rate, and
/// the drop/duplicate/reset plans the ISSUE's gate names; the full sweep
/// adds Example 6, the reorder family, and a rate ladder.
pub fn sweep(smoke: bool) -> Vec<ChaosPoint> {
    let scenarios: Vec<ScenarioEntry> = if smoke {
        vec![("example2", example2_fixture)]
    } else {
        vec![
            ("example2", example2_fixture),
            ("example6", example6_fixture),
        ]
    };
    let families: Vec<Family> = if smoke {
        vec![
            Family::Drops,
            Family::Duplicates,
            Family::Resets,
            Family::Crashes,
        ]
    } else {
        Family::all().to_vec()
    };
    let mut points = Vec::new();
    for (scenario, fixture) in scenarios {
        let golden_mv = golden(fixture);
        for &family in &families {
            // Resets mix all faults at once; their blended rates stay
            // moderate so the scripted reset (not a wedged channel)
            // remains the dominant recovery trigger.
            let rates: Vec<f64> = match (smoke, family) {
                (true, Family::Resets) => vec![0.1],
                // The smoke crash point is fault-free on the wire: the
                // gate isolates WAL recovery, not recovery-under-loss.
                (true, Family::Crashes) => vec![0.0],
                (true, _) => vec![0.2],
                (false, Family::Resets) => vec![0.02, 0.05, 0.1],
                (false, Family::Restarts | Family::Crashes) => vec![0.0, 0.05],
                (false, _) => vec![0.05, 0.1, 0.2, 0.3],
            };
            for &rate in &rates {
                for seed in SEEDS {
                    points.push(run_point(scenario, fixture, &golden_mv, family, rate, seed));
                }
            }
        }
    }
    points
}

/// Points that failed the consistency gate.
pub fn violations(points: &[ChaosPoint]) -> Vec<&ChaosPoint> {
    points.iter().filter(|p| !p.ok()).collect()
}

/// The `results/chaos.json` document.
pub fn report(points: &[ChaosPoint]) -> Json {
    Json::obj([
        ("experiment", Json::str("chaos")),
        (
            "description",
            Json::str(
                "fault-rate sweep: convergence to fault-free golden state and \
                 reliability overhead per fault family",
            ),
        ),
        ("violations", Json::Int(violations(points).len() as i64)),
        (
            "points",
            Json::arr(points.iter().map(|p| {
                let s = p.stats;
                Json::obj([
                    ("scenario", Json::str(p.scenario)),
                    ("family", Json::str(p.family.label())),
                    ("rate", Json::Num(p.rate)),
                    ("seed", Json::from(p.seed)),
                    ("quiescent", Json::from(p.quiescent)),
                    ("matches_golden", Json::from(p.matches_golden)),
                    ("steps", Json::from(s.steps)),
                    ("drops", Json::from(s.drops)),
                    ("duplicates", Json::from(s.duplicates)),
                    ("delays", Json::from(s.delays)),
                    ("corrupts", Json::from(s.corrupts)),
                    ("resets", Json::from(s.resets)),
                    ("retransmits", Json::from(s.retransmits)),
                    ("duplicates_dropped", Json::from(s.duplicates_dropped)),
                    ("corrupt_dropped", Json::from(s.corrupt_dropped)),
                    ("reissued", Json::from(s.reissued)),
                    ("resyncs_started", Json::from(s.resyncs_started)),
                    ("resyncs_completed", Json::from(s.resyncs_completed)),
                    ("stale_answers", Json::from(s.stale_answers)),
                    ("warehouse_restarts", Json::from(s.warehouse_restarts)),
                    ("resync_notifications", Json::from(s.resync_notifications)),
                    ("recovered_incremental", Json::from(s.recovered_incremental)),
                    ("recovered_full", Json::from(s.recovered_full)),
                    ("wal_replayed", Json::from(s.wal_replayed)),
                    ("raw_bytes", Json::from(p.raw_bytes)),
                    ("logical_bytes", Json::from(p.logical_bytes)),
                    ("overhead_ratio", Json::Num(p.overhead_ratio())),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean_and_injects() {
        let points = sweep(true);
        // 1 scenario × 4 families × 1 rate × 3 seeds.
        assert_eq!(points.len(), 12);
        assert!(violations(&points).is_empty());
        assert!(points.iter().any(|p| p.stats.drops > 0));
        assert!(points.iter().any(|p| p.stats.duplicates > 0));
        assert!(points
            .iter()
            .any(|p| p.family == Family::Resets && p.stats.resets >= 1));
        // Every warehouse-crash point recovered from the WAL rather than
        // falling back to full RV resync.
        assert!(points.iter().any(|p| p.family == Family::Crashes));
        assert!(points
            .iter()
            .filter(|p| p.family == Family::Crashes)
            .all(|p| p.stats.warehouse_restarts == 1
                && p.stats.recovered_incremental >= 1
                && p.stats.recovered_full == 0));
        // Reliability is never free under faults but the ledger stays
        // consistent: raw ≥ logical on every point.
        assert!(points.iter().all(|p| p.raw_bytes >= p.logical_bytes));
    }

    #[test]
    fn crash_family_converges_on_example6_every_seed() {
        let golden_mv = golden(example6_fixture);
        for seed in SEEDS {
            let p = run_point(
                "example6",
                example6_fixture,
                &golden_mv,
                Family::Crashes,
                0.0,
                seed,
            );
            assert!(p.ok(), "{p:?}");
        }
    }

    #[test]
    fn report_shape_is_stable() {
        let points = sweep(true);
        let doc = report(&points).pretty();
        assert!(doc.contains("\"experiment\": \"chaos\""));
        assert!(doc.contains("\"violations\": 0"));
        assert!(doc.contains("\"overhead_ratio\""));
    }
}
