//! Non-blocking codec equivalence: the incremental [`FrameDecoder`]
//! behind the readiness-driven `TcpTransport` must decode exactly the
//! same `Message` sequence as the blocking [`read_frame`] path no
//! matter how the byte stream is chunked — partial length prefixes,
//! partial bodies, several frames per read — and must flag truncation
//! (EOF mid-frame) instead of passing it off as a clean shutdown.

use eca_core::QueryId;
use eca_relational::{SignedBag, Tuple, Update};
use eca_wire::{
    read_frame, write_frame, FrameDecoder, Message, Role, TcpTransport, TransferMeter, Transport,
    TransportError, MAX_FRAME_LEN,
};
use proptest::prelude::*;

fn message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<i64>(), any::<bool>()).prop_map(|(n, ins)| {
            let t = Tuple::ints([n, n.wrapping_add(1)]);
            Message::UpdateNotification {
                update: if ins {
                    Update::insert("r1", t)
                } else {
                    Update::delete("r1", t)
                },
            }
        }),
        (any::<u64>(), prop::collection::vec(any::<i64>(), 0..6)).prop_map(|(id, vals)| {
            let mut answer = SignedBag::new();
            for v in vals {
                answer.add(Tuple::ints([v]), 1);
            }
            Message::QueryAnswer {
                id: QueryId(id),
                answer,
            }
        }),
    ]
}

/// One encoded wire stream for `msgs`, exactly as `TcpTransport::send`
/// lays it out (u32 big-endian length prefix per frame).
fn stream_of(msgs: &[Message]) -> Vec<u8> {
    let mut buf = Vec::new();
    for m in msgs {
        write_frame(&mut buf, m).unwrap();
    }
    buf
}

/// Decode `stream`, fed to the decoder in the chunks delimited by
/// `cuts` (sorted positions), popping completed frames after every
/// chunk — the shape of successive `drain_into` service passes.
fn decode_chunked(stream: &[u8], cuts: &[usize]) -> (Vec<Message>, bool) {
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    let mut start = 0;
    for &cut in cuts.iter().chain(std::iter::once(&stream.len())) {
        decoder.extend(&stream[start..cut]);
        while let Some(frame) = decoder.next_frame().expect("legit stream never over-cap") {
            out.push(Message::decode(frame).unwrap());
        }
        start = cut;
    }
    (out, decoder.has_partial())
}

/// The blocking reference: `read_frame` over the whole buffer.
fn decode_blocking(stream: &[u8]) -> Vec<Message> {
    let mut r = stream;
    let mut out = Vec::new();
    while let Some(frame) = read_frame(&mut r).unwrap() {
        out.push(Message::decode(frame).unwrap());
    }
    out
}

/// Every single-split boundary, exhaustively: a two-frame stream cut at
/// byte `i` for all `i` must decode identically to the blocking path —
/// this walks the cut through the first length prefix, the first body,
/// the second prefix and the second body.
#[test]
fn every_split_boundary_decodes_identically() {
    let msgs = vec![
        Message::UpdateNotification {
            update: Update::insert("r1", Tuple::ints([1, 2])),
        },
        Message::QueryAnswer {
            id: QueryId(7),
            answer: SignedBag::from_tuples([Tuple::ints([3]), Tuple::ints([4])]),
        },
    ];
    let stream = stream_of(&msgs);
    let reference = decode_blocking(&stream);
    assert_eq!(reference, msgs);
    for i in 0..=stream.len() {
        let (got, partial) = decode_chunked(&stream, &[i]);
        assert_eq!(got, reference, "split at byte {i}");
        assert!(!partial, "complete stream left residue at split {i}");
    }
}

/// Truncating the stream anywhere *inside* the final frame must leave
/// the decoder reporting a partial frame (the transport turns that into
/// an `UnexpectedEof` fault at EOF); truncating at a frame boundary is
/// a clean shutdown.
#[test]
fn truncated_final_frame_leaves_partial_state() {
    let msgs = vec![
        Message::UpdateNotification {
            update: Update::insert("r1", Tuple::ints([1, 2])),
        },
        Message::UpdateNotification {
            update: Update::insert("r2", Tuple::ints([3, 4])),
        },
    ];
    let stream = stream_of(&msgs);
    let first_frame_end = 4 + msgs[0].encoded_len();
    for cut in 0..stream.len() {
        let (got, partial) = decode_chunked(&stream[..cut], &[]);
        let at_boundary = cut == 0 || cut == first_frame_end;
        assert_eq!(
            partial, !at_boundary,
            "cut at {cut}: partial-frame flag is wrong"
        );
        let expect_complete = if cut >= first_frame_end { 1 } else { 0 };
        assert_eq!(got.len(), expect_complete, "cut at {cut}");
        assert_eq!(got[..], msgs[..expect_complete], "cut at {cut}");
    }
}

/// A peer that disconnects mid-frame over a real socket: the receiver
/// must deliver every complete frame, then surface `UnexpectedEof`
/// exactly once, then read as cleanly closed — never silently dropping
/// the truncation.
#[test]
fn mid_frame_disconnect_faults_after_complete_frames() {
    use std::io::Write as _;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let good = Message::UpdateNotification {
        update: Update::insert("r1", Tuple::ints([1, 2])),
    };
    let sender = {
        let good = good.clone();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            write_frame(&mut buf, &good).unwrap();
            write_frame(&mut buf, &good).unwrap();
            buf.extend_from_slice(&100u32.to_be_bytes()); // promise 100 bytes...
            buf.extend_from_slice(&[9, 9, 9]); // ...deliver 3, then vanish
            stream.write_all(&buf).unwrap();
        })
    };
    let mut wh = TcpTransport::connect(addr, Role::Warehouse, TransferMeter::new()).unwrap();
    sender.join().unwrap();
    let mut out = Vec::new();
    // Drain until the two good frames have arrived (the kernel may
    // deliver the bytes across several readiness edges).
    while out.len() < 2 {
        match wh.drain_into(&mut out, usize::MAX) {
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
            Err(e) => panic!("fault before the complete frames drained: {e}"),
        }
    }
    assert_eq!(out, vec![good.clone(), good]);
    // The truncated trailer surfaces as UnexpectedEof exactly once...
    let fault = loop {
        match wh.drain_into(&mut out, usize::MAX) {
            Ok(0) => std::thread::sleep(std::time::Duration::from_millis(1)),
            Ok(n) => panic!("unexpected extra frames: {n}"),
            Err(e) => break e,
        }
    };
    match fault {
        TransportError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected Io(UnexpectedEof), got {other:?}"),
    }
    // ...after which the channel reads closed, not faulted.
    assert_eq!(wh.recv().unwrap(), None);
}

/// An over-cap length prefix must be rejected the moment the 4 prefix
/// bytes are visible — *before* the promised body arrives — otherwise
/// `pending.len() < 4 + len` holds forever and the decoder buffers the
/// rest of the stream without bound (a slow OOM on a connection that
/// never errors). Regression for the unbounded-buffering bug.
#[test]
fn oversized_prefix_is_an_immediate_framing_error() {
    let mut decoder = FrameDecoder::new();
    decoder.extend(&u32::MAX.to_be_bytes());
    let err = decoder.next_frame().expect_err("4 GiB promise must fail");
    match err {
        TransportError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        other => panic!("expected Io(InvalidData), got {other:?}"),
    }
    // The smallest over-cap prefix fails too; the cap itself passes.
    let mut decoder = FrameDecoder::new();
    decoder.extend(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes());
    assert!(decoder.next_frame().is_err());
    let mut decoder = FrameDecoder::with_cap(8);
    decoder.extend(&8u32.to_be_bytes());
    decoder.extend(&[0u8; 8]);
    assert_eq!(decoder.next_frame().unwrap().unwrap().len(), 8);
}

/// Frames already complete in the buffer are still delivered before the
/// hostile prefix faults the stream — the error is positional, not
/// retroactive.
#[test]
fn frames_before_oversized_prefix_still_decode() {
    let good = Message::UpdateNotification {
        update: Update::insert("r1", Tuple::ints([1, 2])),
    };
    let mut stream = stream_of(&[good.clone(), good.clone()]);
    stream.extend_from_slice(&u32::MAX.to_be_bytes());
    let mut decoder = FrameDecoder::new();
    decoder.extend(&stream);
    for _ in 0..2 {
        let frame = decoder.next_frame().unwrap().unwrap();
        assert_eq!(Message::decode(frame).unwrap(), good);
    }
    assert!(decoder.next_frame().is_err());
}

/// A peer that *promises* an enormous frame over a real socket: the
/// transport must surface `InvalidData` once and then read as closed —
/// and must never sit waiting for 4 GiB that will never come.
#[test]
fn oversized_prefix_tears_down_tcp_connection() {
    use std::io::Write as _;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let good = Message::UpdateNotification {
        update: Update::insert("r1", Tuple::ints([1, 2])),
    };
    let sender = {
        let good = good.clone();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            write_frame(&mut buf, &good).unwrap();
            buf.extend_from_slice(&u32::MAX.to_be_bytes()); // 4 GiB promise
            buf.extend_from_slice(&[0; 64]); // a taste of the "body"
            stream.write_all(&buf).unwrap();
            // Keep the socket open: the fault must come from the cap,
            // not from EOF.
            stream
        })
    };
    let mut wh = TcpTransport::connect(addr, Role::Warehouse, TransferMeter::new()).unwrap();
    let _stream = sender.join().unwrap();
    let mut out = Vec::new();
    let fault = loop {
        match wh.drain_into(&mut out, usize::MAX) {
            Ok(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
            Err(e) => break e,
        }
    };
    assert_eq!(out, vec![good]);
    match fault {
        TransportError::Io(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        other => panic!("expected Io(InvalidData), got {other:?}"),
    }
    assert_eq!(wh.recv().unwrap(), None, "faulted channel reads closed");
}

proptest! {
    /// Random message sequences, random multi-way chunkings: the chunked
    /// decode equals the blocking decode, with no residue.
    #[test]
    fn chunked_decode_matches_blocking(
        msgs in prop::collection::vec(message(), 0..8),
        raw_cuts in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let stream = stream_of(&msgs);
        let mut cuts: Vec<usize> = raw_cuts
            .iter()
            .map(|&c| if stream.is_empty() { 0 } else { (c % (stream.len() as u64 + 1)) as usize })
            .collect();
        cuts.sort_unstable();
        let (got, partial) = decode_chunked(&stream, &cuts);
        prop_assert_eq!(got, decode_blocking(&stream));
        prop_assert!(!partial);
    }

    /// Truncating a random stream at a random byte: the decoder yields
    /// exactly the frames that fully arrived and flags a partial iff the
    /// cut landed inside a frame.
    #[test]
    fn truncation_yields_prefix_and_flags_partial(
        msgs in prop::collection::vec(message(), 1..6),
        cut_seed in any::<u64>(),
    ) {
        let stream = stream_of(&msgs);
        let cut = (cut_seed % (stream.len() as u64 + 1)) as usize;
        let (got, partial) = decode_chunked(&stream[..cut], &[]);
        // How many whole frames fit under the cut?
        let mut consumed = 0;
        let mut whole = 0;
        for m in &msgs {
            let next = consumed + 4 + m.encoded_len();
            if next <= cut {
                consumed = next;
                whole += 1;
            } else {
                break;
            }
        }
        prop_assert_eq!(got.len(), whole);
        prop_assert_eq!(&got[..], &msgs[..whole]);
        prop_assert_eq!(partial, cut != consumed);
    }

    /// A legitimate stream followed by an over-cap prefix, chunked at a
    /// random boundary: every complete frame decodes, then the decoder
    /// faults — never hangs waiting for the phantom body, regardless of
    /// how the bytes were split.
    #[test]
    fn oversized_prefix_faults_after_any_chunking(
        msgs in prop::collection::vec(message(), 0..6),
        promised in (MAX_FRAME_LEN as u64 + 1..=u32::MAX as u64),
        cut_seed in any::<u64>(),
    ) {
        let mut stream = stream_of(&msgs);
        stream.extend_from_slice(&(promised as u32).to_be_bytes());
        let cut = (cut_seed % (stream.len() as u64 + 1)) as usize;
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        let mut faulted = false;
        for chunk in [&stream[..cut], &stream[cut..]] {
            decoder.extend(chunk);
            loop {
                match decoder.next_frame() {
                    Ok(Some(frame)) => out.push(Message::decode(frame).unwrap()),
                    Ok(None) => break,
                    Err(_) => {
                        faulted = true;
                        break;
                    }
                }
            }
        }
        prop_assert_eq!(out, msgs);
        prop_assert!(faulted, "hostile prefix never surfaced");
    }
}
