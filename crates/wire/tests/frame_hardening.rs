//! Blocking read-path hardening: the length prefix of a frame is
//! untrusted input. A corrupt or hostile 4-byte prefix must be rejected
//! *before* the payload allocation ([`MAX_FRAME_LEN`]), a partial
//! prefix followed by EOF must be reported as truncation (never a clean
//! shutdown), and `ErrorKind::Interrupted` on the very first read must
//! be retried rather than killing a healthy connection.

use std::io::{Error, ErrorKind, Read};

use eca_relational::{Tuple, Update};
use eca_wire::{
    read_frame, read_frame_capped, write_frame, Message, TransportError, MAX_FRAME_LEN,
};

/// A scripted reader: each step is either a byte chunk or an
/// `Interrupted` error; reading past the script panics when `strict`
/// (proving the caller never asked) or yields EOF otherwise.
struct Script {
    steps: Vec<Result<Vec<u8>, ()>>,
    next: usize,
    strict: bool,
}

impl Script {
    fn new(steps: Vec<Result<Vec<u8>, ()>>) -> Script {
        Script {
            steps,
            next: 0,
            strict: false,
        }
    }

    /// Panic if the caller reads past the scripted steps.
    fn strict(mut self) -> Script {
        self.strict = true;
        self
    }
}

impl Read for Script {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.steps.get_mut(self.next) {
            None => {
                assert!(!self.strict, "read past the scripted bytes");
                Ok(0)
            }
            Some(Err(())) => {
                self.next += 1;
                Err(Error::new(ErrorKind::Interrupted, "signal"))
            }
            Some(Ok(chunk)) => {
                let n = chunk.len().min(buf.len());
                buf[..n].copy_from_slice(&chunk[..n]);
                chunk.drain(..n);
                if chunk.is_empty() {
                    self.next += 1;
                }
                Ok(n)
            }
        }
    }
}

fn io_kind(err: TransportError) -> ErrorKind {
    match err {
        TransportError::Io(e) => e.kind(),
        other => panic!("expected an Io error, got {other:?}"),
    }
}

/// Regression for the uncapped-`read_frame` bug: a garbage prefix
/// promising ~4 GiB must error with `InvalidData` without the payload
/// ever being read — the strict script proves no byte past the prefix
/// was requested, so no allocation was attempted either.
#[test]
fn garbage_prefix_errors_before_allocating() {
    let mut r = Script::new(vec![Ok(u32::MAX.to_be_bytes().to_vec())]).strict();
    assert_eq!(
        io_kind(read_frame(&mut r).unwrap_err()),
        ErrorKind::InvalidData
    );

    // Smallest over-cap value; and the cap itself is accepted.
    let mut r = Script::new(vec![Ok(((MAX_FRAME_LEN as u32) + 1)
        .to_be_bytes()
        .to_vec())])
    .strict();
    assert_eq!(
        io_kind(read_frame(&mut r).unwrap_err()),
        ErrorKind::InvalidData
    );

    let mut r = Script::new(vec![Ok(8u32.to_be_bytes().to_vec()), Ok(vec![0u8; 8])]);
    assert_eq!(read_frame_capped(&mut r, 8).unwrap().unwrap().len(), 8);
}

/// A 1–3 byte prefix followed by EOF is a truncated frame, not a clean
/// shutdown — the peer died mid-prefix and the caller must hear about
/// it (regression for the short-read audit).
#[test]
fn partial_prefix_then_eof_reports_truncation() {
    for n in 1..=3usize {
        let mut r = Script::new(vec![Ok(vec![0u8; n])]);
        assert_eq!(
            io_kind(read_frame(&mut r).unwrap_err()),
            ErrorKind::UnexpectedEof,
            "{n}-byte prefix then EOF must be UnexpectedEof"
        );
    }
    // EOF at the frame boundary stays a clean shutdown.
    let mut r = Script::new(vec![]);
    assert!(read_frame(&mut r).unwrap().is_none());
}

/// `Interrupted` before the first prefix byte must be retried — a
/// signal landing between frames is not a connection fault. The frame
/// that follows (dribbled one byte at a time) decodes normally.
#[test]
fn interrupted_first_read_is_retried() {
    let msg = Message::UpdateNotification {
        update: Update::insert("r1", Tuple::ints([1, 2])),
    };
    let mut stream = Vec::new();
    write_frame(&mut stream, &msg).unwrap();

    let mut steps: Vec<Result<Vec<u8>, ()>> = vec![Err(()), Err(())];
    steps.extend(stream.iter().map(|&b| Ok(vec![b])));
    let mut r = Script::new(steps);
    let frame = read_frame(&mut r).unwrap().expect("frame after signals");
    assert_eq!(Message::decode(frame).unwrap(), msg);

    // Interrupted then clean EOF is still a clean shutdown.
    let mut r = Script::new(vec![Err(())]);
    assert!(read_frame(&mut r).unwrap().is_none());

    // Interrupted *inside* the prefix (after a 2-byte short read) is
    // absorbed by read_exact; the frame still decodes.
    let mut stream2 = Vec::new();
    write_frame(&mut stream2, &msg).unwrap();
    let r2 = Script::new(vec![
        Ok(stream2[..2].to_vec()),
        Err(()),
        Ok(stream2[2..].to_vec()),
    ]);
    let frame = read_frame(&mut { r2 }).unwrap().expect("frame");
    assert_eq!(Message::decode(frame).unwrap(), msg);
}

/// Short reads mid-payload followed by EOF are truncation too — the cap
/// fix must not have disturbed the payload path.
#[test]
fn truncated_payload_reports_truncation() {
    let msg = Message::UpdateNotification {
        update: Update::insert("r1", Tuple::ints([1, 2])),
    };
    let mut stream = Vec::new();
    write_frame(&mut stream, &msg).unwrap();
    for cut in 5..stream.len() {
        let mut r = Script::new(vec![Ok(stream[..cut].to_vec())]);
        assert_eq!(
            io_kind(read_frame(&mut r).unwrap_err()),
            ErrorKind::UnexpectedEof,
            "payload cut at {cut}"
        );
    }
}
