//! Property tests: every message round-trips through the codec — and
//! through the transport framing both [`eca_wire::InMemoryFifo`] and
//! [`eca_wire::TcpTransport`] share — and encoded sizes match the
//! accounting helpers.

use eca_core::{QueryId, ViewDef};
use eca_relational::{CmpOp, Predicate, Schema, SignedBag, Tuple, Update, Value};
use eca_wire::{read_frame, write_frame, Message, WireQuery};
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,12}".prop_map(Value::str),
    ]
}

fn tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(value(), 0..5).prop_map(Tuple::new)
}

fn bag() -> impl Strategy<Value = SignedBag> {
    prop::collection::vec((tuple(), -3i64..=3), 0..10).prop_map(|entries| {
        let mut bag = SignedBag::new();
        for (t, c) in entries {
            bag.add(t, c);
        }
        bag
    })
}

fn update() -> impl Strategy<Value = Update> {
    ("[a-z]{1,8}", tuple(), any::<bool>()).prop_map(|(rel, t, ins)| {
        if ins {
            Update::insert(rel, t)
        } else {
            Update::delete(rel, t)
        }
    })
}

proptest! {
    #[test]
    fn update_notifications_roundtrip(u in update()) {
        let m = Message::UpdateNotification { update: u };
        prop_assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn answers_roundtrip(id in any::<u64>(), answer in bag()) {
        let m = Message::QueryAnswer { id: QueryId(id), answer };
        prop_assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn answer_payload_len_matches_bag_encoded_len(answer in bag()) {
        // The B metric relies on SignedBag::encoded_len agreeing with the
        // real codec: message = 1 tag + 8 id + payload.
        let m = Message::QueryAnswer { id: QueryId(1), answer: answer.clone() };
        prop_assert_eq!(m.encoded_len(), 9 + answer.encoded_len());
    }

    /// Every message variant survives encode → frame → unframe → decode —
    /// the exact path both transports use, so a pass here certifies the
    /// wire format for `InMemoryFifo` and `TcpTransport` alike.
    #[test]
    fn every_variant_roundtrips_through_framing(
        u in update(),
        id in any::<u64>(),
        answer in bag(),
    ) {
        let query = Message::QueryRequest {
            id: QueryId(id),
            query: WireQuery::from_query(
                &ViewDef::new(
                    "V",
                    vec![Schema::new("r1", &["W", "X"]), Schema::new("r2", &["X", "Y"])],
                    Predicate::col_eq(1, 2),
                    vec![0],
                ).unwrap().as_query(),
            ),
        };
        let msgs = [
            Message::UpdateNotification { update: u },
            Message::QueryAnswer { id: QueryId(id), answer },
            query,
        ];
        // Several frames back-to-back on one stream, like a real session.
        let mut wire = Vec::new();
        for m in &msgs {
            let before = wire.len();
            write_frame(&mut wire, m).unwrap();
            // Framing adds exactly the 4-byte length prefix (unmetered).
            prop_assert_eq!(wire.len() - before, 4 + m.encoded_len());
        }
        let mut reader = wire.as_slice();
        for m in &msgs {
            let frame = read_frame(&mut reader).unwrap().expect("frame present");
            prop_assert_eq!(frame.len(), m.encoded_len());
            prop_assert_eq!(&Message::decode(frame).unwrap(), m);
        }
        // Clean EOF at a frame boundary, not an error.
        prop_assert!(read_frame(&mut reader).unwrap().is_none());
    }

    /// A frame cut mid-payload is an I/O error (truncation), never a
    /// silent `None` and never a panic.
    #[test]
    fn truncated_frames_error_cleanly(u in update(), cut in 1usize..20) {
        let m = Message::UpdateNotification { update: u };
        let mut wire = Vec::new();
        write_frame(&mut wire, &m).unwrap();
        let cut = cut.min(wire.len() - 1);
        let mut reader = &wire[..wire.len() - cut];
        prop_assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn truncations_never_panic(u in update(), cut in 0usize..40) {
        let bytes = Message::UpdateNotification { update: u }.encode();
        let cut = cut.min(bytes.len());
        // Must error or produce a message, never panic.
        let _ = Message::decode(bytes.slice(0..cut));
    }
}

// Compensated multi-term queries round-trip and re-evaluate identically
// after catalog resolution — proptest over the bound tuples.
proptest! {
    #[test]
    fn queries_roundtrip_and_reevaluate(
        t1 in (0i64..5, 0i64..5),
        t2 in (0i64..5, 0i64..5),
        base in prop::collection::vec((0i64..5, 0i64..5), 0..8),
    ) {
        let schemas = vec![Schema::new("r1", &["W", "X"]), Schema::new("r2", &["X", "Y"])];
        let view = ViewDef::new(
            "V",
            schemas.clone(),
            Predicate::col_eq(1, 2).and(Predicate::col_cmp(0, CmpOp::Ge, 3)),
            vec![0],
        ).unwrap();
        let u1 = Update::insert("r2", Tuple::ints([t1.0, t1.1]));
        let u2 = Update::delete("r1", Tuple::ints([t2.0, t2.1]));
        let q = view.substitute(&u2).unwrap()
            .minus(&view.substitute(&u1).unwrap().substitute(&u2));

        let m = Message::QueryRequest { id: QueryId(9), query: WireQuery::from_query(&q) };
        let decoded = Message::decode(m.encode()).unwrap();
        prop_assert_eq!(&decoded, &m);

        let Message::QueryRequest { query, .. } = decoded else { unreachable!() };
        let rebuilt = query.to_query(&schemas).unwrap();

        let mut db = eca_core::BaseDb::new();
        for (a, b) in &base {
            db.insert("r1", Tuple::ints([*a, *b]));
            db.insert("r2", Tuple::ints([*b, *a]));
        }
        prop_assert_eq!(rebuilt.eval(&db).unwrap(), q.eval(&db).unwrap());
    }
}
