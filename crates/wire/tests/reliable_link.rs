//! Property tests: [`ReliableLink`] over [`FaultyTransport`] restores
//! the paper's §2 channel contract. For *arbitrary* bounded
//! drop/duplicate/delay/corrupt plans — in both directions at once — any
//! message sequence is delivered exactly once and in order, and the
//! link's logical meter charges exactly what a plain [`InMemoryFifo`]
//! run charges (the differential), so reliability stays invisible to the
//! byte accounting the paper's figures are built from.

use eca_relational::{Tuple, Update};
use eca_wire::{
    FaultPlan, FaultyTransport, InMemoryFifo, Message, ReliableLink, TransferMeter, Transport,
    TransportError,
};
use proptest::prelude::*;

type Link = ReliableLink<FaultyTransport<InMemoryFifo>>;

fn notification(n: i64) -> Message {
    Message::UpdateNotification {
        update: Update::insert("r1", Tuple::ints([n, n + 1])),
    }
}

/// Bounded fault plans: each probability at most 0.4 so the channel
/// keeps making progress (retransmission heals it without intervention
/// in almost every round; a wedge is handled by the driver below).
fn plan() -> impl Strategy<Value = FaultPlan> {
    // Probabilities drawn in permille (the vendored proptest has no f64
    // range strategy).
    (
        any::<u64>(),
        0u32..400,
        0u32..400,
        0u32..400,
        1u64..6,
        0u32..400,
    )
        .prop_map(
            |(seed, drop, duplicate, delay, delay_span, corrupt)| FaultPlan {
                seed,
                drop: f64::from(drop) / 1000.0,
                duplicate: f64::from(duplicate) / 1000.0,
                delay: f64::from(delay) / 1000.0,
                delay_span,
                corrupt: f64::from(corrupt) / 1000.0,
                ..FaultPlan::none()
            },
        )
}

/// Drain every released message; reports whether the link is wedged
/// (retry cap exceeded — surfaces as [`TransportError::Timeout`]).
fn pump(link: &mut Link, out: &mut Vec<Message>) -> bool {
    loop {
        match link.try_recv() {
            Ok(Some(m)) => out.push(m),
            Ok(None) => return false,
            Err(TransportError::Timeout) => return true,
            Err(e) => panic!("unexpected transport error: {e}"),
        }
    }
}

/// Heal a wedged channel the way the warehouse recovery policy does:
/// swap in a clean connection; session state survives, so everything
/// unacked is retransmitted and delivery stays exactly-once.
fn rewire(src: &mut Link, wh: &mut Link, raw: &TransferMeter) {
    let (src_end, wh_end) = InMemoryFifo::pair(raw.clone());
    src.reconnect(FaultyTransport::new(src_end, FaultPlan::none()));
    wh.reconnect(FaultyTransport::new(wh_end, FaultPlan::none()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly-once, in-order, both directions, plus the meter
    /// differential against a plain in-memory run of the same sends.
    #[test]
    fn reliable_link_is_exactly_once_in_order_under_arbitrary_plans(
        s2w in plan(),
        w2s in plan(),
        n_up in 1usize..16,
        n_down in 0usize..8,
    ) {
        let raw = TransferMeter::new();
        let logical = TransferMeter::new();
        let (src_end, wh_end) = InMemoryFifo::pair(raw.clone());
        let mut src: Link = ReliableLink::new(FaultyTransport::new(src_end, s2w), logical.clone());
        let mut wh: Link = ReliableLink::new(FaultyTransport::new(wh_end, w2s), logical.clone());

        let up: Vec<Message> = (0..n_up as i64).map(notification).collect();
        let down: Vec<Message> = (1000..1000 + n_down as i64).map(notification).collect();
        for m in &up {
            src.send(m).unwrap();
        }
        for m in &down {
            wh.send(m).unwrap();
        }

        let mut got_up = Vec::new();
        let mut got_down = Vec::new();
        let mut ticks = 0u32;
        loop {
            ticks += 1;
            prop_assert!(ticks < 500_000, "channel never settled");
            let wh_wedged = pump(&mut wh, &mut got_up);
            let src_wedged = pump(&mut src, &mut got_down);
            if wh_wedged || src_wedged {
                rewire(&mut src, &mut wh, &raw);
                continue;
            }
            // Settled = every frame acked and released in order; a copy
            // still held back by a delay fault can only be a redundant
            // duplicate or ack by then.
            if src.is_settled() && wh.is_settled() && !src.has_inbound() && !wh.has_inbound() {
                break;
            }
        }
        prop_assert_eq!(&got_up, &up, "s2w: exactly once, in order");
        prop_assert_eq!(&got_down, &down, "w2s: exactly once, in order");

        // Differential: the same sends over a plain in-memory pair must
        // charge the identical meter — the link's frames, acks and
        // retransmissions live on the raw meter only.
        let plain_meter = TransferMeter::new();
        let (mut plain_src, mut plain_wh) = InMemoryFifo::pair(plain_meter.clone());
        for m in &up {
            plain_src.send(m).unwrap();
        }
        for m in &down {
            plain_wh.send(m).unwrap();
        }
        let mut plain_up = Vec::new();
        while let Some(m) = plain_wh.recv().unwrap() {
            plain_up.push(m);
        }
        let mut plain_down = Vec::new();
        while let Some(m) = plain_src.recv().unwrap() {
            plain_down.push(m);
        }
        prop_assert_eq!(got_up, plain_up, "same releases as the plain run");
        prop_assert_eq!(got_down, plain_down);
        prop_assert_eq!(logical.messages_s2w(), plain_meter.messages_s2w());
        prop_assert_eq!(logical.bytes_s2w(), plain_meter.bytes_s2w());
        prop_assert_eq!(logical.messages_w2s(), plain_meter.messages_w2s());
        prop_assert_eq!(logical.bytes_w2s(), plain_meter.bytes_w2s());
        // Faults never inflate the logical ledger, only the raw one.
        prop_assert!(raw.bytes_s2w() + raw.bytes_w2s() >= logical.bytes_s2w() + logical.bytes_w2s());
    }

    /// Interleaved send/receive (not batch-then-drain): ordering holds
    /// even when new sends race retransmissions of earlier frames.
    #[test]
    fn interleaved_sends_stay_ordered(
        s2w in plan(),
        n in 2usize..12,
        stride in 1usize..5,
    ) {
        let raw = TransferMeter::new();
        let logical = TransferMeter::new();
        let (src_end, wh_end) = InMemoryFifo::pair(raw.clone());
        let mut src: Link =
            ReliableLink::new(FaultyTransport::new(src_end, s2w), logical.clone());
        let mut wh: Link =
            ReliableLink::new(FaultyTransport::new(wh_end, FaultPlan::none()), logical.clone());

        let msgs: Vec<Message> = (0..n as i64).map(notification).collect();
        let mut got = Vec::new();
        let mut ticks = 0u32;
        for chunk in msgs.chunks(stride) {
            for m in chunk {
                src.send(m).unwrap();
            }
            // A few service passes between bursts so retransmissions of
            // older frames interleave with fresh traffic.
            for _ in 0..3 {
                prop_assert!(!pump(&mut wh, &mut got), "receiver cannot wedge");
                let _ = src.try_recv();
            }
        }
        loop {
            ticks += 1;
            prop_assert!(ticks < 500_000, "channel never settled");
            if pump(&mut wh, &mut got) | pump(&mut src, &mut Vec::new()) {
                rewire(&mut src, &mut wh, &raw);
                continue;
            }
            if src.is_settled() && wh.is_settled() && !wh.has_inbound() {
                break;
            }
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(logical.messages_s2w(), n as u64);
    }
}
