//! Per-direction transfer accounting (paper §6.1–6.2's `M` and `B`).

use std::cell::Cell;
use std::rc::Rc;

/// Transfer direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Source → warehouse (update notifications, answers). The paper's
    /// `B` metric counts bytes in this direction only.
    SourceToWarehouse,
    /// Warehouse → source (queries).
    WarehouseToSource,
}

#[derive(Default, Debug)]
struct Counters {
    messages_s2w: Cell<u64>,
    bytes_s2w: Cell<u64>,
    messages_w2s: Cell<u64>,
    bytes_w2s: Cell<u64>,
    /// Answer payload bytes only — the paper excludes update-notification
    /// traffic from `B` because it is identical across algorithms (§6).
    answer_bytes: Cell<u64>,
    answer_payload_tuples: Cell<u64>,
}

/// Shared message/byte counters. Clones observe the same totals.
#[derive(Clone, Default, Debug)]
pub struct TransferMeter {
    counters: Rc<Counters>,
}

impl TransferMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        TransferMeter::default()
    }

    /// Record a message of `bytes` length in `direction`.
    pub fn record(&self, direction: Direction, bytes: u64) {
        match direction {
            Direction::SourceToWarehouse => {
                self.counters
                    .messages_s2w
                    .set(self.counters.messages_s2w.get() + 1);
                self.counters
                    .bytes_s2w
                    .set(self.counters.bytes_s2w.get() + bytes);
            }
            Direction::WarehouseToSource => {
                self.counters
                    .messages_w2s
                    .set(self.counters.messages_w2s.get() + 1);
                self.counters
                    .bytes_w2s
                    .set(self.counters.bytes_w2s.get() + bytes);
            }
        }
    }

    /// Record an answer's payload separately (the paper's `B`), with the
    /// number of result tuples for the `S·tuples` accounting.
    pub fn record_answer_payload(&self, bytes: u64, tuples: u64) {
        self.counters
            .answer_bytes
            .set(self.counters.answer_bytes.get() + bytes);
        self.counters
            .answer_payload_tuples
            .set(self.counters.answer_payload_tuples.get() + tuples);
    }

    /// Messages sent source → warehouse.
    pub fn messages_s2w(&self) -> u64 {
        self.counters.messages_s2w.get()
    }

    /// Messages sent warehouse → source.
    pub fn messages_w2s(&self) -> u64 {
        self.counters.messages_w2s.get()
    }

    /// Total messages both directions, excluding update notifications if
    /// `notifications` is supplied (the paper's `M` excludes them since
    /// they are identical across algorithms).
    pub fn total_messages_excluding(&self, notifications: u64) -> u64 {
        self.messages_s2w() + self.messages_w2s() - notifications
    }

    /// Bytes sent source → warehouse.
    pub fn bytes_s2w(&self) -> u64 {
        self.counters.bytes_s2w.get()
    }

    /// Bytes sent warehouse → source.
    pub fn bytes_w2s(&self) -> u64 {
        self.counters.bytes_w2s.get()
    }

    /// Answer payload bytes (the paper's `B`).
    pub fn answer_bytes(&self) -> u64 {
        self.counters.answer_bytes.get()
    }

    /// Answer payload tuples (for `B = S × tuples` comparisons).
    pub fn answer_tuples(&self) -> u64 {
        self.counters.answer_payload_tuples.get()
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.counters.messages_s2w.set(0);
        self.counters.bytes_s2w.set(0);
        self.counters.messages_w2s.set(0);
        self.counters.bytes_w2s.set(0);
        self.counters.answer_bytes.set(0);
        self.counters.answer_payload_tuples.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_tracked_independently() {
        let m = TransferMeter::new();
        m.record(Direction::SourceToWarehouse, 10);
        m.record(Direction::SourceToWarehouse, 5);
        m.record(Direction::WarehouseToSource, 100);
        assert_eq!(m.messages_s2w(), 2);
        assert_eq!(m.bytes_s2w(), 15);
        assert_eq!(m.messages_w2s(), 1);
        assert_eq!(m.bytes_w2s(), 100);
    }

    #[test]
    fn answer_payload_accounting() {
        let m = TransferMeter::new();
        m.record_answer_payload(40, 10);
        assert_eq!(m.answer_bytes(), 40);
        assert_eq!(m.answer_tuples(), 10);
    }

    #[test]
    fn clones_share_and_reset_clears() {
        let a = TransferMeter::new();
        let b = a.clone();
        a.record(Direction::SourceToWarehouse, 1);
        assert_eq!(b.messages_s2w(), 1);
        assert_eq!(b.total_messages_excluding(1), 0);
        b.reset();
        assert_eq!(a.messages_s2w(), 0);
    }
}
