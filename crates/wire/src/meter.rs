//! Per-direction transfer accounting (paper §6.1–6.2's `M` and `B`).
//!
//! Counters are atomic so one meter can be shared across the threads a
//! [`TcpTransport`](crate::TcpTransport) deployment involves; relaxed
//! ordering suffices because each counter is an independent total.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Transfer direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Source → warehouse (update notifications, answers). The paper's
    /// `B` metric counts bytes in this direction only.
    SourceToWarehouse,
    /// Warehouse → source (queries).
    WarehouseToSource,
}

#[derive(Default, Debug)]
struct Counters {
    messages_s2w: AtomicU64,
    bytes_s2w: AtomicU64,
    messages_w2s: AtomicU64,
    bytes_w2s: AtomicU64,
    /// Answer payload bytes only — the paper excludes update-notification
    /// traffic from `B` because it is identical across algorithms (§6).
    answer_bytes: AtomicU64,
    answer_payload_tuples: AtomicU64,
}

/// Shared message/byte counters. Clones observe the same totals.
#[derive(Clone, Default, Debug)]
pub struct TransferMeter {
    counters: Arc<Counters>,
}

impl TransferMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        TransferMeter::default()
    }

    /// Record a message of `bytes` length in `direction`.
    pub fn record(&self, direction: Direction, bytes: u64) {
        match direction {
            Direction::SourceToWarehouse => {
                self.counters.messages_s2w.fetch_add(1, Ordering::Relaxed);
                self.counters.bytes_s2w.fetch_add(bytes, Ordering::Relaxed);
            }
            Direction::WarehouseToSource => {
                self.counters.messages_w2s.fetch_add(1, Ordering::Relaxed);
                self.counters.bytes_w2s.fetch_add(bytes, Ordering::Relaxed);
            }
        }
    }

    /// Record an answer's payload separately (the paper's `B`), with the
    /// number of result tuples for the `S·tuples` accounting.
    pub fn record_answer_payload(&self, bytes: u64, tuples: u64) {
        self.counters
            .answer_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        self.counters
            .answer_payload_tuples
            .fetch_add(tuples, Ordering::Relaxed);
    }

    /// Messages sent source → warehouse.
    pub fn messages_s2w(&self) -> u64 {
        self.counters.messages_s2w.load(Ordering::Relaxed)
    }

    /// Messages sent warehouse → source.
    pub fn messages_w2s(&self) -> u64 {
        self.counters.messages_w2s.load(Ordering::Relaxed)
    }

    /// Total messages both directions, excluding update notifications if
    /// `notifications` is supplied (the paper's `M` excludes them since
    /// they are identical across algorithms).
    pub fn total_messages_excluding(&self, notifications: u64) -> u64 {
        self.messages_s2w() + self.messages_w2s() - notifications
    }

    /// Bytes sent source → warehouse.
    pub fn bytes_s2w(&self) -> u64 {
        self.counters.bytes_s2w.load(Ordering::Relaxed)
    }

    /// Bytes sent warehouse → source.
    pub fn bytes_w2s(&self) -> u64 {
        self.counters.bytes_w2s.load(Ordering::Relaxed)
    }

    /// Answer payload bytes (the paper's `B`).
    pub fn answer_bytes(&self) -> u64 {
        self.counters.answer_bytes.load(Ordering::Relaxed)
    }

    /// Answer payload tuples (for `B = S × tuples` comparisons).
    pub fn answer_tuples(&self) -> u64 {
        self.counters.answer_payload_tuples.load(Ordering::Relaxed)
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.counters.messages_s2w.store(0, Ordering::Relaxed);
        self.counters.bytes_s2w.store(0, Ordering::Relaxed);
        self.counters.messages_w2s.store(0, Ordering::Relaxed);
        self.counters.bytes_w2s.store(0, Ordering::Relaxed);
        self.counters.answer_bytes.store(0, Ordering::Relaxed);
        self.counters
            .answer_payload_tuples
            .store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_tracked_independently() {
        let m = TransferMeter::new();
        m.record(Direction::SourceToWarehouse, 10);
        m.record(Direction::SourceToWarehouse, 5);
        m.record(Direction::WarehouseToSource, 100);
        assert_eq!(m.messages_s2w(), 2);
        assert_eq!(m.bytes_s2w(), 15);
        assert_eq!(m.messages_w2s(), 1);
        assert_eq!(m.bytes_w2s(), 100);
    }

    #[test]
    fn answer_payload_accounting() {
        let m = TransferMeter::new();
        m.record_answer_payload(40, 10);
        assert_eq!(m.answer_bytes(), 40);
        assert_eq!(m.answer_tuples(), 10);
    }

    #[test]
    fn clones_share_and_reset_clears() {
        let a = TransferMeter::new();
        let b = a.clone();
        a.record(Direction::SourceToWarehouse, 1);
        assert_eq!(b.messages_s2w(), 1);
        assert_eq!(b.total_messages_excluding(1), 0);
        b.reset();
        assert_eq!(a.messages_s2w(), 0);
    }
}
