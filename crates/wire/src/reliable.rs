//! Reliable-delivery session layer restoring the paper's §2 channel
//! assumptions.
//!
//! §2 assumes messages between source and warehouse are delivered
//! reliably, in FIFO order, exactly once. [`ReliableLink`] enforces that
//! contract over an arbitrary (possibly faulty) [`Transport`]:
//!
//! * every application message travels inside a [`Message::Frame`] with a
//!   monotonic sequence number and an FNV-1a payload checksum,
//! * the receiver buffers out-of-order frames, discards duplicates and
//!   checksum failures, and releases messages strictly in sequence,
//! * the receiver returns cumulative [`Message::Ack`]s; unacknowledged
//!   frames are retransmitted after a virtual-clock timeout with capped
//!   exponential backoff,
//! * an epoch tag (managed by the warehouse session layer) travels on
//!   every frame so both ends agree which session generation is live.
//!
//! The virtual clock advances by one tick per service pass (every
//! `try_recv`/`has_inbound`/`poll`), so retransmission behaves
//! deterministically under a deterministic scheduler — no wall-clock
//! dependence in the simulator.
//!
//! ## Metering
//!
//! The link owns the *logical* meter: each unique application message is
//! charged once at `send`, exactly as the plain in-memory pair charges,
//! so a fault-free run through `ReliableLink` reports byte/message totals
//! identical to a run without it. Frame envelopes, acks and
//! retransmissions are charged only to the decorated transport's own
//! (raw) meter; the difference between the two is the reliability
//! overhead.

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use crate::message::Message;
use crate::meter::TransferMeter;
use crate::transport::{Readiness, Role, Transport, TransportError};

/// FNV-1a over `bytes`: the frame payload checksum.
pub fn fnv1a_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Tuning for the retransmission machinery (virtual-clock ticks).
#[derive(Clone, Copy, Debug)]
pub struct ReliableConfig {
    /// Ticks before the first retransmission of an unacked frame.
    pub base_timeout: u64,
    /// Cap on the backoff shift: the timeout is
    /// `base_timeout << min(retries, max_backoff_exp)`.
    pub max_backoff_exp: u32,
    /// Consecutive retransmission rounds without ack progress before the
    /// link declares itself wedged.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            base_timeout: 32,
            max_backoff_exp: 4,
            max_retries: 12,
        }
    }
}

/// Counters describing what the link absorbed on behalf of the
/// application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames retransmitted after a timeout.
    pub retransmits: u64,
    /// Inbound frames discarded as duplicates.
    pub duplicates_dropped: u64,
    /// Inbound frames discarded on checksum mismatch.
    pub corrupt_dropped: u64,
    /// Cumulative acks sent.
    pub acks_sent: u64,
    /// Times a higher epoch was adopted from the peer.
    pub epoch_adoptions: u64,
}

/// One endpoint of a reliable session over an unreliable transport.
///
/// Implements [`Transport`], so it drops into any place a plain
/// transport is used. Like [`crate::InMemoryFifo`], `recv` does not
/// block when the decorated transport does not: its `Ok(None)` means "no
/// message released right now"; use [`Transport::recv_timeout`] for a
/// bounded blocking wait over blocking transports.
pub struct ReliableLink<T: Transport> {
    inner: T,
    role: Role,
    /// The logical meter: unique application messages only.
    meter: TransferMeter,
    config: ReliableConfig,
    epoch: u64,
    /// Virtual clock: ticks once per service pass.
    now: u64,
    next_send_seq: u64,
    /// Sent but unacknowledged: seq → encoded application payload.
    unacked: BTreeMap<u64, Bytes>,
    /// When to retransmit next, on the virtual clock.
    retransmit_at: Option<u64>,
    /// Retransmission rounds since the last ack progress.
    retries: u32,
    /// Retransmission cap exceeded; the channel needs intervention.
    wedged: bool,
    next_recv_seq: u64,
    /// Out-of-order frames held until the gap fills: seq → payload.
    reorder: BTreeMap<u64, Bytes>,
    /// In-order application messages awaiting the caller.
    ready: VecDeque<Message>,
    stats: LinkStats,
    /// A service-pass error awaiting the next `try_recv`.
    fault: Option<TransportError>,
}

impl<T: Transport> ReliableLink<T> {
    /// Wrap `inner`, charging unique application messages to `meter`.
    ///
    /// `meter` follows the in-memory pair's convention: charged once per
    /// message at (logical) send time, shared by both endpoints of a
    /// simulated channel.
    pub fn new(inner: T, meter: TransferMeter) -> Self {
        ReliableLink::with_config(inner, meter, ReliableConfig::default())
    }

    /// Wrap `inner` with explicit retransmission tuning.
    pub fn with_config(inner: T, meter: TransferMeter, config: ReliableConfig) -> Self {
        let role = inner.role();
        ReliableLink {
            inner,
            role,
            meter,
            config,
            epoch: 0,
            now: 0,
            next_send_seq: 0,
            unacked: BTreeMap::new(),
            retransmit_at: None,
            retries: 0,
            wedged: false,
            next_recv_seq: 0,
            reorder: BTreeMap::new(),
            ready: VecDeque::new(),
            stats: LinkStats::default(),
            fault: None,
        }
    }

    /// The session epoch currently stamped on outbound frames.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Raise the epoch (the peer adopts it from the next frame or
    /// [`Message::Hello`]). Lowering is ignored.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Announce the current epoch to the peer immediately.
    pub fn announce_epoch(&mut self) {
        let epoch = self.epoch;
        let _ = self.inner.send(&Message::Hello { epoch });
    }

    /// Frames sent but not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// The encoded application payloads currently unacknowledged, oldest
    /// first — what would be lost if this endpoint's state disappeared.
    pub fn unacked_payloads(&self) -> Vec<Bytes> {
        self.unacked.values().cloned().collect()
    }

    /// Whether nothing is in flight or buffered out of order.
    pub fn is_settled(&self) -> bool {
        self.unacked.is_empty() && self.reorder.is_empty()
    }

    /// Whether the retransmission cap was exceeded with no ack progress:
    /// the channel is unusable until [`ReliableLink::reconnect`] (or
    /// worse, [`ReliableLink::restart`]).
    pub fn wedged(&self) -> bool {
        self.wedged
    }

    /// Link-level counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// The virtual clock.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The decorated transport's meter (envelope + retransmission
    /// traffic: the raw side of the overhead accounting).
    pub fn raw_meter(&self) -> &TransferMeter {
        self.inner.meter()
    }

    /// The decorated transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Swap in a fresh transport after a *connection* failure. Session
    /// state — sequence numbers, unacked frames, the reorder buffer —
    /// survives, so delivery stays exactly-once: everything unacked is
    /// retransmitted immediately on the new connection.
    pub fn reconnect(&mut self, inner: T) {
        self.inner = inner;
        self.wedged = false;
        self.retries = 0;
        self.fault = None;
        self.retransmit_at = if self.unacked.is_empty() {
            None
        } else {
            Some(self.now) // due now: flush on the next service pass
        };
    }

    /// Replace the transport after this endpoint's *session state was
    /// lost* (peer crash/restart semantics): sequence numbers restart
    /// from zero and unacked frames are discarded — an unfillable gap
    /// that retransmission cannot heal, so the caller must run recovery
    /// (the warehouse's RV resync) for anything that was in flight.
    /// Messages already released in order (`ready`) are kept — right
    /// for a surviving endpoint whose *peer* restarted. When this
    /// endpoint itself is the crashed process, follow with
    /// [`clear_ready`](Self::clear_ready): its undelivered inbox died
    /// with it.
    pub fn restart(&mut self, inner: T, epoch: u64) {
        self.inner = inner;
        self.epoch = self.epoch.max(epoch);
        self.next_send_seq = 0;
        self.unacked.clear();
        self.retransmit_at = None;
        self.retries = 0;
        self.wedged = false;
        self.next_recv_seq = 0;
        self.reorder.clear();
        self.fault = None;
    }

    /// Drop every received-but-unconsumed message. A crashed process
    /// loses its in-memory inbox even for frames it already
    /// acknowledged; whatever mattered must be re-covered by recovery
    /// (WAL replay, watermark re-sends, or a full resync) — exactly as
    /// on a real host.
    pub fn clear_ready(&mut self) {
        self.ready.clear();
    }

    /// One service pass: tick the virtual clock, fire retransmissions
    /// that are due, and drain the decorated transport. Errors are
    /// stashed for the next `try_recv`.
    fn service(&mut self) {
        if self.fault.is_some() {
            return;
        }
        self.now += 1;
        self.maybe_retransmit();
        loop {
            match self.inner.try_recv() {
                Ok(Some(msg)) => {
                    if let Err(e) = self.on_inner(msg) {
                        self.fault = Some(e);
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.fault = Some(e);
                    return;
                }
            }
        }
    }

    fn maybe_retransmit(&mut self) {
        if self.wedged || self.unacked.is_empty() {
            return;
        }
        let due = match self.retransmit_at {
            Some(at) => self.now >= at,
            None => {
                // Can only happen transiently (e.g. right after a
                // reconnect scheduled the flush); treat as due.
                true
            }
        };
        if !due {
            return;
        }
        self.retries += 1;
        if self.retries > self.config.max_retries {
            self.wedged = true;
            return;
        }
        let epoch = self.epoch;
        let frames: Vec<(u64, Bytes)> = self
            .unacked
            .iter()
            .map(|(&seq, payload)| (seq, payload.clone()))
            .collect();
        for (seq, payload) in frames {
            let frame = Message::Frame {
                epoch,
                seq,
                checksum: fnv1a_checksum(&payload),
                payload,
            };
            // Send failures here are the fault being healed; the next
            // round (or a reconnect) retries.
            let _ = self.inner.send(&frame);
            self.stats.retransmits += 1;
        }
        let shift = self.retries.min(self.config.max_backoff_exp);
        self.retransmit_at = Some(self.now + (self.config.base_timeout << shift));
    }

    fn adopt_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.stats.epoch_adoptions += 1;
        }
    }

    fn send_ack(&mut self) {
        let ack = Message::Ack {
            epoch: self.epoch,
            next: self.next_recv_seq,
        };
        let _ = self.inner.send(&ack);
        self.stats.acks_sent += 1;
    }

    fn on_inner(&mut self, msg: Message) -> Result<(), TransportError> {
        match msg {
            Message::Frame {
                epoch,
                seq,
                checksum,
                payload,
            } => {
                self.adopt_epoch(epoch);
                if fnv1a_checksum(&payload) != checksum {
                    // Corrupted in flight: treat as dropped; no ack, so
                    // the sender retransmits the intact original.
                    self.stats.corrupt_dropped += 1;
                    return Ok(());
                }
                if seq < self.next_recv_seq || self.reorder.contains_key(&seq) {
                    self.stats.duplicates_dropped += 1;
                    // Re-ack so a sender that missed the ack stops
                    // retransmitting.
                    self.send_ack();
                    return Ok(());
                }
                self.reorder.insert(seq, payload);
                while let Some(payload) = self.reorder.remove(&self.next_recv_seq) {
                    let msg = Message::decode(payload).map_err(TransportError::Decode)?;
                    self.ready.push_back(msg);
                    self.next_recv_seq += 1;
                }
                self.send_ack();
            }
            Message::Ack { epoch, next } => {
                self.adopt_epoch(epoch);
                let before = self.unacked.len();
                self.unacked = self.unacked.split_off(&next);
                if self.unacked.len() < before {
                    // Ack progress: reset the backoff ladder.
                    self.retries = 0;
                    self.wedged = false;
                    self.retransmit_at = if self.unacked.is_empty() {
                        None
                    } else {
                        Some(self.now + self.config.base_timeout)
                    };
                }
            }
            Message::Hello { epoch } => {
                self.adopt_epoch(epoch);
            }
            // An unwrapped peer sent a bare application message: release
            // it directly, preserving interoperability.
            other => self.ready.push_back(other),
        }
        Ok(())
    }
}

impl<T: Transport> Transport for ReliableLink<T> {
    fn role(&self) -> Role {
        self.role
    }

    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let payload = msg.encode();
        // The logical charge: once per unique application message, at
        // send time, matching the plain in-memory pair.
        self.meter
            .record(self.role.outbound(), payload.len() as u64);
        let seq = self.next_send_seq;
        self.next_send_seq += 1;
        let frame = Message::Frame {
            epoch: self.epoch,
            seq,
            checksum: fnv1a_checksum(&payload),
            payload: payload.clone(),
        };
        self.unacked.insert(seq, payload);
        if self.retransmit_at.is_none() {
            self.retransmit_at = Some(self.now + self.config.base_timeout);
            self.retries = 0;
        }
        // A failed first transmission is indistinguishable from an
        // in-flight drop: the frame stays buffered and the timeout (or a
        // reconnect) retransmits it.
        let _ = self.inner.send(&frame);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        self.service();
        if let Some(msg) = self.ready.pop_front() {
            return Ok(Some(msg));
        }
        if let Some(fault) = self.fault.take() {
            return Err(fault);
        }
        if self.wedged {
            return Err(TransportError::Timeout);
        }
        Ok(None)
    }

    fn recv(&mut self) -> Result<Option<Message>, TransportError> {
        // Non-blocking, like the in-memory pair: deterministic drivers
        // schedule delivery themselves; blocking callers use
        // `recv_timeout`.
        self.try_recv()
    }

    fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.try_recv() {
                Ok(Some(msg)) => return Ok(Some(msg)),
                Ok(None) => {}
                Err(e) => return Err(e),
            }
            if self.inner.poll()? == Readiness::Closed && self.is_settled() {
                return Ok(None);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            let slice = std::time::Duration::from_millis(1).min(deadline - now);
            match self.inner.recv_timeout(slice) {
                Ok(Some(msg)) => self.on_inner(msg)?,
                Ok(None) => {
                    if self.is_settled() && self.ready.is_empty() {
                        return Ok(None);
                    }
                }
                Err(TransportError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn drain_into(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        // One service pass batch-drains the inner transport (acking,
        // deduplicating and reordering into `ready`), then the in-order
        // prefix is handed out wholesale. Fault/wedged surfacing only
        // when nothing was taken, mirroring `try_recv`'s priorities per
        // drained message.
        self.service();
        let take = self.ready.len().min(max);
        out.extend(self.ready.drain(..take));
        if take == 0 {
            if let Some(fault) = self.fault.take() {
                return Err(fault);
            }
            if self.wedged {
                return Err(TransportError::Timeout);
            }
        }
        Ok(take)
    }

    fn has_inbound(&mut self) -> bool {
        self.service();
        !self.ready.is_empty()
    }

    fn poll(&mut self) -> Result<Readiness, TransportError> {
        self.service();
        if !self.ready.is_empty() {
            return Ok(Readiness::Ready);
        }
        if let Some(fault) = self.fault.take() {
            return Err(fault);
        }
        self.inner.poll()
    }

    // A wake-up means raw frames arrived; the re-poll runs `service()`,
    // which acks/filters them into app-level readiness. Retransmission
    // timers still rely on the caller's bounded waits.
    fn set_waker(&mut self, waker: std::sync::Arc<crate::transport::PollWaker>) -> bool {
        self.inner.set_waker(waker)
    }

    fn meter(&self) -> &TransferMeter {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, FaultyTransport};
    use crate::transport::InMemoryFifo;
    use eca_relational::{Tuple, Update};

    fn notification(n: i64) -> Message {
        Message::UpdateNotification {
            update: Update::insert("r1", Tuple::ints([n, n + 1])),
        }
    }

    type SimLink = ReliableLink<FaultyTransport<InMemoryFifo>>;

    /// A connected pair of reliable links over faulty transports sharing
    /// a logical meter (`src_plan` perturbs source→warehouse traffic,
    /// `wh_plan` the reverse direction).
    fn linked(src_plan: FaultPlan, wh_plan: FaultPlan) -> (SimLink, SimLink, TransferMeter) {
        let raw = TransferMeter::new();
        let logical = TransferMeter::new();
        let (src_end, wh_end) = InMemoryFifo::pair(raw);
        let src = ReliableLink::new(FaultyTransport::new(src_end, src_plan), logical.clone());
        let wh = ReliableLink::new(FaultyTransport::new(wh_end, wh_plan), logical.clone());
        (src, wh, logical)
    }

    /// Drive both ends until settled (or the tick budget runs out),
    /// collecting messages released at the warehouse end.
    fn drive(src: &mut SimLink, wh: &mut SimLink, budget: u32) -> Vec<Message> {
        let mut out = Vec::new();
        for _ in 0..budget {
            while let Some(m) = wh.try_recv().unwrap() {
                out.push(m);
            }
            let _ = src.try_recv().unwrap();
            if src.is_settled() && wh.is_settled() && !wh.has_inbound() {
                break;
            }
        }
        while let Some(m) = wh.try_recv().unwrap() {
            out.push(m);
        }
        out
    }

    #[test]
    fn clean_channel_delivers_in_order_and_settles() {
        let (mut src, mut wh, logical) = linked(FaultPlan::none(), FaultPlan::none());
        let msgs: Vec<Message> = (0..6).map(notification).collect();
        for m in &msgs {
            src.send(m).unwrap();
        }
        assert_eq!(drive(&mut src, &mut wh, 100), msgs);
        assert!(src.is_settled());
        assert_eq!(src.stats().retransmits, 0);
        // Logical metering matches a plain pair: 6 s2w messages.
        assert_eq!(logical.messages_s2w(), 6);
        assert_eq!(
            logical.bytes_s2w(),
            msgs.iter().map(|m| m.encoded_len() as u64).sum::<u64>()
        );
        // Acks flowed on the raw channel only.
        assert_eq!(logical.messages_w2s(), 0);
        assert!(src.raw_meter().messages_w2s() > 0);
    }

    /// A batch drain through the session layer must equal N sequential
    /// `try_recv`s — same released messages, same logical and raw meter
    /// totals, same dedup bookkeeping — even when the wire duplicated
    /// frames. The reactor's batched receive path may not change
    /// exactly-once semantics.
    #[test]
    fn batch_drain_matches_sequential_try_recv_under_duplicates() {
        let plan = || {
            FaultPlan::none()
                .with_scripted(1, FaultKind::Duplicate)
                .with_scripted(4, FaultKind::Duplicate)
        };
        let run = |batch: bool| {
            let (mut src, mut wh, logical) = linked(plan(), FaultPlan::none());
            let msgs: Vec<Message> = (0..6).map(notification).collect();
            for m in &msgs {
                src.send(m).unwrap();
            }
            let mut out = Vec::new();
            if batch {
                while wh.drain_into(&mut out, usize::MAX).unwrap() > 0 {}
            } else {
                while let Some(m) = wh.try_recv().unwrap() {
                    out.push(m);
                }
            }
            assert_eq!(out, msgs);
            (
                out,
                logical,
                wh.raw_meter().clone(),
                wh.stats().duplicates_dropped,
            )
        };
        let (seq_msgs, seq_logical, seq_raw, seq_dups) = run(false);
        let (batch_msgs, batch_logical, batch_raw, batch_dups) = run(true);
        assert_eq!(seq_msgs, batch_msgs);
        assert_eq!(seq_dups, batch_dups);
        assert_eq!(seq_dups, 2, "both scripted duplicates were absorbed");
        assert_eq!(seq_logical.messages_s2w(), batch_logical.messages_s2w());
        assert_eq!(seq_logical.bytes_s2w(), batch_logical.bytes_s2w());
        assert_eq!(seq_raw.messages_s2w(), batch_raw.messages_s2w());
        assert_eq!(seq_raw.messages_w2s(), batch_raw.messages_w2s());
    }

    /// `drain_into` honours `max` through the session layer; the
    /// in-order remainder stays queued.
    #[test]
    fn reliable_drain_respects_max() {
        let (mut src, mut wh, _) = linked(FaultPlan::none(), FaultPlan::none());
        for n in 0..5 {
            src.send(&notification(n)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(wh.drain_into(&mut out, 2).unwrap(), 2);
        assert_eq!(out, vec![notification(0), notification(1)]);
        let mut rest = Vec::new();
        while let Some(m) = wh.try_recv().unwrap() {
            rest.push(m);
        }
        assert_eq!(rest, (2..5).map(notification).collect::<Vec<_>>());
    }

    #[test]
    fn drops_are_healed_by_retransmission() {
        let (mut src, mut wh, _) = linked(FaultPlan::drops(3, 0.4), FaultPlan::none());
        let msgs: Vec<Message> = (0..20).map(notification).collect();
        for m in &msgs {
            src.send(m).unwrap();
        }
        assert_eq!(drive(&mut src, &mut wh, 50_000), msgs);
        assert!(src.is_settled(), "all frames eventually acked");
    }

    #[test]
    fn duplicates_and_reorders_are_absorbed() {
        let plan = FaultPlan {
            duplicate: 0.3,
            delay: 0.3,
            delay_span: 5,
            ..FaultPlan::none()
        };
        let (mut src, mut wh, _) = linked(FaultPlan { seed: 9, ..plan }, FaultPlan::none());
        let msgs: Vec<Message> = (0..20).map(notification).collect();
        for m in &msgs {
            src.send(m).unwrap();
        }
        assert_eq!(drive(&mut src, &mut wh, 50_000), msgs);
        let stats = wh.stats();
        assert!(stats.duplicates_dropped > 0, "plan injected duplicates");
    }

    #[test]
    fn corruption_is_detected_and_healed() {
        let plan = FaultPlan::none().with_scripted(1, FaultKind::Corrupt);
        let (mut src, mut wh, _) = linked(plan, FaultPlan::none());
        let msgs: Vec<Message> = (0..4).map(notification).collect();
        for m in &msgs {
            src.send(m).unwrap();
        }
        assert_eq!(drive(&mut src, &mut wh, 50_000), msgs);
        assert_eq!(wh.stats().corrupt_dropped, 1);
        assert!(src.stats().retransmits > 0, "the intact frame was resent");
    }

    #[test]
    fn ack_loss_triggers_retransmit_and_receiver_dedup() {
        // Drop every early ack (warehouse→source traffic).
        let wh_plan = FaultPlan::none()
            .with_scripted(0, FaultKind::Drop)
            .with_scripted(1, FaultKind::Drop);
        let (mut src, mut wh, logical) = linked(FaultPlan::none(), wh_plan);
        src.send(&notification(1)).unwrap();
        let got = drive(&mut src, &mut wh, 50_000);
        assert_eq!(got, vec![notification(1)]);
        assert!(src.is_settled(), "a later ack finally lands");
        assert!(wh.stats().duplicates_dropped > 0);
        // The logical meter saw exactly one message despite retransmits.
        assert_eq!(logical.messages_s2w(), 1);
    }

    #[test]
    fn total_loss_wedges_then_reconnect_heals() {
        let (mut src, mut wh, _) = linked(FaultPlan::drops(0, 1.0), FaultPlan::none());
        src.send(&notification(5)).unwrap();
        // Drive until the retry cap trips.
        let mut wedged_err = false;
        for _ in 0..200_000 {
            match src.try_recv() {
                Ok(_) => {}
                Err(TransportError::Timeout) => {
                    wedged_err = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
            if src.wedged() {
                break;
            }
        }
        assert!(src.wedged() || wedged_err);
        assert_eq!(src.in_flight(), 1, "payload retained while wedged");
        // Rewire over a clean channel: the unacked frame is flushed.
        let raw = TransferMeter::new();
        let (src_end, wh_end) = InMemoryFifo::pair(raw);
        src.reconnect(FaultyTransport::new(src_end, FaultPlan::none()));
        wh.reconnect(FaultyTransport::new(wh_end, FaultPlan::none()));
        assert_eq!(drive(&mut src, &mut wh, 50_000), vec![notification(5)]);
        assert!(src.is_settled());
        assert!(!src.wedged());
    }

    #[test]
    fn restart_loses_unacked_and_restarts_sequences() {
        let (mut src, mut wh, _) = linked(FaultPlan::drops(0, 1.0), FaultPlan::none());
        src.send(&notification(1)).unwrap();
        assert_eq!(src.unacked_payloads().len(), 1);
        // Crash semantics: state gone, fresh channel, epoch bumped.
        let raw = TransferMeter::new();
        let (src_end, wh_end) = InMemoryFifo::pair(raw);
        src.restart(FaultyTransport::new(src_end, FaultPlan::none()), 1);
        wh.restart(FaultyTransport::new(wh_end, FaultPlan::none()), 1);
        assert_eq!(src.in_flight(), 0, "the unacked frame is gone for good");
        // New traffic flows normally under the new epoch.
        src.send(&notification(2)).unwrap();
        assert_eq!(drive(&mut src, &mut wh, 50_000), vec![notification(2)]);
        assert_eq!(wh.epoch(), 1);
    }

    #[test]
    fn epoch_is_adopted_from_frames_and_hello() {
        let (mut src, mut wh, _) = linked(FaultPlan::none(), FaultPlan::none());
        wh.set_epoch(3);
        wh.announce_epoch();
        let _ = src.try_recv().unwrap();
        assert_eq!(src.epoch(), 3, "hello carried the epoch");
        src.send(&notification(1)).unwrap();
        let got = drive(&mut src, &mut wh, 100);
        assert_eq!(got, vec![notification(1)]);
        // And set_epoch never lowers.
        wh.set_epoch(1);
        assert_eq!(wh.epoch(), 3);
    }

    #[test]
    fn bidirectional_traffic_under_mixed_faults() {
        let (mut src, mut wh, _) = linked(FaultPlan::mixed(21, 0.2), FaultPlan::mixed(22, 0.2));
        let up: Vec<Message> = (0..10).map(notification).collect();
        let down: Vec<Message> = (100..110).map(notification).collect();
        for m in &up {
            src.send(m).unwrap();
        }
        for m in &down {
            wh.send(m).unwrap();
        }
        let mut got_wh = Vec::new();
        let mut got_src = Vec::new();
        for _ in 0..100_000 {
            while let Some(m) = wh.try_recv().unwrap() {
                got_wh.push(m);
            }
            while let Some(m) = src.try_recv().unwrap() {
                got_src.push(m);
            }
            if src.is_settled() && wh.is_settled() {
                break;
            }
        }
        assert_eq!(got_wh, up);
        assert_eq!(got_src, down);
    }
}
