//! Deterministic fault injection for chaos testing.
//!
//! The paper's §2 channel assumptions — reliable, in-order, exactly-once
//! delivery between source and warehouse — are exactly the properties a
//! real network violates. [`FaultyTransport`] is a decorator over any
//! [`Transport`] that violates them *on purpose* and *reproducibly*:
//! every fault is drawn from a seeded generator (or scripted at an exact
//! sequence point) according to a [`FaultPlan`], and every injection is
//! recorded in a replayable log. The reliability layer
//! ([`crate::reliable::ReliableLink`]) and the warehouse recovery policy
//! are then tested against precisely-known fault schedules.
//!
//! Faults are applied on the *send* path of the decorated endpoint, so
//! wrapping both endpoints of a channel covers both directions
//! independently.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::message::Message;
use crate::meter::TransferMeter;
use crate::transport::{Readiness, Role, Transport, TransportError};

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The message silently disappears.
    Drop,
    /// The message is delivered twice.
    Duplicate,
    /// The message is held back until `n` later sends have passed it,
    /// reordering the stream.
    Delay(u64),
    /// One payload byte of a [`Message::Frame`] is flipped (detectable by
    /// the frame checksum). Non-frame messages degrade to a drop, since
    /// a corrupted encoding could not be represented as a typed message.
    Corrupt,
    /// The connection dies at this point: the message and everything
    /// still held back are lost, and the endpoint refuses further
    /// traffic until the harness rewires it.
    Reset,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::Duplicate => write!(f, "duplicate"),
            FaultKind::Delay(n) => write!(f, "delay({n})"),
            FaultKind::Corrupt => write!(f, "corrupt"),
            FaultKind::Reset => write!(f, "reset"),
        }
    }
}

/// One entry of the replayable injection log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The send sequence number (counting every message offered to
    /// [`Transport::send`] on this endpoint, starting from the plan
    /// origin) at which the fault fired.
    pub seq: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
///
/// Probabilistic faults are drawn per message from `seed`; scripted
/// faults and reset points fire at exact send sequence numbers and take
/// precedence over the probabilistic draw. The same plan over the same
/// message sequence always injects the same faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-message probabilistic draws.
    pub seed: u64,
    /// Per-message probability of a [`FaultKind::Drop`].
    pub drop: f64,
    /// Per-message probability of a [`FaultKind::Duplicate`].
    pub duplicate: f64,
    /// Per-message probability of a [`FaultKind::Delay`].
    pub delay: f64,
    /// Maximum hold-back span for probabilistic delays (messages).
    pub delay_span: u64,
    /// Per-message probability of a [`FaultKind::Corrupt`].
    pub corrupt: f64,
    /// Faults scripted at exact send sequence numbers.
    pub scripted: Vec<FaultEvent>,
    /// Send sequence numbers at which the connection resets.
    pub reset_points: Vec<u64>,
}

impl FaultPlan {
    /// A plan that never injects anything.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_span: 4,
            corrupt: 0.0,
            scripted: Vec::new(),
            reset_points: Vec::new(),
        }
    }

    /// Drop each message with probability `p`.
    pub fn drops(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            drop: p,
            ..FaultPlan::none()
        }
    }

    /// Duplicate each message with probability `p`.
    pub fn duplicates(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            duplicate: p,
            ..FaultPlan::none()
        }
    }

    /// Hold back (reorder) each message with probability `p`, by up to
    /// `span` later messages.
    pub fn delays(seed: u64, p: f64, span: u64) -> Self {
        FaultPlan {
            seed,
            delay: p,
            delay_span: span.max(1),
            ..FaultPlan::none()
        }
    }

    /// Corrupt each message with probability `p`.
    pub fn corrupts(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            corrupt: p,
            ..FaultPlan::none()
        }
    }

    /// A blend of drops, duplicates, delays and corruption, each with
    /// probability `p`.
    pub fn mixed(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            drop: p,
            duplicate: p,
            delay: p,
            delay_span: 4,
            corrupt: p,
            ..FaultPlan::none()
        }
    }

    /// The same plan with connection resets at the given send sequence
    /// numbers.
    pub fn with_resets(mut self, points: &[u64]) -> Self {
        self.reset_points = points.to_vec();
        self
    }

    /// The same plan with an additional scripted fault.
    pub fn with_scripted(mut self, seq: u64, kind: FaultKind) -> Self {
        self.scripted.push(FaultEvent { seq, kind });
        self
    }

    /// The same schedule re-seeded, for deriving independent per-endpoint
    /// or per-segment streams from one base plan.
    pub fn reseeded(mut self, salt: u64) -> Self {
        self.seed ^= salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self
    }

    /// Whether the plan can ever inject anything.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.delay == 0.0
            && self.corrupt == 0.0
            && self.scripted.is_empty()
            && self.reset_points.is_empty()
    }
}

/// A [`Transport`] decorator injecting faults per a [`FaultPlan`].
///
/// Wraps any transport; the receive path is untouched, so wrapping both
/// endpoints of a pair perturbs the two directions independently and
/// deterministically. After a [`FaultKind::Reset`] fires, the endpoint
/// behaves like a dead connection ([`TransportError::Closed`] on send)
/// until the harness observes [`FaultyTransport::take_reset`] and
/// rewires the channel.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    rng: StdRng,
    seq: u64,
    /// Held-back messages: `(release_at_seq, message)`.
    delayed: Vec<(u64, Message)>,
    log: Vec<FaultEvent>,
    reset_pending: bool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Decorate `inner` with `plan`, counting send sequence numbers from
    /// zero.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport::with_origin(inner, plan, 0)
    }

    /// Decorate `inner` with `plan`, counting send sequence numbers from
    /// `origin` — used when a channel is rewired mid-run so scripted
    /// sequence points keep their original meaning.
    pub fn with_origin(inner: T, plan: FaultPlan, origin: u64) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ origin.wrapping_mul(0x2545_F491_4F6C_DD1D));
        FaultyTransport {
            inner,
            plan,
            rng,
            seq: origin,
            delayed: Vec::new(),
            log: Vec::new(),
            reset_pending: false,
        }
    }

    /// The injection log so far (replayable: a plan and message sequence
    /// fully determine it).
    pub fn injection_log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Drain the injection log.
    pub fn take_log(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.log)
    }

    /// Whether a reset fired since the last call; clears the flag.
    pub fn take_reset(&mut self) -> bool {
        std::mem::take(&mut self.reset_pending)
    }

    /// Messages currently held back by delay faults.
    pub fn held_back(&self) -> usize {
        self.delayed.len()
    }

    /// The next send sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// The decorated transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwrap, discarding any held-back messages.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// The fault decided for send number `seq`, if any. Scripted faults
    /// and reset points win over the probabilistic draw; among the
    /// probabilistic kinds the first hit in a fixed order (drop,
    /// duplicate, delay, corrupt) wins.
    fn decide(&mut self, seq: u64) -> Option<FaultKind> {
        if self.plan.reset_points.contains(&seq) {
            return Some(FaultKind::Reset);
        }
        if let Some(ev) = self.plan.scripted.iter().find(|ev| ev.seq == seq) {
            return Some(ev.kind);
        }
        if self.plan.drop > 0.0 && self.rng.gen_bool(self.plan.drop) {
            return Some(FaultKind::Drop);
        }
        if self.plan.duplicate > 0.0 && self.rng.gen_bool(self.plan.duplicate) {
            return Some(FaultKind::Duplicate);
        }
        if self.plan.delay > 0.0 && self.rng.gen_bool(self.plan.delay) {
            let span = self.rng.gen_range(1..=self.plan.delay_span);
            return Some(FaultKind::Delay(span));
        }
        if self.plan.corrupt > 0.0 && self.rng.gen_bool(self.plan.corrupt) {
            return Some(FaultKind::Corrupt);
        }
        None
    }

    /// Release any held-back messages whose span has elapsed at send
    /// number `seq`, ahead of the message being sent now.
    fn release_due(&mut self, seq: u64) -> Result<(), TransportError> {
        let mut due: Vec<Message> = Vec::new();
        self.delayed.retain(|(release_at, msg)| {
            if *release_at <= seq {
                due.push(msg.clone());
                false
            } else {
                true
            }
        });
        for msg in due {
            self.inner.send(&msg)?;
        }
        Ok(())
    }

    /// Corrupt a frame payload in a checksum-detectable way.
    fn corrupted(&mut self, msg: &Message) -> Option<Message> {
        if let Message::Frame {
            epoch,
            seq,
            checksum,
            payload,
        } = msg
        {
            if !payload.is_empty() {
                let mut bytes = payload.to_vec();
                let idx = self.rng.gen_range(0..bytes.len());
                bytes[idx] ^= 0xa5;
                return Some(Message::Frame {
                    epoch: *epoch,
                    seq: *seq,
                    checksum: *checksum,
                    payload: bytes.into(),
                });
            }
        }
        None
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn role(&self) -> Role {
        self.inner.role()
    }

    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        if self.reset_pending {
            return Err(TransportError::Closed);
        }
        let seq = self.seq;
        self.seq += 1;
        self.release_due(seq)?;
        let Some(kind) = self.decide(seq) else {
            return self.inner.send(msg);
        };
        match kind {
            FaultKind::Reset => {
                self.log.push(FaultEvent {
                    seq,
                    kind: FaultKind::Reset,
                });
                // The message and everything held back die with the
                // connection.
                self.delayed.clear();
                self.reset_pending = true;
                Err(TransportError::Closed)
            }
            FaultKind::Drop => {
                self.log.push(FaultEvent {
                    seq,
                    kind: FaultKind::Drop,
                });
                Ok(())
            }
            FaultKind::Duplicate => {
                self.log.push(FaultEvent {
                    seq,
                    kind: FaultKind::Duplicate,
                });
                self.inner.send(msg)?;
                self.inner.send(msg)
            }
            FaultKind::Delay(span) => {
                self.log.push(FaultEvent {
                    seq,
                    kind: FaultKind::Delay(span),
                });
                self.delayed.push((seq + span, msg.clone()));
                Ok(())
            }
            FaultKind::Corrupt => {
                self.log.push(FaultEvent {
                    seq,
                    kind: FaultKind::Corrupt,
                });
                match self.corrupted(msg) {
                    Some(bad) => self.inner.send(&bad),
                    // Not representable as a corrupted typed message:
                    // degrade to a drop (still logged as Corrupt).
                    None => Ok(()),
                }
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        self.inner.try_recv()
    }

    fn recv(&mut self) -> Result<Option<Message>, TransportError> {
        self.inner.recv()
    }

    fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        self.inner.recv_timeout(timeout)
    }

    // Faults are injected on the *send* path only (the peer's sends are
    // what this endpoint fails to receive), so a batch drain is a plain
    // delegation: the inner transport's one-lock/one-syscall batch with
    // per-message semantics identical to N sequential `try_recv`s.
    fn drain_into(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        self.inner.drain_into(out, max)
    }

    fn has_inbound(&mut self) -> bool {
        self.inner.has_inbound()
    }

    fn poll(&mut self) -> Result<Readiness, TransportError> {
        self.inner.poll()
    }

    // Wake-ups fire on *raw* arrivals; a frame still held in the delay
    // queue reads Idle on the re-poll, which a parked loop treats as a
    // spurious wake-up. Bounded waits make that safe.
    fn set_waker(&mut self, waker: std::sync::Arc<crate::transport::PollWaker>) -> bool {
        self.inner.set_waker(waker)
    }

    fn meter(&self) -> &TransferMeter {
        self.inner.meter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InMemoryFifo;
    use eca_relational::{Tuple, Update};

    fn notification(n: i64) -> Message {
        Message::UpdateNotification {
            update: Update::insert("r1", Tuple::ints([n, n + 1])),
        }
    }

    fn drain(t: &mut impl Transport) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = t.try_recv().unwrap() {
            out.push(m);
        }
        out
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let (src, mut wh) = InMemoryFifo::pair(TransferMeter::new());
        let mut faulty = FaultyTransport::new(src, FaultPlan::none());
        for n in 0..5 {
            faulty.send(&notification(n)).unwrap();
        }
        assert_eq!(drain(&mut wh), (0..5).map(notification).collect::<Vec<_>>());
        assert!(faulty.injection_log().is_empty());
    }

    #[test]
    fn scripted_drop_and_duplicate_fire_at_exact_points() {
        let (src, mut wh) = InMemoryFifo::pair(TransferMeter::new());
        let plan = FaultPlan::none()
            .with_scripted(1, FaultKind::Drop)
            .with_scripted(3, FaultKind::Duplicate);
        let mut faulty = FaultyTransport::new(src, plan);
        for n in 0..5 {
            faulty.send(&notification(n)).unwrap();
        }
        assert_eq!(
            drain(&mut wh),
            vec![
                notification(0),
                notification(2),
                notification(3),
                notification(3),
                notification(4),
            ]
        );
        assert_eq!(
            faulty.injection_log(),
            &[
                FaultEvent {
                    seq: 1,
                    kind: FaultKind::Drop
                },
                FaultEvent {
                    seq: 3,
                    kind: FaultKind::Duplicate
                },
            ]
        );
    }

    /// Batch drains through the decorator must be indistinguishable
    /// from N sequential `try_recv`s: same released messages, same
    /// meter totals — the reactor's batched receive path may not alter
    /// fault semantics.
    #[test]
    fn wrapped_batch_drain_matches_sequential_try_recv() {
        let plan = || {
            FaultPlan::none()
                .with_scripted(1, FaultKind::Drop)
                .with_scripted(3, FaultKind::Duplicate)
        };
        let run = |batch: bool| {
            let meter = TransferMeter::new();
            let (src_end, wh_end) = InMemoryFifo::pair(meter.clone());
            let mut faulty_src = FaultyTransport::new(src_end, plan());
            // The receiving end is wrapped too: its (unused) send-path
            // faults must not perturb the receive path.
            let mut wh = FaultyTransport::new(wh_end, plan());
            for n in 0..6 {
                faulty_src.send(&notification(n)).unwrap();
            }
            let mut out = Vec::new();
            if batch {
                while wh.drain_into(&mut out, usize::MAX).unwrap() > 0 {}
            } else {
                while let Some(m) = wh.try_recv().unwrap() {
                    out.push(m);
                }
            }
            (out, meter)
        };
        let (sequential, seq_meter) = run(false);
        let (batched, batch_meter) = run(true);
        assert_eq!(sequential, batched);
        assert_eq!(seq_meter.messages_s2w(), batch_meter.messages_s2w());
        assert_eq!(seq_meter.bytes_s2w(), batch_meter.bytes_s2w());
    }

    /// `drain_into` honours `max` through the decorator: the remainder
    /// stays queued for later receives.
    #[test]
    fn wrapped_drain_respects_max() {
        let (src, wh_end) = InMemoryFifo::pair(TransferMeter::new());
        let mut faulty_src = FaultyTransport::new(src, FaultPlan::none());
        let mut wh = FaultyTransport::new(wh_end, FaultPlan::none());
        for n in 0..5 {
            faulty_src.send(&notification(n)).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(wh.drain_into(&mut out, 2).unwrap(), 2);
        assert_eq!(out, vec![notification(0), notification(1)]);
        assert_eq!(drain(&mut wh), (2..5).map(notification).collect::<Vec<_>>());
    }

    #[test]
    fn scripted_delay_reorders() {
        let (src, mut wh) = InMemoryFifo::pair(TransferMeter::new());
        let plan = FaultPlan::none().with_scripted(0, FaultKind::Delay(2));
        let mut faulty = FaultyTransport::new(src, plan);
        for n in 0..4 {
            faulty.send(&notification(n)).unwrap();
        }
        // Message 0 is held until send seq 2 has passed.
        assert_eq!(
            drain(&mut wh),
            vec![
                notification(1),
                notification(0),
                notification(2),
                notification(3),
            ]
        );
    }

    #[test]
    fn corrupt_flips_a_frame_payload_byte() {
        let (src, mut wh) = InMemoryFifo::pair(TransferMeter::new());
        let plan = FaultPlan::none().with_scripted(0, FaultKind::Corrupt);
        let mut faulty = FaultyTransport::new(src, plan);
        let payload = notification(1).encode();
        let frame = Message::Frame {
            epoch: 0,
            seq: 0,
            checksum: 7,
            payload: payload.clone(),
        };
        faulty.send(&frame).unwrap();
        let got = drain(&mut wh);
        assert_eq!(got.len(), 1);
        let Message::Frame {
            payload: got_payload,
            checksum,
            ..
        } = &got[0]
        else {
            panic!("expected a frame");
        };
        assert_eq!(*checksum, 7, "checksum travels unmodified");
        assert_ne!(got_payload, &payload, "payload was corrupted");
        assert_eq!(got_payload.len(), payload.len());
    }

    #[test]
    fn reset_kills_the_endpoint_until_observed() {
        let (src, mut wh) = InMemoryFifo::pair(TransferMeter::new());
        let plan = FaultPlan::none().with_resets(&[1]);
        let mut faulty = FaultyTransport::new(src, plan);
        faulty.send(&notification(0)).unwrap();
        assert!(matches!(
            faulty.send(&notification(1)),
            Err(TransportError::Closed)
        ));
        assert!(matches!(
            faulty.send(&notification(2)),
            Err(TransportError::Closed)
        ));
        assert_eq!(drain(&mut wh), vec![notification(0)]);
        assert!(faulty.take_reset());
        assert!(!faulty.take_reset(), "flag clears after observation");
    }

    #[test]
    fn probabilistic_plans_are_replayable() {
        let run = |seed: u64| {
            let (src, mut wh) = InMemoryFifo::pair(TransferMeter::new());
            let mut faulty = FaultyTransport::new(src, FaultPlan::mixed(seed, 0.3));
            for n in 0..50 {
                let _ = faulty.send(&notification(n));
            }
            (faulty.take_log(), drain(&mut wh))
        };
        let (log_a, got_a) = run(11);
        let (log_b, got_b) = run(11);
        let (log_c, _) = run(12);
        assert_eq!(log_a, log_b);
        assert_eq!(got_a, got_b);
        assert!(!log_a.is_empty(), "p=0.3 over 50 sends must inject");
        assert_ne!(log_a, log_c, "different seeds, different schedules");
    }
}
