//! Wire format between source and warehouse.
//!
//! The paper's §6.2 metric `B` counts bytes transferred from the source to
//! the warehouse; §6.1's `M` counts messages in both directions. This
//! crate provides:
//!
//! * [`Message`] — the three message kinds of Figure 1.1 (update
//!   notification, query, answer),
//! * a compact hand-rolled binary codec ([`codec`]) so byte counts are
//!   measured on real encodings rather than estimated,
//! * [`WireQuery`] — a *self-contained* query representation: the source
//!   knows nothing about views (that is the premise of the paper), so
//!   every query carries its own relation list, condition and projection,
//! * [`TransferMeter`] — per-direction message/byte accounting,
//! * [`Transport`] — the channel abstraction of §3 (reliable, FIFO per
//!   direction), with a deterministic in-process pair ([`InMemoryFifo`])
//!   and a framed TCP implementation ([`TcpTransport`]),
//! * [`FaultyTransport`] — a seed-driven decorator that *violates* the §2
//!   channel assumptions on purpose (drops, duplicates, reorders,
//!   corruption, resets) for chaos testing,
//! * [`ReliableLink`] — the session layer that restores exactly-once
//!   FIFO delivery over an arbitrary transport via sequence numbers,
//!   cumulative acks and virtual-clock retransmission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod message;
pub mod meter;
pub mod poller;
pub mod reliable;
pub mod transport;

pub use codec::{DecodeError, Decoder, Encoder};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultyTransport};
pub use message::{Message, ReadLevel, WireQuery, WireTerm};
pub use meter::{Direction, TransferMeter};
pub use poller::{PollToken, Poller};
pub use reliable::{fnv1a_checksum, LinkStats, ReliableConfig, ReliableLink};
pub use transport::{
    read_frame, read_frame_capped, write_frame, FrameDecoder, InMemoryFifo, PollWaker, Readiness,
    Role, SharedFifo, TcpTransport, Transport, TransportError, MAX_FRAME_LEN,
};
