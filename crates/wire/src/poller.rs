//! One thread multiplexing every registered socket via `poll(2)`.
//!
//! The reactor runtime (`eca-warehouse`) parks its worker pool on a
//! [`PollWaker`] eventcount and expects *transports* to notify it when
//! something becomes receivable. `SharedFifo` can do that from the
//! sender's thread; a TCP socket has no thread on the sending side of
//! the syscall boundary, so something must watch the fd. Pre-refactor
//! that was one blocking reader thread per connection — the thread wall
//! this crate's non-blocking rework removes. The [`Poller`] replaces
//! all of them with a single thread that sleeps in `poll(2)` over every
//! registered descriptor and translates readiness into the exact same
//! [`PollWaker::notify`] calls a `SharedFifo` sender would make, so the
//! reactor cannot tell in-memory links and sockets apart.
//!
//! ## Arming protocol (oneshot over level-triggered `poll(2)`)
//!
//! A registration is *armed* when the owning transport wants a wake-up
//! for the next readable edge. When `poll(2)` reports the fd ready the
//! poller notifies the waker **once** and disarms the slot — otherwise
//! a level-triggered fd that the reactor has not yet drained would spin
//! the poller at 100% CPU re-announcing the same bytes. The transport
//! re-arms ([`Poller::rearm`]) each time it drains its socket to
//! `WouldBlock`. Because `poll(2)` is level-triggered, bytes that land
//! between the drain and the re-arm are still reported on the next
//! cycle — no edge is lost.
//!
//! Registry mutations and re-arms wake the poller thread through a
//! connected loopback `UdpSocket` pair (`std`-only self-pipe), whose
//! receive end sits permanently in the poll set.

use std::collections::VecDeque;
use std::io;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::transport::PollWaker;

/// Identifies one registered descriptor; returned by
/// [`Poller::register`], passed to [`Poller::rearm`] /
/// [`Poller::deregister`]. Slots are recycled, so a stale token must
/// never be used after `deregister` — transports own their token for
/// exactly the lifetime of their registration.
pub type PollToken = usize;

struct WatchEntry {
    fd: RawFd,
    waker: Arc<PollWaker>,
    /// Wants a wake-up on the next readable edge. Cleared by the poller
    /// when it fires, set again by [`Poller::rearm`].
    armed: bool,
    /// Set (alongside the notify) every time this slot fires; the
    /// owning transport swaps it back off. See [`Poller::readiness`].
    ready: Arc<AtomicBool>,
}

#[derive(Default)]
struct Registry {
    slots: Vec<Option<WatchEntry>>,
    free: VecDeque<usize>,
}

/// State shared between the poller thread and the [`Poller`] handle.
/// The thread holds only this, never the handle, so dropping the last
/// handle reliably tears the thread down.
struct Shared {
    registry: Mutex<Registry>,
    /// Send half of the self-wake pair; any datagram unblocks `poll(2)`.
    wake_tx: UdpSocket,
    shutdown: AtomicBool,
}

impl Shared {
    fn wake(&self) {
        // A full socket buffer just means the thread is already due to
        // wake; nothing to do.
        let _ = self.wake_tx.send(&[1]);
    }
}

/// A single background thread watching many sockets; see the module
/// docs for the arming protocol. Share it via the [`Arc`] returned by
/// [`Poller::new`]; dropping the last handle shuts the thread down.
pub struct Poller {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Poller {
    /// Spawn the poller thread. The self-wake sockets bind to loopback
    /// ephemeral ports; no traffic ever leaves the host.
    ///
    /// # Errors
    /// Propagates socket-setup or thread-spawn failures.
    pub fn new() -> io::Result<Arc<Poller>> {
        let wake_rx = UdpSocket::bind("127.0.0.1:0")?;
        wake_rx.set_nonblocking(true)?;
        let wake_tx = UdpSocket::bind("127.0.0.1:0")?;
        wake_tx.connect(wake_rx.local_addr()?)?;
        let shared = Arc::new(Shared {
            registry: Mutex::new(Registry::default()),
            wake_tx,
            shutdown: AtomicBool::new(false),
        });
        let for_thread = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("eca-wire-poller".into())
            .spawn(move || poll_loop(&for_thread, wake_rx))?;
        Ok(Arc::new(Poller {
            shared,
            thread: Mutex::new(Some(handle)),
        }))
    }

    /// Watch `fd`, notifying `waker` on its next readable edge (the
    /// slot starts armed). The caller keeps the fd open for the life of
    /// the registration.
    pub fn register(&self, fd: RawFd, waker: Arc<PollWaker>) -> PollToken {
        let token = {
            let mut reg = lock(&self.shared.registry);
            let entry = WatchEntry {
                fd,
                waker,
                armed: true,
                ready: Arc::new(AtomicBool::new(false)),
            };
            match reg.free.pop_front() {
                Some(slot) => {
                    reg.slots[slot] = Some(entry);
                    slot
                }
                None => {
                    reg.slots.push(Some(entry));
                    reg.slots.len() - 1
                }
            }
        };
        self.shared.wake();
        token
    }

    /// The readiness flag for `token`'s registration, or `None` if the
    /// token is stale. The poller sets the flag every time the slot
    /// fires; a transport that drained its socket to `WouldBlock` and
    /// re-armed can skip further read syscalls until the flag trips —
    /// without it, every idle probe costs an `EAGAIN` read.
    pub fn readiness(&self, token: PollToken) -> Option<Arc<AtomicBool>> {
        lock(&self.shared.registry)
            .slots
            .get(token)
            .and_then(Option::as_ref)
            .map(|entry| Arc::clone(&entry.ready))
    }

    /// Request a wake-up for the next readable edge on `token`'s fd.
    /// Idempotent; a no-op on an already-armed or deregistered slot.
    pub fn rearm(&self, token: PollToken) {
        let needs_wake = {
            let mut reg = lock(&self.shared.registry);
            match reg.slots.get_mut(token).and_then(Option::as_mut) {
                Some(entry) if !entry.armed => {
                    entry.armed = true;
                    true
                }
                _ => false,
            }
        };
        if needs_wake {
            self.shared.wake();
        }
    }

    /// Stop watching `token`'s fd and recycle the slot. Call *before*
    /// closing the descriptor, so the poll set never holds a dead fd.
    pub fn deregister(&self, token: PollToken) {
        {
            let mut reg = lock(&self.shared.registry);
            if reg.slots.get_mut(token).and_then(Option::take).is_some() {
                reg.free.push_back(token);
            }
        }
        self.shared.wake();
    }

    /// Number of live registrations (diagnostics / tests).
    pub fn watched(&self) -> usize {
        lock(&self.shared.registry)
            .slots
            .iter()
            .filter(|s| s.is_some())
            .count()
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake();
        if let Some(handle) = lock(&self.thread).take() {
            let _ = handle.join();
        }
    }
}

fn poll_loop(shared: &Shared, wake_rx: UdpSocket) {
    let mut fds: Vec<libc::pollfd> = Vec::new();
    let mut tokens: Vec<PollToken> = Vec::new();
    let mut ready: Vec<Arc<PollWaker>> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        fds.clear();
        tokens.clear();
        fds.push(libc::pollfd {
            fd: wake_rx.as_raw_fd(),
            events: libc::POLLIN,
            revents: 0,
        });
        {
            let reg = lock(&shared.registry);
            for (slot, entry) in reg.slots.iter().enumerate() {
                if let Some(entry) = entry {
                    if entry.armed {
                        fds.push(libc::pollfd {
                            fd: entry.fd,
                            events: libc::POLLIN,
                            revents: 0,
                        });
                        tokens.push(slot);
                    }
                }
            }
        }
        // Bounded timeout as a backstop against a lost self-wake
        // datagram; every real transition also lands a wake byte.
        if libc::poll_fds(&mut fds, 250).is_err() {
            // EINVAL/ENOMEM-class faults: don't spin; registry changes
            // (e.g. a bad fd being deregistered) will clear them.
            std::thread::sleep(std::time::Duration::from_millis(10));
            continue;
        }
        if fds[0].revents != 0 {
            let mut buf = [0u8; 64];
            while wake_rx.recv(&mut buf).is_ok() {}
        }
        ready.clear();
        {
            let mut reg = lock(&shared.registry);
            for (i, token) in tokens.iter().enumerate() {
                // POLLERR/POLLHUP/POLLNVAL arrive unrequested; any of
                // them means "go look at the transport".
                if fds[i + 1].revents != 0 {
                    if let Some(entry) = reg.slots[*token].as_mut() {
                        if entry.armed {
                            entry.armed = false;
                            entry.ready.store(true, Ordering::Release);
                            ready.push(Arc::clone(&entry.waker));
                        }
                    }
                }
            }
        }
        // Notify outside the registry lock: wakers take their own park
        // lock and may contend with transport threads.
        for waker in ready.drain(..) {
            waker.notify();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn readiness_notifies_waker_once_until_rearmed() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let waker = PollWaker::new();
        let token = poller.register(client.as_raw_fd(), Arc::clone(&waker));
        assert_eq!(poller.watched(), 1);

        let seen = waker.epoch();
        server.write_all(b"hello").unwrap();
        assert!(waker.wait(seen, Duration::from_secs(5)), "first edge fires");

        // Disarmed now: the still-readable fd must NOT keep notifying.
        // (Allow one straggler notify that raced the disarm, then
        // require silence.)
        std::thread::sleep(Duration::from_millis(50));
        let seen = waker.epoch();
        assert!(!waker.wait(seen, Duration::from_millis(100)));

        // Re-arm without draining: level-triggered poll reports the
        // same bytes again.
        let seen = waker.epoch();
        poller.rearm(token);
        assert!(waker.wait(seen, Duration::from_secs(5)), "re-armed edge");

        poller.deregister(token);
        assert_eq!(poller.watched(), 0);
    }

    #[test]
    fn peer_hangup_fires_armed_registration() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();

        let waker = PollWaker::new();
        let token = poller.register(client.as_raw_fd(), Arc::clone(&waker));
        let seen = waker.epoch();
        drop(server); // EOF is a readable event
        assert!(waker.wait(seen, Duration::from_secs(5)));
        poller.deregister(token);
    }

    #[test]
    fn slots_are_recycled_after_deregister() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let b = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let w = PollWaker::new();
        let ta = poller.register(a.as_raw_fd(), Arc::clone(&w));
        poller.deregister(ta);
        let tb = poller.register(b.as_raw_fd(), Arc::clone(&w));
        assert_eq!(ta, tb, "freed slot is reused");
        assert_eq!(poller.watched(), 1);
    }
}
