//! Pluggable transports carrying [`Message`]s between source and
//! warehouse.
//!
//! The paper (§3) assumes only that source and warehouse are joined by
//! reliable FIFO channels; everything else — timing, batching, the
//! physical medium — is up to the deployment. [`Transport`] captures
//! exactly that contract: an *endpoint* of a bidirectional channel whose
//! two directions are independently FIFO, with every message charged to a
//! [`TransferMeter`] in its direction of travel. Two implementations:
//!
//! * [`InMemoryFifo`] — a deterministic in-process pair used by `eca-sim`.
//!   Messages still round-trip through the codec on every delivery, so
//!   byte counts are measured on real encodings and decode faults surface
//!   exactly as they would on a real link.
//! * [`TcpTransport`] — length-prefixed frames over a *non-blocking*
//!   `std::net::TcpStream`: an incremental [`FrameDecoder`] reassembles
//!   frames across partial reads, sends queue into a bounded outbound
//!   buffer when the socket would block, and an optional shared
//!   [`Poller`](crate::Poller) thread turns fd readiness into
//!   [`PollWaker`] notifications so hundreds of connections multiplex
//!   onto one poll loop with **zero** per-connection threads. TCP's
//!   in-order delivery preserves the §3 ordering assumption per
//!   connection.
//!
//! Metering convention: each message is charged once per meter, in its
//! direction of travel. The [`InMemoryFifo`] pair shares one meter and
//! charges at send time; each [`TcpTransport`] endpoint owns its meter and
//! charges sends at write time and receives at decode time, so either
//! side of a real deployment observes the same per-direction totals the
//! simulator would.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bytes::Bytes;

use crate::codec::DecodeError;
use crate::message::Message;
use crate::meter::{Direction, TransferMeter};

/// Which site an endpoint belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// The autonomous source: sends notifications and answers, receives
    /// queries.
    Source,
    /// The warehouse: sends queries, receives notifications and answers.
    Warehouse,
}

impl Role {
    /// The direction of travel for messages sent from this endpoint.
    pub fn outbound(self) -> Direction {
        match self {
            Role::Source => Direction::SourceToWarehouse,
            Role::Warehouse => Direction::WarehouseToSource,
        }
    }

    /// The direction of travel for messages arriving at this endpoint.
    pub fn inbound(self) -> Direction {
        match self {
            Role::Source => Direction::WarehouseToSource,
            Role::Warehouse => Direction::SourceToWarehouse,
        }
    }

    /// The peer's role.
    pub fn other(self) -> Role {
        match self {
            Role::Source => Role::Warehouse,
            Role::Warehouse => Role::Source,
        }
    }
}

/// Errors surfaced by a transport.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the channel while a send or receive was required.
    Closed,
    /// An inbound frame failed to decode.
    Decode(DecodeError),
    /// An I/O fault on the underlying medium.
    Io(std::io::Error),
    /// A bounded wait ([`Transport::recv_timeout`]) elapsed with the peer
    /// still connected but silent — the channel may be wedged.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by peer"),
            TransportError::Decode(e) => write!(f, "inbound frame failed to decode: {e}"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Timeout => write!(f, "timed out waiting for inbound message"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Decode(e) => Some(e),
            TransportError::Io(e) => Some(e),
            TransportError::Closed | TransportError::Timeout => None,
        }
    }
}

impl From<DecodeError> for TransportError {
    fn from(e: DecodeError) -> Self {
        TransportError::Decode(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// An eventcount a poll loop parks on while *many* endpoints are idle —
/// the poll-set primitive the reactor runtime multiplexes transports
/// with.
///
/// A loop that polls N channels needs a way to sleep until **any** of
/// them becomes ready without racing arrivals that land between the last
/// poll and the sleep. `PollWaker` closes that race with a generation
/// counter: the loop snapshots [`PollWaker::epoch`] *before* polling,
/// then calls [`PollWaker::wait`] with the snapshot — if any
/// [`PollWaker::notify`] happened after the snapshot (including during
/// the polls), the wait returns immediately instead of sleeping through
/// the event.
///
/// Register the same waker on every transport in the set via
/// [`Transport::set_waker`]; senders (and peer hang-ups) notify it.
///
/// ```text
/// let seen = waker.epoch();
/// for t in &mut transports { match t.poll()? { ... } }
/// if nothing_ready { waker.wait(seen, idle_bound); }
/// ```
#[derive(Default)]
pub struct PollWaker {
    /// Event counter, bumped by every notify. Atomic so the notify fast
    /// path (nobody parked) is one RMW with no lock and no syscall —
    /// transports call [`PollWaker::notify`] on *every* delivery, and in
    /// steady state the poll loop is busy, not parked.
    generation: AtomicU64,
    /// Parked waiter count; gates the slow path of notify.
    waiters: AtomicU64,
    /// Guards only the condvar protocol, never the counter.
    park: Mutex<()>,
    cv: Condvar,
    /// Chained parent: every notify here also notifies it. See
    /// [`PollWaker::chained`].
    forward: Option<Arc<PollWaker>>,
}

impl PollWaker {
    /// A fresh waker behind an [`Arc`], ready to share across transports
    /// and threads.
    pub fn new() -> Arc<PollWaker> {
        Arc::new(PollWaker::default())
    }

    /// A waker whose notifications also propagate to `parent`.
    ///
    /// A poll loop over N endpoints parks on one shared waker, but that
    /// waker alone cannot say *which* endpoint fired — every wake-up
    /// costs an O(N) re-probe. Registering a chained child per endpoint
    /// keeps the single park point (the parent) while the child's own
    /// [`PollWaker::epoch`] records per-endpoint activity, so the loop
    /// re-probes only endpoints whose epoch moved since they last
    /// probed idle.
    pub fn chained(parent: Arc<PollWaker>) -> Arc<PollWaker> {
        Arc::new(PollWaker {
            forward: Some(parent),
            ..PollWaker::default()
        })
    }

    /// The current generation. Snapshot this *before* polling the
    /// transports guarded by this waker.
    pub fn epoch(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Record an event and wake every parked waiter. Cheap when nobody
    /// is parked: one atomic increment, no lock, no syscall.
    pub fn notify(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the park lock orders this notify against a waiter
            // that has registered but not yet reached `cv.wait`.
            drop(lock_ignore_poison(&self.park));
            self.cv.notify_all();
        }
        if let Some(parent) = &self.forward {
            parent.notify();
        }
    }

    /// Park until a notify lands after generation `seen`, or `timeout`
    /// elapses. Returns `true` when woken by a notify (or when one had
    /// already landed), `false` on a plain timeout.
    ///
    /// The waiter registers *before* re-checking the epoch (both
    /// SeqCst), so a notify that misses the waiter count must have
    /// bumped the generation early enough for the re-check to see it —
    /// the classic eventcount handshake, no wake-up lost.
    pub fn wait(&self, seen: u64, timeout: std::time::Duration) -> bool {
        if self.epoch() != seen {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        self.waiters.fetch_add(1, Ordering::SeqCst);
        let mut guard = lock_ignore_poison(&self.park);
        let woken = loop {
            if self.epoch() != seen {
                break true;
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break false;
            };
            guard = match self.cv.wait_timeout(guard, remaining) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        };
        drop(guard);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        woken
    }
}

/// Mutex lock that shrugs off poisoning: waker state is a bare counter,
/// always consistent.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What a non-blocking readiness probe observed on an endpoint.
///
/// `poll` is the third leg of the receive API next to `try_recv`
/// (non-blocking take) and `recv` (blocking take): it distinguishes "the
/// channel is merely idle right now" from "the peer is gone and nothing
/// further will ever arrive", which `try_recv`'s `Ok(None)` conflates. A
/// pump loop that must never park on an idle source polls every channel
/// and only blocks once it knows which ones are still live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Readiness {
    /// At least one inbound message can be taken right now without
    /// blocking.
    Ready,
    /// Nothing is queued, but the peer is still connected and may send
    /// more.
    Idle,
    /// Nothing is queued and the peer has hung up: no message will ever
    /// arrive again.
    Closed,
}

/// One endpoint of a reliable, per-direction-FIFO message channel.
pub trait Transport {
    /// Which site this endpoint belongs to.
    fn role(&self) -> Role;

    /// Send a message toward the peer, charging the meter.
    ///
    /// # Errors
    /// [`TransportError::Closed`] / [`TransportError::Io`] when the peer
    /// is unreachable.
    fn send(&mut self, msg: &Message) -> Result<(), TransportError>;

    /// Take the oldest inbound message without blocking. `Ok(None)` means
    /// nothing is available *right now* (the peer may still send more).
    ///
    /// # Errors
    /// [`TransportError::Decode`] on a malformed frame.
    fn try_recv(&mut self) -> Result<Option<Message>, TransportError>;

    /// Block until an inbound message arrives. `Ok(None)` means the peer
    /// hung up cleanly and no further message will ever arrive. The
    /// in-memory transport never blocks: its `Ok(None)` means the queue
    /// is currently empty.
    ///
    /// # Errors
    /// [`TransportError::Decode`] on a malformed frame.
    fn recv(&mut self) -> Result<Option<Message>, TransportError>;

    /// Block until an inbound message arrives or `timeout` elapses.
    ///
    /// `Ok(None)` means the peer hung up cleanly. A wedged peer — still
    /// connected but silent past the deadline — yields
    /// [`TransportError::Timeout`] instead of hanging the caller forever,
    /// which is the failure mode a plain [`Transport::recv`] cannot
    /// escape. The default implementation polls with a short sleep;
    /// transports with real blocking primitives override it.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] when the deadline passes;
    /// [`TransportError::Decode`] on a malformed frame.
    fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(msg) = self.try_recv()? {
                return Ok(Some(msg));
            }
            if self.poll()? == Readiness::Closed {
                return Ok(None);
            }
            if std::time::Instant::now() >= deadline {
                return Err(TransportError::Timeout);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Take up to `max` immediately-available inbound messages into
    /// `out`, preserving arrival order. Returns how many were taken; `0`
    /// means nothing was available right now. The default loops
    /// [`Transport::try_recv`]; transports with an internal queue
    /// override it to drain a whole batch under one lock, which is what
    /// makes a multiplexing poll loop cheap per message.
    ///
    /// # Errors
    /// [`TransportError::Decode`] on a malformed frame (messages drained
    /// before the fault remain in `out`).
    fn drain_into(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        let mut taken = 0;
        while taken < max {
            match self.try_recv()? {
                Some(msg) => {
                    out.push(msg);
                    taken += 1;
                }
                None => break,
            }
        }
        Ok(taken)
    }

    /// Whether an inbound message is available now (may decode and buffer
    /// one frame internally).
    fn has_inbound(&mut self) -> bool;

    /// Probe the inbound direction without blocking or consuming a
    /// message. The default cannot observe peer departure and never
    /// returns [`Readiness::Closed`]; transports that can tell the
    /// difference override it.
    ///
    /// # Errors
    /// Transport faults surfaced by the probe (e.g. a reader-thread I/O
    /// error).
    fn poll(&mut self) -> Result<Readiness, TransportError> {
        if self.has_inbound() {
            Ok(Readiness::Ready)
        } else {
            Ok(Readiness::Idle)
        }
    }

    /// Register a [`PollWaker`] to be notified whenever a message
    /// becomes receivable on this endpoint or the peer hangs up, so a
    /// multiplexing poll loop can park instead of spinning. Returns
    /// `false` when the transport cannot deliver wake-ups (the default);
    /// callers then fall back to bounded-sleep polling.
    fn set_waker(&mut self, _waker: Arc<PollWaker>) -> bool {
        false
    }

    /// The meter charged by this endpoint.
    fn meter(&self) -> &TransferMeter;
}

// ---------------------------------------------------------------------------
// Framing, shared by every byte-stream transport.
// ---------------------------------------------------------------------------

/// Largest frame payload any blocking or incremental read path accepts
/// by default: 16 MiB, comfortably above the largest legitimate
/// [`Message`] (multi-megabyte resync answers) while keeping a corrupt
/// or hostile 4-byte length prefix from demanding an allocation of up
/// to 4 GiB ([`read_frame`]) or from making an incremental decoder
/// buffer a stream without bound ([`FrameDecoder`]). Paths that expect
/// strictly smaller messages — e.g. the reactor's Hello handshake —
/// pass their own tighter cap to [`read_frame_capped`] /
/// [`FrameDecoder::with_cap`].
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Write one message as a `u32`-big-endian-length-prefixed frame.
///
/// The 4-byte prefix is transport overhead and is *not* charged to the
/// meter, keeping the paper's `B`/`M` accounting identical across
/// transports.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> Result<(), TransportError> {
    let payload = msg.encode();
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary. The length prefix is checked against [`MAX_FRAME_LEN`]
/// *before* the payload buffer is allocated.
///
/// # Errors
/// [`TransportError::Io`] on truncated frames, over-cap length prefixes
/// (`InvalidData`) or I/O faults (the message itself is *not* decoded
/// here — pair with [`Message::decode`]).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Bytes>, TransportError> {
    read_frame_capped(r, MAX_FRAME_LEN)
}

/// Like [`read_frame`], but reject any frame whose length prefix
/// exceeds `max_len` *before* allocating the payload buffer. Use this
/// when reading from a peer that has not authenticated yet — a garbage
/// 4-byte prefix must not be trusted with a multi-gigabyte allocation.
///
/// # Errors
/// Everything [`read_frame`] raises, plus `InvalidData` I/O errors for
/// over-cap length prefixes.
pub fn read_frame_capped(
    r: &mut impl Read,
    max_len: usize,
) -> Result<Option<Bytes>, TransportError> {
    let mut len_buf = [0u8; 4];
    // EOF before any length byte is a clean shutdown; EOF mid-prefix or
    // mid-payload is a truncated frame. The first read retries
    // `Interrupted` itself (`read`, unlike `read_exact`, surfaces it):
    // a signal landing before the first prefix byte must not kill a
    // healthy connection, and a 1–3 byte prefix followed by EOF must
    // fall through to `read_exact`'s `UnexpectedEof`, not be mistaken
    // for a clean shutdown.
    let first = loop {
        match r.read(&mut len_buf) {
            Ok(n) => break n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TransportError::Io(e)),
        }
    };
    match first {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_len {
        return Err(TransportError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max_len}"),
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Bytes::from(payload)))
}

/// Incremental frame reassembly for non-blocking byte streams.
///
/// A non-blocking read returns whatever the kernel has — possibly half a
/// length prefix, possibly three frames and a tail. The decoder
/// accumulates those fragments ([`FrameDecoder::extend`]) and yields
/// complete payloads ([`FrameDecoder::next_frame`]) with the same
/// framing rules as the blocking [`read_frame`]: a `u32` big-endian
/// length prefix, never charged to any meter, followed by the encoded
/// message. Byte-split boundaries are invisible to the caller — the
/// yielded frame sequence depends only on the byte stream, not on how
/// it was chunked (the codec proptest drives exactly that invariant).
///
/// Length prefixes are capped (default [`MAX_FRAME_LEN`]): an
/// over-sized prefix is a framing error surfaced by
/// [`FrameDecoder::next_frame`] *immediately*, not a promise the
/// decoder waits on — otherwise `pending.len() < 4 + len` would hold
/// forever and the decoder would buffer the rest of the stream without
/// bound (a slow OOM on a connection that never errors).
pub struct FrameDecoder {
    /// Unconsumed stream bytes; `pos` marks how much of the front has
    /// already been yielded (compacted lazily to keep `extend` O(n)).
    buf: Vec<u8>,
    pos: usize,
    /// Largest acceptable frame payload.
    cap: usize,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            cap: MAX_FRAME_LEN,
        }
    }
}

impl FrameDecoder {
    /// An empty decoder, mid-stream position zero, capped at
    /// [`MAX_FRAME_LEN`].
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// An empty decoder with a custom frame-length cap, for channels
    /// whose legitimate messages are known to be strictly smaller.
    pub fn with_cap(cap: usize) -> FrameDecoder {
        FrameDecoder {
            cap,
            ..FrameDecoder::default()
        }
    }

    /// Append freshly read stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is dead.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame payload, if one has fully arrived.
    ///
    /// # Errors
    /// `InvalidData` when the pending length prefix exceeds the cap —
    /// a framing error: the stream position is corrupt (or hostile)
    /// and the connection must be torn down, since every subsequent
    /// byte would be misinterpreted.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, TransportError> {
        let pending = &self.buf[self.pos..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > self.cap {
            return Err(TransportError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap {}", self.cap),
            )));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let frame = Bytes::from(pending[4..4 + len].to_vec());
        self.pos += 4 + len;
        Ok(Some(frame))
    }

    /// Whether a partial frame (or partial length prefix) is buffered.
    /// EOF while this holds is a truncated stream, not a clean shutdown.
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Discard any buffered partial frame (used once a truncation fault
    /// has been recorded, so it is reported exactly once).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }
}

// ---------------------------------------------------------------------------
// In-memory pair.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Link {
    s2w: VecDeque<Bytes>,
    w2s: VecDeque<Bytes>,
}

impl Link {
    fn queue_mut(&mut self, direction: Direction) -> &mut VecDeque<Bytes> {
        match direction {
            Direction::SourceToWarehouse => &mut self.s2w,
            Direction::WarehouseToSource => &mut self.w2s,
        }
    }

    fn queue(&self, direction: Direction) -> &VecDeque<Bytes> {
        match direction {
            Direction::SourceToWarehouse => &self.s2w,
            Direction::WarehouseToSource => &self.w2s,
        }
    }
}

/// One endpoint of a deterministic in-process FIFO pair.
///
/// Both endpoints share a single [`TransferMeter`] (charged at send time)
/// and the same pair of byte queues, so a driver holding both ends — the
/// simulator — observes exactly the channel state the paper's event model
/// requires. Messages are stored *encoded*; every receive decodes, so
/// codec faults surface on delivery just as on a real link.
pub struct InMemoryFifo {
    role: Role,
    link: Rc<RefCell<Link>>,
    meter: TransferMeter,
}

impl InMemoryFifo {
    /// A connected `(source endpoint, warehouse endpoint)` pair sharing
    /// `meter`.
    pub fn pair(meter: TransferMeter) -> (InMemoryFifo, InMemoryFifo) {
        let link = Rc::new(RefCell::new(Link::default()));
        (
            InMemoryFifo {
                role: Role::Source,
                link: Rc::clone(&link),
                meter: meter.clone(),
            },
            InMemoryFifo {
                role: Role::Warehouse,
                link,
                meter,
            },
        )
    }
}

impl Transport for InMemoryFifo {
    fn role(&self) -> Role {
        self.role
    }

    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let payload = msg.encode();
        self.meter
            .record(self.role.outbound(), payload.len() as u64);
        self.link
            .borrow_mut()
            .queue_mut(self.role.outbound())
            .push_back(payload);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        let popped = self
            .link
            .borrow_mut()
            .queue_mut(self.role.inbound())
            .pop_front();
        match popped {
            Some(payload) => Ok(Some(Message::decode(payload)?)),
            None => Ok(None),
        }
    }

    fn recv(&mut self) -> Result<Option<Message>, TransportError> {
        // In-process queues cannot block; an empty queue reads as "no
        // message pending", which a deterministic driver interprets via
        // `has_inbound` anyway.
        self.try_recv()
    }

    fn recv_timeout(
        &mut self,
        _timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        // Single-threaded: nothing can arrive while we wait, so an empty
        // queue times out immediately rather than sleeping pointlessly.
        if let Some(msg) = self.try_recv()? {
            return Ok(Some(msg));
        }
        if self.poll()? == Readiness::Closed {
            return Ok(None);
        }
        Err(TransportError::Timeout)
    }

    fn has_inbound(&mut self) -> bool {
        !self.link.borrow().queue(self.role.inbound()).is_empty()
    }

    fn poll(&mut self) -> Result<Readiness, TransportError> {
        if self.has_inbound() {
            Ok(Readiness::Ready)
        } else if Rc::strong_count(&self.link) == 1 {
            // `pair` hands out exactly two handles to the link; being the
            // only one left means the peer endpoint was dropped.
            Ok(Readiness::Closed)
        } else {
            Ok(Readiness::Idle)
        }
    }

    fn meter(&self) -> &TransferMeter {
        &self.meter
    }
}

// ---------------------------------------------------------------------------
// Thread-safe in-memory pair.
// ---------------------------------------------------------------------------

struct SharedLink {
    s2w: VecDeque<Bytes>,
    w2s: VecDeque<Bytes>,
    source_open: bool,
    warehouse_open: bool,
    /// Per-direction queue bound ([`SharedFifo::bounded_pair`]); `None`
    /// means unbounded, the historical behaviour.
    cap: Option<usize>,
    /// Wakers registered by each endpoint ([`Transport::set_waker`]),
    /// notified when a message lands for — or the peer of — that role.
    source_waker: Option<Arc<PollWaker>>,
    warehouse_waker: Option<Arc<PollWaker>>,
}

impl SharedLink {
    fn queue_mut(&mut self, direction: Direction) -> &mut VecDeque<Bytes> {
        match direction {
            Direction::SourceToWarehouse => &mut self.s2w,
            Direction::WarehouseToSource => &mut self.w2s,
        }
    }

    fn open(&self, role: Role) -> bool {
        match role {
            Role::Source => self.source_open,
            Role::Warehouse => self.warehouse_open,
        }
    }

    fn close(&mut self, role: Role) {
        match role {
            Role::Source => self.source_open = false,
            Role::Warehouse => self.warehouse_open = false,
        }
    }

    fn waker(&self, role: Role) -> Option<Arc<PollWaker>> {
        match role {
            Role::Source => self.source_waker.clone(),
            Role::Warehouse => self.warehouse_waker.clone(),
        }
    }

    fn set_waker(&mut self, role: Role, waker: Arc<PollWaker>) {
        match role {
            Role::Source => self.source_waker = Some(waker),
            Role::Warehouse => self.warehouse_waker = Some(waker),
        }
    }
}

/// The [`InMemoryFifo`] semantics behind `Send` + blocking primitives: the
/// in-process transport for *threaded* deployments (the concurrent
/// warehouse runtime and its throughput benchmarks).
///
/// Differences from [`InMemoryFifo`], which remains the deterministic
/// single-threaded simulator transport:
///
/// * endpoints can move across threads (`Arc<Mutex>` instead of
///   `Rc<RefCell>`),
/// * [`Transport::recv`] genuinely blocks until a message arrives or the
///   peer hangs up (returning `Ok(None)` only for a hang-up, exactly like
///   [`TcpTransport`]), and
/// * dropping an endpoint closes its side, waking any blocked peer.
///
/// Metering matches [`InMemoryFifo`]: the pair shares one
/// [`TransferMeter`] charged at send time, and messages round-trip
/// through the codec on every delivery.
pub struct SharedFifo {
    role: Role,
    link: Arc<(Mutex<SharedLink>, Condvar)>,
    meter: TransferMeter,
}

impl SharedFifo {
    /// A connected `(source endpoint, warehouse endpoint)` pair sharing
    /// `meter`.
    pub fn pair(meter: TransferMeter) -> (SharedFifo, SharedFifo) {
        SharedFifo::build(meter, None)
    }

    /// Like [`SharedFifo::pair`], but each direction's queue holds at
    /// most `cap` messages: a send against a full queue **blocks** until
    /// the receiver drains a slot (or errors with
    /// [`TransportError::Closed`] if the peer hangs up while it waits).
    /// This is the backpressure primitive — a flooding source stalls
    /// deterministically instead of growing the warehouse's heap.
    ///
    /// # Panics
    /// If `cap` is zero (no message could ever be sent).
    pub fn bounded_pair(meter: TransferMeter, cap: usize) -> (SharedFifo, SharedFifo) {
        assert!(cap > 0, "a zero-capacity channel could never deliver");
        SharedFifo::build(meter, Some(cap))
    }

    fn build(meter: TransferMeter, cap: Option<usize>) -> (SharedFifo, SharedFifo) {
        let link = Arc::new((
            Mutex::new(SharedLink {
                s2w: VecDeque::new(),
                w2s: VecDeque::new(),
                source_open: true,
                warehouse_open: true,
                cap,
                source_waker: None,
                warehouse_waker: None,
            }),
            Condvar::new(),
        ));
        (
            SharedFifo {
                role: Role::Source,
                link: Arc::clone(&link),
                meter: meter.clone(),
            },
            SharedFifo {
                role: Role::Warehouse,
                link,
                meter,
            },
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedLink> {
        // A poisoned link means a peer thread panicked mid-send; the
        // queues themselves are always in a consistent state (every
        // mutation is a single push/pop), so continuing is sound.
        match self.link.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Transport for SharedFifo {
    fn role(&self) -> Role {
        self.role
    }

    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let payload = msg.encode();
        let peer_waker = {
            let mut link = self.lock();
            loop {
                if !link.open(self.role.other()) {
                    return Err(TransportError::Closed);
                }
                let cap = link.cap;
                let queue = link.queue_mut(self.role.outbound());
                if cap.map_or(true, |c| queue.len() < c) {
                    queue.push_back(payload.clone());
                    break link.waker(self.role.other());
                }
                // Bounded and full: backpressure. Park until the peer
                // drains a slot (every pop notifies) or hangs up.
                link = match self.link.1.wait(link) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        self.meter
            .record(self.role.outbound(), payload.len() as u64);
        self.link.1.notify_all();
        if let Some(waker) = peer_waker {
            waker.notify();
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        let (popped, bounded) = {
            let mut link = self.lock();
            let popped = link.queue_mut(self.role.inbound()).pop_front();
            (popped, link.cap.is_some())
        };
        match popped {
            Some(payload) => {
                if bounded {
                    self.link.1.notify_all(); // free a sender slot
                }
                Ok(Some(Message::decode(payload)?))
            }
            None => Ok(None),
        }
    }

    fn drain_into(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        // One lock for the whole batch instead of one per message.
        let (payloads, bounded) = {
            let mut link = self.lock();
            let queue = link.queue_mut(self.role.inbound());
            let take = queue.len().min(max);
            let payloads: Vec<Bytes> = queue.drain(..take).collect();
            (payloads, link.cap.is_some())
        };
        if bounded && !payloads.is_empty() {
            self.link.1.notify_all(); // freed sender slots
        }
        let taken = payloads.len();
        for payload in payloads {
            out.push(Message::decode(payload)?);
        }
        Ok(taken)
    }

    fn recv(&mut self) -> Result<Option<Message>, TransportError> {
        let mut link = self.lock();
        loop {
            if let Some(payload) = link.queue_mut(self.role.inbound()).pop_front() {
                let bounded = link.cap.is_some();
                drop(link);
                if bounded {
                    self.link.1.notify_all(); // free a sender slot
                }
                return Ok(Some(Message::decode(payload)?));
            }
            if !link.open(self.role.other()) {
                return Ok(None); // peer hung up cleanly
            }
            link = match self.link.1.wait(link) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut link = self.lock();
        loop {
            if let Some(payload) = link.queue_mut(self.role.inbound()).pop_front() {
                let bounded = link.cap.is_some();
                drop(link);
                if bounded {
                    self.link.1.notify_all(); // free a sender slot
                }
                return Ok(Some(Message::decode(payload)?));
            }
            if !link.open(self.role.other()) {
                return Ok(None); // peer hung up cleanly
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(TransportError::Timeout);
            };
            link = match self.link.1.wait_timeout(link, remaining) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn has_inbound(&mut self) -> bool {
        !self.lock().queue_mut(self.role.inbound()).is_empty()
    }

    fn poll(&mut self) -> Result<Readiness, TransportError> {
        let mut link = self.lock();
        if !link.queue_mut(self.role.inbound()).is_empty() {
            Ok(Readiness::Ready)
        } else if !link.open(self.role.other()) {
            Ok(Readiness::Closed)
        } else {
            Ok(Readiness::Idle)
        }
    }

    fn set_waker(&mut self, waker: Arc<PollWaker>) -> bool {
        self.lock().set_waker(self.role, waker);
        true
    }

    fn meter(&self) -> &TransferMeter {
        &self.meter
    }
}

impl Drop for SharedFifo {
    fn drop(&mut self) {
        let (own, peer) = {
            let mut link = self.lock();
            link.close(self.role);
            (link.waker(self.role), link.waker(self.role.other()))
        };
        self.link.1.notify_all();
        // Wake both sides' poll loops: the peer must observe Closed, and
        // a sender of ours parked on backpressure must observe the error.
        for waker in [own, peer].into_iter().flatten() {
            waker.notify();
        }
    }
}

// ---------------------------------------------------------------------------
// TCP.
// ---------------------------------------------------------------------------

/// Bytes the outbound buffer may hold before [`Transport::send`] blocks
/// waiting for the kernel to accept more. Bounds per-connection memory
/// under a slow or stalled reader — the socket-level analogue of
/// [`SharedFifo::bounded_pair`] backpressure.
const TCP_OUTBOUND_CAP: usize = 1 << 20;

/// Read-buffer size for one non-blocking `read(2)`.
const TCP_READ_CHUNK: usize = 16 * 1024;

/// A [`Transport`] over a real TCP connection — readiness-driven, with
/// **no** per-connection threads.
///
/// The stream runs in non-blocking mode. Every operation first runs a
/// *service pass* ([`TcpTransport`] internal `pump`): flush whatever the
/// kernel will take of the bounded outbound buffer, then read until
/// `WouldBlock`, feeding an incremental [`FrameDecoder`] whose complete
/// frames (length prefix stripped, payload metered at decode) queue for
/// `try_recv`/`drain_into`. Sends append a length-prefixed frame
/// ([`write_frame`] rules) to the outbound buffer and block only when
/// the buffer would exceed its cap — while blocked, the service pass
/// keeps draining inbound so two peers flooding each other cannot
/// deadlock. Blocking receives sleep in `poll(2)` on this socket alone.
///
/// For *multiplexed* deployments, attach a shared
/// [`Poller`](crate::Poller) ([`TcpTransport::attach_poller`]) before
/// registering a waker: fd readiness then lands as
/// [`PollWaker::notify`] exactly like a `SharedFifo` sender's, and the
/// reactor drives hundreds of sockets from its fixed worker pool.
/// Without a poller, [`Transport::set_waker`] reports `false` — there
/// is no thread to deliver wake-ups.
///
/// TCP delivers in order, preserving the paper's §3 FIFO-channel
/// assumption per connection.
pub struct TcpTransport {
    role: Role,
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Complete inbound frames, already metered, awaiting decode.
    inbound: VecDeque<Bytes>,
    /// Encoded-but-unsent bytes; `out_pos` marks the flushed prefix.
    outbound: Vec<u8>,
    out_pos: usize,
    /// An I/O fault observed by a probe before any `recv` asked for it.
    /// Surfaced (once) by the next receive or poll, so a mid-stream
    /// error is never mistaken for clean EOF.
    fault: Option<std::io::Error>,
    /// Peer sent FIN (or faulted): the socket will never be readable
    /// with new data again.
    eof: bool,
    /// [`TcpTransport::close`] ran; the fd may be shut down.
    closed: bool,
    meter: TransferMeter,
    /// Readiness multiplexer this endpoint's fd is (or will be)
    /// registered with; see [`TcpTransport::attach_poller`].
    poller: Option<Arc<crate::Poller>>,
    /// Live registration with `poller`, created by `set_waker`.
    poll_token: Option<crate::PollToken>,
    /// The registration's fired-since-rearm flag, shared with the
    /// poller thread.
    poll_ready: Option<Arc<AtomicBool>>,
    /// The last read drained the socket to `WouldBlock` (and re-armed
    /// the poller). While this holds and `poll_ready` has not tripped,
    /// the fd cannot have become readable without the poller noticing —
    /// `pump` skips its read syscalls entirely.
    sock_drained: bool,
}

impl TcpTransport {
    /// Wrap an established stream, switching it to non-blocking mode.
    ///
    /// Nagle's algorithm is disabled: the protocol is request/response
    /// with small frames, and batching a frame behind an unacknowledged
    /// predecessor stalls every second message for a delayed-ACK
    /// interval (~40ms) — dwarfing actual processing time.
    ///
    /// # Errors
    /// Propagates `set_nonblocking` failures.
    pub fn new(stream: TcpStream, role: Role, meter: TransferMeter) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(TcpTransport {
            role,
            stream,
            decoder: FrameDecoder::new(),
            inbound: VecDeque::new(),
            outbound: Vec::new(),
            out_pos: 0,
            fault: None,
            eof: false,
            closed: false,
            meter,
            poller: None,
            poll_token: None,
            poll_ready: None,
            sock_drained: false,
        })
    }

    /// Connect to a listening peer.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(
        addr: impl ToSocketAddrs,
        role: Role,
        meter: TransferMeter,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        TcpTransport::new(stream, role, meter)
    }

    /// Route this endpoint's readiness through `poller`: a subsequent
    /// [`Transport::set_waker`] registers the fd and returns `true`,
    /// letting a reactor park on its [`PollWaker`] instead of polling.
    /// Attach *before* handing the transport to the poll loop.
    pub fn attach_poller(&mut self, poller: Arc<crate::Poller>) {
        self.poller = Some(poller);
    }

    /// Hang up: deregister from the poller, try to flush what the
    /// kernel will take, and shut the socket down in both directions.
    /// Idempotent; also invoked on drop. With no reader thread there is
    /// nothing to join — close is O(1).
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        if let (Some(poller), Some(token)) = (&self.poller, self.poll_token.take()) {
            poller.deregister(token);
        }
        let _ = self.flush_outbound();
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Surface a stashed I/O fault, if one is waiting.
    fn take_fault(&mut self) -> Option<TransportError> {
        self.fault.take().map(TransportError::Io)
    }

    /// Write buffered outbound bytes until done or `WouldBlock`.
    fn flush_outbound(&mut self) -> Result<(), TransportError> {
        while self.out_pos < self.outbound.len() {
            match self.stream.write(&self.outbound[self.out_pos..]) {
                Ok(0) => {
                    return Err(TransportError::Io(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    )))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        if self.out_pos == self.outbound.len() {
            self.outbound.clear();
            self.out_pos = 0;
        } else if self.out_pos >= 4096 {
            self.outbound.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }

    fn outbound_pending(&self) -> usize {
        self.outbound.len() - self.out_pos
    }

    /// The service pass: flush pending writes (best-effort — a write
    /// fault will re-surface as a read fault or on the next `send`),
    /// then read until `WouldBlock`/EOF, queueing every complete frame
    /// (metered at decode time). Re-arms the poller registration when
    /// the socket is drained, which is what makes oneshot wake-ups
    /// loss-free (see the `poller` module docs).
    fn pump(&mut self) {
        let _ = self.flush_outbound();
        if self.eof || self.closed {
            return;
        }
        if self.sock_drained {
            // Drained, re-armed, and the registration has not fired
            // since: the socket cannot hold unseen bytes, so skip the
            // guaranteed-`EAGAIN` read. (Without a poller the flag is
            // absent and every pump reads — correct, just slower.)
            match &self.poll_ready {
                Some(ready) if !ready.swap(false, Ordering::AcqRel) => return,
                _ => self.sock_drained = false,
            }
        }
        let mut chunk = [0u8; TCP_READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => self.decoder.extend(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let (Some(poller), Some(token)) = (&self.poller, self.poll_token) {
                        poller.rearm(token);
                        self.sock_drained = true;
                    }
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if self.fault.is_none() {
                        self.fault = Some(e);
                    }
                    self.eof = true;
                    break;
                }
            }
        }
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    self.meter.record(self.role.inbound(), frame.len() as u64);
                    self.inbound.push_back(frame);
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing error (over-cap length prefix): the
                    // stream position is unrecoverable — fault once and
                    // tear the connection down.
                    if self.fault.is_none() {
                        self.fault = Some(match e {
                            TransportError::Io(io) => io,
                            other => std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                other.to_string(),
                            ),
                        });
                    }
                    self.eof = true;
                    self.decoder.clear();
                    break;
                }
            }
        }
        if self.eof && self.decoder.has_partial() {
            // EOF mid-frame: a truncated stream, reported exactly once
            // as the fault the blocking `read_frame` would have raised.
            if self.fault.is_none() {
                self.fault = Some(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            self.decoder.clear();
        }
    }

    /// Sleep in `poll(2)` on this fd until it is readable (or writable,
    /// when a flush is pending), `timeout_ms` elapses, or an error
    /// lands. `-1` blocks indefinitely.
    fn wait_io(&mut self, timeout_ms: i32) -> Result<(), TransportError> {
        let mut events = libc::POLLIN;
        if self.outbound_pending() > 0 {
            events |= libc::POLLOUT;
        }
        let mut fds = [libc::pollfd {
            fd: self.stream.as_raw_fd(),
            events,
            revents: 0,
        }];
        libc::poll_fds(&mut fds, timeout_ms).map_err(TransportError::Io)?;
        // This direct probe may have observed readiness the poller
        // hasn't reported; the next pump must read.
        self.sock_drained = false;
        Ok(())
    }

    /// Pop the next already-pumped frame, decoding it to a message.
    fn pop_inbound(&mut self) -> Result<Option<Message>, TransportError> {
        match self.inbound.pop_front() {
            Some(frame) => Ok(Some(Message::decode(frame)?)),
            None => Ok(None),
        }
    }
}

impl Transport for TcpTransport {
    fn role(&self) -> Role {
        self.role
    }

    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let payload = msg.encode();
        self.meter
            .record(self.role.outbound(), payload.len() as u64);
        self.outbound
            .extend_from_slice(&(payload.len() as u32).to_be_bytes());
        self.outbound.extend_from_slice(&payload);
        self.flush_outbound()?;
        // Backpressure: past the cap, wait for the kernel to drain —
        // but keep servicing reads meanwhile, so two endpoints flooding
        // each other make progress instead of deadlocking.
        while self.outbound_pending() > TCP_OUTBOUND_CAP {
            self.wait_io(-1)?;
            self.pump();
            if let Some(e) = self.fault.take() {
                return Err(TransportError::Io(e));
            }
            self.flush_outbound()?;
            if self.eof && self.outbound_pending() > TCP_OUTBOUND_CAP {
                // Peer is gone and the kernel buffer is wedged full.
                return Err(TransportError::Closed);
            }
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        self.pump();
        if let Some(msg) = self.pop_inbound()? {
            return Ok(Some(msg));
        }
        if let Some(fault) = self.take_fault() {
            return Err(fault);
        }
        Ok(None)
    }

    fn recv(&mut self) -> Result<Option<Message>, TransportError> {
        loop {
            self.pump();
            if let Some(msg) = self.pop_inbound()? {
                return Ok(Some(msg));
            }
            if let Some(fault) = self.take_fault() {
                return Err(fault);
            }
            if self.eof || self.closed {
                return Ok(None); // peer hung up cleanly
            }
            self.wait_io(-1)?;
        }
    }

    fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            self.pump();
            if let Some(msg) = self.pop_inbound()? {
                return Ok(Some(msg));
            }
            if let Some(fault) = self.take_fault() {
                return Err(fault);
            }
            if self.eof || self.closed {
                return Ok(None); // peer hung up cleanly
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(TransportError::Timeout);
            };
            let ms = remaining.as_millis().min(i32::MAX as u128).max(1) as i32;
            self.wait_io(ms)?;
        }
    }

    fn drain_into(&mut self, out: &mut Vec<Message>, max: usize) -> Result<usize, TransportError> {
        // One service pass, then decode straight out of the frame
        // queue: the whole batch costs one read syscall sequence.
        self.pump();
        let take = self.inbound.len().min(max);
        for _ in 0..take {
            let frame = self.inbound.pop_front().expect("counted above");
            out.push(Message::decode(frame)?);
        }
        if take == 0 {
            if let Some(fault) = self.take_fault() {
                return Err(fault);
            }
        }
        Ok(take)
    }

    fn has_inbound(&mut self) -> bool {
        // The pump stashes — not swallows — any fault this probe
        // uncovers, so the next receive reports it instead of reading
        // clean EOF.
        self.pump();
        !self.inbound.is_empty()
    }

    fn poll(&mut self) -> Result<Readiness, TransportError> {
        self.pump();
        if !self.inbound.is_empty() {
            return Ok(Readiness::Ready);
        }
        if let Some(fault) = self.take_fault() {
            return Err(fault);
        }
        if self.eof || self.closed {
            Ok(Readiness::Closed)
        } else {
            Ok(Readiness::Idle)
        }
    }

    fn set_waker(&mut self, waker: Arc<PollWaker>) -> bool {
        match &self.poller {
            Some(poller) => {
                if let Some(token) = self.poll_token.take() {
                    poller.deregister(token);
                }
                let token = poller.register(self.stream.as_raw_fd(), waker);
                self.poll_token = Some(token);
                self.poll_ready = poller.readiness(token);
                self.sock_drained = false;
                true
            }
            // No poller thread to watch the fd: wake-ups cannot be
            // delivered, and claiming otherwise would stall the caller.
            None => false,
        }
    }

    fn meter(&self) -> &TransferMeter {
        &self.meter
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::QueryId;
    use eca_relational::{SignedBag, Tuple, Update};
    use std::net::TcpListener;

    fn notification(n: i64) -> Message {
        Message::UpdateNotification {
            update: Update::insert("r1", Tuple::ints([n, n + 1])),
        }
    }

    #[test]
    fn in_memory_pair_is_fifo_and_metered() {
        let meter = TransferMeter::new();
        let (mut src, mut wh) = InMemoryFifo::pair(meter.clone());
        assert_eq!(src.role(), Role::Source);
        assert_eq!(wh.role(), Role::Warehouse);

        src.send(&notification(1)).unwrap();
        src.send(&notification(2)).unwrap();
        assert!(wh.has_inbound());
        assert!(!src.has_inbound());
        assert_eq!(wh.try_recv().unwrap(), Some(notification(1)));
        assert_eq!(wh.recv().unwrap(), Some(notification(2)));
        assert_eq!(wh.try_recv().unwrap(), None);

        assert_eq!(meter.messages_s2w(), 2);
        assert_eq!(
            meter.bytes_s2w(),
            (notification(1).encoded_len() + notification(2).encoded_len()) as u64
        );
        assert_eq!(meter.messages_w2s(), 0);
    }

    #[test]
    fn in_memory_directions_are_independent() {
        let (mut src, mut wh) = InMemoryFifo::pair(TransferMeter::new());
        let query = Message::QueryAnswer {
            id: QueryId(1),
            answer: SignedBag::new(),
        };
        src.send(&query).unwrap();
        wh.send(&notification(9)).unwrap();
        assert_eq!(src.try_recv().unwrap(), Some(notification(9)));
        assert_eq!(wh.try_recv().unwrap(), Some(query));
    }

    #[test]
    fn frame_roundtrip_over_buffer() {
        let msgs = [notification(1), notification(2)];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            let frame = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&Message::decode(frame).unwrap(), m);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &notification(1)).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(TransportError::Io(_)),));
    }

    #[test]
    fn capped_read_rejects_oversized_prefix_before_allocating() {
        // A garbage prefix claiming a ~4 GiB frame must fail on the cap
        // check, not attempt the allocation.
        let mut r: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        let Err(TransportError::Io(e)) = read_frame_capped(&mut r, 256) else {
            panic!("oversized prefix accepted");
        };
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        // In-cap frames decode identically to the uncapped reader.
        let mut buf = Vec::new();
        write_frame(&mut buf, &notification(3)).unwrap();
        let mut r = &buf[..];
        let frame = read_frame_capped(&mut r, buf.len()).unwrap().unwrap();
        assert_eq!(Message::decode(frame).unwrap(), notification(3));
        assert!(
            read_frame_capped(&mut r, 256).unwrap().is_none(),
            "clean EOF"
        );
    }

    #[test]
    fn tcp_pair_roundtrips_and_meters_both_ends() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            // Echo protocol: read two notifications, send one query back.
            let a = wh.recv().unwrap().unwrap();
            let b = wh.recv().unwrap().unwrap();
            wh.send(&Message::QueryAnswer {
                id: QueryId(5),
                answer: SignedBag::new(),
            })
            .unwrap();
            (a, b, wh.meter().clone())
        });

        let meter = TransferMeter::new();
        let mut src = TcpTransport::connect(addr, Role::Source, meter.clone()).unwrap();
        src.send(&notification(1)).unwrap();
        src.send(&notification(2)).unwrap();
        let back = src.recv().unwrap().unwrap();
        assert!(matches!(back, Message::QueryAnswer { .. }));

        let (a, b, wh_meter) = server.join().unwrap();
        assert_eq!(a, notification(1));
        assert_eq!(b, notification(2));
        // FIFO order preserved; both meters saw the same s2w totals.
        assert_eq!(meter.messages_s2w(), 2);
        assert_eq!(wh_meter.messages_s2w(), 2);
        assert_eq!(meter.bytes_s2w(), wh_meter.bytes_s2w());
        // And the w2s answer was charged on receive at the source.
        assert_eq!(meter.messages_w2s(), 1);
    }

    #[test]
    fn shared_fifo_is_fifo_and_metered() {
        let meter = TransferMeter::new();
        let (mut src, mut wh) = SharedFifo::pair(meter.clone());
        assert_eq!(src.role(), Role::Source);
        src.send(&notification(1)).unwrap();
        src.send(&notification(2)).unwrap();
        assert!(wh.has_inbound());
        assert_eq!(wh.poll().unwrap(), Readiness::Ready);
        assert_eq!(wh.try_recv().unwrap(), Some(notification(1)));
        assert_eq!(wh.recv().unwrap(), Some(notification(2)));
        assert_eq!(wh.try_recv().unwrap(), None);
        assert_eq!(wh.poll().unwrap(), Readiness::Idle);
        assert_eq!(meter.messages_s2w(), 2);
        assert_eq!(
            meter.bytes_s2w(),
            (notification(1).encoded_len() + notification(2).encoded_len()) as u64
        );
    }

    #[test]
    fn shared_fifo_recv_blocks_until_send() {
        let (mut src, mut wh) = SharedFifo::pair(TransferMeter::new());
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            src.send(&notification(7)).unwrap();
            src // keep the endpoint alive until the message is read
        });
        assert_eq!(wh.recv().unwrap(), Some(notification(7)));
        sender.join().unwrap();
    }

    #[test]
    fn shared_fifo_peer_drop_wakes_and_closes() {
        let (src, mut wh) = SharedFifo::pair(TransferMeter::new());
        let dropper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(src);
        });
        // Blocks until the drop, then reports a clean hang-up.
        assert_eq!(wh.recv().unwrap(), None);
        assert_eq!(wh.poll().unwrap(), Readiness::Closed);
        dropper.join().unwrap();
    }

    #[test]
    fn shared_fifo_send_to_closed_peer_errors_but_drains_queued() {
        let (mut src, wh) = SharedFifo::pair(TransferMeter::new());
        src.send(&notification(3)).unwrap();
        drop(wh);
        assert!(matches!(
            src.send(&notification(4)),
            Err(TransportError::Closed)
        ));
        // The source end can still drain anything the peer sent earlier.
        let (mut src2, mut wh2) = SharedFifo::pair(TransferMeter::new());
        wh2.send(&notification(9)).unwrap();
        drop(wh2);
        assert_eq!(src2.poll().unwrap(), Readiness::Ready);
        assert_eq!(src2.recv().unwrap(), Some(notification(9)));
        assert_eq!(src2.recv().unwrap(), None);
    }

    #[test]
    fn bounded_fifo_send_blocks_until_receiver_drains() {
        let (mut src, mut wh) = SharedFifo::bounded_pair(TransferMeter::new(), 2);
        src.send(&notification(1)).unwrap();
        src.send(&notification(2)).unwrap();
        // Queue full: the third send must park until a slot frees.
        let third = std::thread::spawn(move || {
            src.send(&notification(3)).unwrap();
            src
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!third.is_finished(), "send must block at capacity");
        assert_eq!(wh.recv().unwrap(), Some(notification(1)));
        let mut src = third.join().unwrap(); // unblocked by the pop
        assert_eq!(wh.recv().unwrap(), Some(notification(2)));
        assert_eq!(wh.recv().unwrap(), Some(notification(3)));
        // Directions are bounded independently; w2s still has room.
        wh.send(&notification(9)).unwrap();
        assert_eq!(src.recv().unwrap(), Some(notification(9)));
    }

    #[test]
    fn bounded_fifo_send_errors_when_peer_drops_mid_wait() {
        let (mut src, wh) = SharedFifo::bounded_pair(TransferMeter::new(), 1);
        src.send(&notification(1)).unwrap();
        let blocked = std::thread::spawn(move || src.send(&notification(2)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(wh); // peer gone: the parked sender must error, not hang
        assert!(matches!(
            blocked.join().unwrap(),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn poll_waker_wait_returns_immediately_after_missed_notify() {
        let waker = PollWaker::new();
        let seen = waker.epoch();
        waker.notify(); // lands between epoch() and wait(): must not be lost
        let start = std::time::Instant::now();
        assert!(waker.wait(seen, std::time::Duration::from_secs(5)));
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
        // No event since: a fresh snapshot times out.
        let seen = waker.epoch();
        assert!(!waker.wait(seen, std::time::Duration::from_millis(10)));
    }

    #[test]
    fn shared_fifo_send_notifies_registered_waker() {
        let (mut src, mut wh) = SharedFifo::pair(TransferMeter::new());
        let waker = PollWaker::new();
        assert!(wh.set_waker(Arc::clone(&waker)));
        let seen = waker.epoch();
        assert_eq!(wh.poll().unwrap(), Readiness::Idle);
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            src.send(&notification(4)).unwrap();
            src
        });
        assert!(waker.wait(seen, std::time::Duration::from_secs(5)));
        assert_eq!(wh.poll().unwrap(), Readiness::Ready);
        assert_eq!(wh.try_recv().unwrap(), Some(notification(4)));
        // Peer drop also notifies, so a parked loop observes Closed.
        let seen = waker.epoch();
        drop(sender.join().unwrap());
        assert!(waker.wait(seen, std::time::Duration::from_secs(5)));
        assert_eq!(wh.poll().unwrap(), Readiness::Closed);
    }

    #[test]
    fn tcp_poller_notifies_registered_waker() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            wh.send(&notification(1)).unwrap();
            // Dropped afterwards: the client waker must also see Closed.
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        let waker = PollWaker::new();
        // Without a poller there is nothing to watch the fd, so the
        // transport must refuse the registration...
        assert!(!src.set_waker(Arc::clone(&waker)));
        // ...and accept it once one is attached.
        let poller = crate::Poller::new().unwrap();
        src.attach_poller(Arc::clone(&poller));
        assert!(src.set_waker(Arc::clone(&waker)));
        let mut seen = waker.epoch();
        loop {
            match src.poll().unwrap() {
                Readiness::Ready => break,
                Readiness::Idle => {
                    waker.wait(seen, std::time::Duration::from_secs(5));
                    seen = waker.epoch();
                }
                Readiness::Closed => panic!("closed before delivering"),
            }
        }
        assert_eq!(src.try_recv().unwrap(), Some(notification(1)));
        server.join().unwrap();
        let mut seen = waker.epoch();
        loop {
            match src.poll().unwrap() {
                Readiness::Closed => break,
                _ => {
                    waker.wait(seen, std::time::Duration::from_secs(5));
                    seen = waker.epoch();
                }
            }
        }
    }

    #[test]
    fn in_memory_poll_observes_peer_drop() {
        let (mut src, wh) = InMemoryFifo::pair(TransferMeter::new());
        assert_eq!(src.poll().unwrap(), Readiness::Idle);
        drop(wh);
        assert_eq!(src.poll().unwrap(), Readiness::Closed);
    }

    #[test]
    fn tcp_poll_distinguishes_idle_ready_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            wh.send(&notification(1)).unwrap();
            // Hold the connection open until told to close.
            wh.recv().unwrap()
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        // Wait for the in-flight message, then observe Ready without
        // consuming it.
        while src.poll().unwrap() == Readiness::Idle {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(src.poll().unwrap(), Readiness::Ready);
        assert_eq!(src.try_recv().unwrap(), Some(notification(1)));
        src.send(&notification(2)).unwrap(); // lets the server exit
        server.join().unwrap();
        // Server side dropped: eventually Closed.
        loop {
            match src.poll().unwrap() {
                Readiness::Closed => break,
                _ => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
    }

    #[test]
    fn tcp_drop_then_reconnect_leaves_no_stuck_state() {
        // Two full connect/drop cycles against fresh listeners: each drop
        // must join its reader thread (close() is drop-invoked), so the
        // second cycle starts clean and the test exits without leaks.
        for round in 0..2 {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let mut wh =
                    TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
                let got = wh.recv().unwrap();
                wh.close(); // explicit close before drop: must be idempotent
                got
            });
            let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
            src.send(&notification(round)).unwrap();
            assert_eq!(server.join().unwrap(), Some(notification(round)));
            src.close();
            drop(src); // close() then drop: second close is a no-op
        }
    }

    #[test]
    fn in_memory_recv_timeout_never_sleeps() {
        let (mut src, wh) = InMemoryFifo::pair(TransferMeter::new());
        // Empty but connected: immediate Timeout (nothing can arrive).
        assert!(matches!(
            src.recv_timeout(std::time::Duration::from_secs(60)),
            Err(TransportError::Timeout)
        ));
        drop(wh);
        // Peer gone: clean hang-up, not a timeout.
        assert_eq!(
            src.recv_timeout(std::time::Duration::from_secs(60))
                .unwrap(),
            None
        );
    }

    #[test]
    fn shared_fifo_recv_timeout_times_out_then_delivers() {
        let (mut src, mut wh) = SharedFifo::pair(TransferMeter::new());
        // Wedged peer: connected but silent.
        assert!(matches!(
            wh.recv_timeout(std::time::Duration::from_millis(20)),
            Err(TransportError::Timeout)
        ));
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            src.send(&notification(7)).unwrap();
            src
        });
        assert_eq!(
            wh.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            Some(notification(7))
        );
        let src = sender.join().unwrap();
        drop(src);
        // After hang-up the bounded wait reports None, like recv().
        assert_eq!(
            wh.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            None
        );
    }

    #[test]
    fn tcp_recv_timeout_on_wedged_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            // Wedge: hold the connection open, send nothing, until told.
            wh.recv().unwrap()
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        assert!(matches!(
            src.recv_timeout(std::time::Duration::from_millis(30)),
            Err(TransportError::Timeout)
        ));
        src.send(&notification(1)).unwrap(); // release the server
        server.join().unwrap();
    }

    #[test]
    fn tcp_reader_fault_survives_has_inbound_probe() {
        use std::io::Write as _;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // A frame header promising 100 bytes, then only 3, then a
            // hard close: a truncated frame, not clean EOF.
            stream.write_all(&100u32.to_be_bytes()).unwrap();
            stream.write_all(&[1, 2, 3]).unwrap();
            stream.flush().unwrap();
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        server.join().unwrap();
        // Probe until the reader thread has observed the truncation. The
        // probe itself must not swallow the fault...
        loop {
            if src.has_inbound() {
                panic!("no complete frame should ever arrive");
            }
            if src.fault.is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // ...so the next receive reports Io (with the real ErrorKind)
        // rather than the clean-EOF `Ok(None)`.
        match src.recv() {
            Err(TransportError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected Io fault, got {other:?}"),
        }
        // The fault is reported once; afterwards the channel reads closed.
        assert_eq!(src.recv().unwrap(), None);
    }

    #[test]
    fn tcp_recv_none_after_peer_drop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            wh.send(&notification(3)).unwrap();
            // Dropped here: the source should read the message then EOF.
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        assert_eq!(src.recv().unwrap(), Some(notification(3)));
        assert_eq!(src.recv().unwrap(), None);
        server.join().unwrap();
    }
}
