//! Pluggable transports carrying [`Message`]s between source and
//! warehouse.
//!
//! The paper (§3) assumes only that source and warehouse are joined by
//! reliable FIFO channels; everything else — timing, batching, the
//! physical medium — is up to the deployment. [`Transport`] captures
//! exactly that contract: an *endpoint* of a bidirectional channel whose
//! two directions are independently FIFO, with every message charged to a
//! [`TransferMeter`] in its direction of travel. Two implementations:
//!
//! * [`InMemoryFifo`] — a deterministic in-process pair used by `eca-sim`.
//!   Messages still round-trip through the codec on every delivery, so
//!   byte counts are measured on real encodings and decode faults surface
//!   exactly as they would on a real link.
//! * [`TcpTransport`] — length-prefixed frames over `std::net::TcpStream`
//!   with one reader thread per peer. TCP's in-order delivery preserves
//!   the §3 ordering assumption per connection.
//!
//! Metering convention: each message is charged once per meter, in its
//! direction of travel. The [`InMemoryFifo`] pair shares one meter and
//! charges at send time; each [`TcpTransport`] endpoint owns its meter and
//! charges sends at write time and receives at decode time, so either
//! side of a real deployment observes the same per-direction totals the
//! simulator would.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;

use crate::codec::DecodeError;
use crate::message::Message;
use crate::meter::{Direction, TransferMeter};

/// Which site an endpoint belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// The autonomous source: sends notifications and answers, receives
    /// queries.
    Source,
    /// The warehouse: sends queries, receives notifications and answers.
    Warehouse,
}

impl Role {
    /// The direction of travel for messages sent from this endpoint.
    pub fn outbound(self) -> Direction {
        match self {
            Role::Source => Direction::SourceToWarehouse,
            Role::Warehouse => Direction::WarehouseToSource,
        }
    }

    /// The direction of travel for messages arriving at this endpoint.
    pub fn inbound(self) -> Direction {
        match self {
            Role::Source => Direction::WarehouseToSource,
            Role::Warehouse => Direction::SourceToWarehouse,
        }
    }

    /// The peer's role.
    pub fn other(self) -> Role {
        match self {
            Role::Source => Role::Warehouse,
            Role::Warehouse => Role::Source,
        }
    }
}

/// Errors surfaced by a transport.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the channel while a send or receive was required.
    Closed,
    /// An inbound frame failed to decode.
    Decode(DecodeError),
    /// An I/O fault on the underlying medium.
    Io(std::io::Error),
    /// A bounded wait ([`Transport::recv_timeout`]) elapsed with the peer
    /// still connected but silent — the channel may be wedged.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by peer"),
            TransportError::Decode(e) => write!(f, "inbound frame failed to decode: {e}"),
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::Timeout => write!(f, "timed out waiting for inbound message"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Decode(e) => Some(e),
            TransportError::Io(e) => Some(e),
            TransportError::Closed | TransportError::Timeout => None,
        }
    }
}

impl From<DecodeError> for TransportError {
    fn from(e: DecodeError) -> Self {
        TransportError::Decode(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// What a non-blocking readiness probe observed on an endpoint.
///
/// `poll` is the third leg of the receive API next to `try_recv`
/// (non-blocking take) and `recv` (blocking take): it distinguishes "the
/// channel is merely idle right now" from "the peer is gone and nothing
/// further will ever arrive", which `try_recv`'s `Ok(None)` conflates. A
/// pump loop that must never park on an idle source polls every channel
/// and only blocks once it knows which ones are still live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Readiness {
    /// At least one inbound message can be taken right now without
    /// blocking.
    Ready,
    /// Nothing is queued, but the peer is still connected and may send
    /// more.
    Idle,
    /// Nothing is queued and the peer has hung up: no message will ever
    /// arrive again.
    Closed,
}

/// One endpoint of a reliable, per-direction-FIFO message channel.
pub trait Transport {
    /// Which site this endpoint belongs to.
    fn role(&self) -> Role;

    /// Send a message toward the peer, charging the meter.
    ///
    /// # Errors
    /// [`TransportError::Closed`] / [`TransportError::Io`] when the peer
    /// is unreachable.
    fn send(&mut self, msg: &Message) -> Result<(), TransportError>;

    /// Take the oldest inbound message without blocking. `Ok(None)` means
    /// nothing is available *right now* (the peer may still send more).
    ///
    /// # Errors
    /// [`TransportError::Decode`] on a malformed frame.
    fn try_recv(&mut self) -> Result<Option<Message>, TransportError>;

    /// Block until an inbound message arrives. `Ok(None)` means the peer
    /// hung up cleanly and no further message will ever arrive. The
    /// in-memory transport never blocks: its `Ok(None)` means the queue
    /// is currently empty.
    ///
    /// # Errors
    /// [`TransportError::Decode`] on a malformed frame.
    fn recv(&mut self) -> Result<Option<Message>, TransportError>;

    /// Block until an inbound message arrives or `timeout` elapses.
    ///
    /// `Ok(None)` means the peer hung up cleanly. A wedged peer — still
    /// connected but silent past the deadline — yields
    /// [`TransportError::Timeout`] instead of hanging the caller forever,
    /// which is the failure mode a plain [`Transport::recv`] cannot
    /// escape. The default implementation polls with a short sleep;
    /// transports with real blocking primitives override it.
    ///
    /// # Errors
    /// [`TransportError::Timeout`] when the deadline passes;
    /// [`TransportError::Decode`] on a malformed frame.
    fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(msg) = self.try_recv()? {
                return Ok(Some(msg));
            }
            if self.poll()? == Readiness::Closed {
                return Ok(None);
            }
            if std::time::Instant::now() >= deadline {
                return Err(TransportError::Timeout);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Whether an inbound message is available now (may decode and buffer
    /// one frame internally).
    fn has_inbound(&mut self) -> bool;

    /// Probe the inbound direction without blocking or consuming a
    /// message. The default cannot observe peer departure and never
    /// returns [`Readiness::Closed`]; transports that can tell the
    /// difference override it.
    ///
    /// # Errors
    /// Transport faults surfaced by the probe (e.g. a reader-thread I/O
    /// error).
    fn poll(&mut self) -> Result<Readiness, TransportError> {
        if self.has_inbound() {
            Ok(Readiness::Ready)
        } else {
            Ok(Readiness::Idle)
        }
    }

    /// The meter charged by this endpoint.
    fn meter(&self) -> &TransferMeter;
}

// ---------------------------------------------------------------------------
// Framing, shared by every byte-stream transport.
// ---------------------------------------------------------------------------

/// Write one message as a `u32`-big-endian-length-prefixed frame.
///
/// The 4-byte prefix is transport overhead and is *not* charged to the
/// meter, keeping the paper's `B`/`M` accounting identical across
/// transports.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> Result<(), TransportError> {
    let payload = msg.encode();
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
/// [`TransportError::Io`] on truncated frames or I/O faults (the message
/// itself is *not* decoded here — pair with [`Message::decode`]).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Bytes>, TransportError> {
    let mut len_buf = [0u8; 4];
    // EOF before any length byte is a clean shutdown; EOF mid-prefix or
    // mid-payload is a truncated frame.
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(Bytes::from(payload)))
}

// ---------------------------------------------------------------------------
// In-memory pair.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Link {
    s2w: VecDeque<Bytes>,
    w2s: VecDeque<Bytes>,
}

impl Link {
    fn queue_mut(&mut self, direction: Direction) -> &mut VecDeque<Bytes> {
        match direction {
            Direction::SourceToWarehouse => &mut self.s2w,
            Direction::WarehouseToSource => &mut self.w2s,
        }
    }

    fn queue(&self, direction: Direction) -> &VecDeque<Bytes> {
        match direction {
            Direction::SourceToWarehouse => &self.s2w,
            Direction::WarehouseToSource => &self.w2s,
        }
    }
}

/// One endpoint of a deterministic in-process FIFO pair.
///
/// Both endpoints share a single [`TransferMeter`] (charged at send time)
/// and the same pair of byte queues, so a driver holding both ends — the
/// simulator — observes exactly the channel state the paper's event model
/// requires. Messages are stored *encoded*; every receive decodes, so
/// codec faults surface on delivery just as on a real link.
pub struct InMemoryFifo {
    role: Role,
    link: Rc<RefCell<Link>>,
    meter: TransferMeter,
}

impl InMemoryFifo {
    /// A connected `(source endpoint, warehouse endpoint)` pair sharing
    /// `meter`.
    pub fn pair(meter: TransferMeter) -> (InMemoryFifo, InMemoryFifo) {
        let link = Rc::new(RefCell::new(Link::default()));
        (
            InMemoryFifo {
                role: Role::Source,
                link: Rc::clone(&link),
                meter: meter.clone(),
            },
            InMemoryFifo {
                role: Role::Warehouse,
                link,
                meter,
            },
        )
    }
}

impl Transport for InMemoryFifo {
    fn role(&self) -> Role {
        self.role
    }

    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let payload = msg.encode();
        self.meter
            .record(self.role.outbound(), payload.len() as u64);
        self.link
            .borrow_mut()
            .queue_mut(self.role.outbound())
            .push_back(payload);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        let popped = self
            .link
            .borrow_mut()
            .queue_mut(self.role.inbound())
            .pop_front();
        match popped {
            Some(payload) => Ok(Some(Message::decode(payload)?)),
            None => Ok(None),
        }
    }

    fn recv(&mut self) -> Result<Option<Message>, TransportError> {
        // In-process queues cannot block; an empty queue reads as "no
        // message pending", which a deterministic driver interprets via
        // `has_inbound` anyway.
        self.try_recv()
    }

    fn recv_timeout(
        &mut self,
        _timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        // Single-threaded: nothing can arrive while we wait, so an empty
        // queue times out immediately rather than sleeping pointlessly.
        if let Some(msg) = self.try_recv()? {
            return Ok(Some(msg));
        }
        if self.poll()? == Readiness::Closed {
            return Ok(None);
        }
        Err(TransportError::Timeout)
    }

    fn has_inbound(&mut self) -> bool {
        !self.link.borrow().queue(self.role.inbound()).is_empty()
    }

    fn poll(&mut self) -> Result<Readiness, TransportError> {
        if self.has_inbound() {
            Ok(Readiness::Ready)
        } else if Rc::strong_count(&self.link) == 1 {
            // `pair` hands out exactly two handles to the link; being the
            // only one left means the peer endpoint was dropped.
            Ok(Readiness::Closed)
        } else {
            Ok(Readiness::Idle)
        }
    }

    fn meter(&self) -> &TransferMeter {
        &self.meter
    }
}

// ---------------------------------------------------------------------------
// Thread-safe in-memory pair.
// ---------------------------------------------------------------------------

struct SharedLink {
    s2w: VecDeque<Bytes>,
    w2s: VecDeque<Bytes>,
    source_open: bool,
    warehouse_open: bool,
}

impl SharedLink {
    fn queue_mut(&mut self, direction: Direction) -> &mut VecDeque<Bytes> {
        match direction {
            Direction::SourceToWarehouse => &mut self.s2w,
            Direction::WarehouseToSource => &mut self.w2s,
        }
    }

    fn open(&self, role: Role) -> bool {
        match role {
            Role::Source => self.source_open,
            Role::Warehouse => self.warehouse_open,
        }
    }

    fn close(&mut self, role: Role) {
        match role {
            Role::Source => self.source_open = false,
            Role::Warehouse => self.warehouse_open = false,
        }
    }
}

/// The [`InMemoryFifo`] semantics behind `Send` + blocking primitives: the
/// in-process transport for *threaded* deployments (the concurrent
/// warehouse runtime and its throughput benchmarks).
///
/// Differences from [`InMemoryFifo`], which remains the deterministic
/// single-threaded simulator transport:
///
/// * endpoints can move across threads (`Arc<Mutex>` instead of
///   `Rc<RefCell>`),
/// * [`Transport::recv`] genuinely blocks until a message arrives or the
///   peer hangs up (returning `Ok(None)` only for a hang-up, exactly like
///   [`TcpTransport`]), and
/// * dropping an endpoint closes its side, waking any blocked peer.
///
/// Metering matches [`InMemoryFifo`]: the pair shares one
/// [`TransferMeter`] charged at send time, and messages round-trip
/// through the codec on every delivery.
pub struct SharedFifo {
    role: Role,
    link: Arc<(Mutex<SharedLink>, Condvar)>,
    meter: TransferMeter,
}

impl SharedFifo {
    /// A connected `(source endpoint, warehouse endpoint)` pair sharing
    /// `meter`.
    pub fn pair(meter: TransferMeter) -> (SharedFifo, SharedFifo) {
        let link = Arc::new((
            Mutex::new(SharedLink {
                s2w: VecDeque::new(),
                w2s: VecDeque::new(),
                source_open: true,
                warehouse_open: true,
            }),
            Condvar::new(),
        ));
        (
            SharedFifo {
                role: Role::Source,
                link: Arc::clone(&link),
                meter: meter.clone(),
            },
            SharedFifo {
                role: Role::Warehouse,
                link,
                meter,
            },
        )
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedLink> {
        // A poisoned link means a peer thread panicked mid-send; the
        // queues themselves are always in a consistent state (every
        // mutation is a single push/pop), so continuing is sound.
        match self.link.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Transport for SharedFifo {
    fn role(&self) -> Role {
        self.role
    }

    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        let payload = msg.encode();
        {
            let mut link = self.lock();
            if !link.open(self.role.other()) {
                return Err(TransportError::Closed);
            }
            link.queue_mut(self.role.outbound())
                .push_back(payload.clone());
        }
        self.meter
            .record(self.role.outbound(), payload.len() as u64);
        self.link.1.notify_all();
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        let popped = self.lock().queue_mut(self.role.inbound()).pop_front();
        match popped {
            Some(payload) => Ok(Some(Message::decode(payload)?)),
            None => Ok(None),
        }
    }

    fn recv(&mut self) -> Result<Option<Message>, TransportError> {
        let mut link = self.lock();
        loop {
            if let Some(payload) = link.queue_mut(self.role.inbound()).pop_front() {
                drop(link);
                return Ok(Some(Message::decode(payload)?));
            }
            if !link.open(self.role.other()) {
                return Ok(None); // peer hung up cleanly
            }
            link = match self.link.1.wait(link) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut link = self.lock();
        loop {
            if let Some(payload) = link.queue_mut(self.role.inbound()).pop_front() {
                drop(link);
                return Ok(Some(Message::decode(payload)?));
            }
            if !link.open(self.role.other()) {
                return Ok(None); // peer hung up cleanly
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(TransportError::Timeout);
            };
            link = match self.link.1.wait_timeout(link, remaining) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    fn has_inbound(&mut self) -> bool {
        !self.lock().queue_mut(self.role.inbound()).is_empty()
    }

    fn poll(&mut self) -> Result<Readiness, TransportError> {
        let mut link = self.lock();
        if !link.queue_mut(self.role.inbound()).is_empty() {
            Ok(Readiness::Ready)
        } else if !link.open(self.role.other()) {
            Ok(Readiness::Closed)
        } else {
            Ok(Readiness::Idle)
        }
    }

    fn meter(&self) -> &TransferMeter {
        &self.meter
    }
}

impl Drop for SharedFifo {
    fn drop(&mut self) {
        self.lock().close(self.role);
        self.link.1.notify_all();
    }
}

// ---------------------------------------------------------------------------
// TCP.
// ---------------------------------------------------------------------------

/// A [`Transport`] over a real TCP connection.
///
/// Frames are length-prefixed ([`write_frame`]/[`read_frame`]); a
/// dedicated reader thread per peer drains the socket into an internal
/// queue so `try_recv`/`has_inbound` never block. TCP delivers in order,
/// preserving the paper's §3 FIFO-channel assumption per connection.
pub struct TcpTransport {
    role: Role,
    writer: TcpStream,
    inbound: mpsc::Receiver<Result<Bytes, std::io::Error>>,
    /// Frames observed by `has_inbound` (already metered) awaiting decode.
    peeked: VecDeque<Bytes>,
    /// A reader-thread I/O fault observed by a probe before any `recv`
    /// asked for it. Surfaced (once) by the next receive or poll, so a
    /// mid-stream error is never mistaken for clean EOF.
    fault: Option<std::io::Error>,
    meter: TransferMeter,
    /// Set by [`TcpTransport::close`]/drop before the socket shutdown so
    /// the reader thread exits its loop even if a frame races the
    /// shutdown onto the wire.
    shutdown: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

impl TcpTransport {
    /// Wrap an established stream. Spawns the reader thread.
    ///
    /// # Errors
    /// Propagates stream-clone failures.
    pub fn new(stream: TcpStream, role: Role, meter: TransferMeter) -> std::io::Result<Self> {
        let mut read_half = stream.try_clone()?;
        let (tx, rx) = mpsc::channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader_shutdown = Arc::clone(&shutdown);
        let reader = std::thread::Builder::new()
            .name(format!("eca-wire-reader-{role:?}"))
            .spawn(move || loop {
                if reader_shutdown.load(Ordering::Acquire) {
                    break; // endpoint closing: stop even if bytes raced in
                }
                match read_frame(&mut read_half) {
                    Ok(Some(frame)) => {
                        if tx.send(Ok(frame)).is_err() {
                            break; // transport dropped
                        }
                    }
                    Ok(None) => break, // clean EOF
                    Err(TransportError::Io(e)) => {
                        if !reader_shutdown.load(Ordering::Acquire) {
                            let _ = tx.send(Err(e));
                        }
                        break;
                    }
                    Err(_) => break, // read_frame only raises Io
                }
            })?;
        Ok(TcpTransport {
            role,
            writer: stream,
            inbound: rx,
            peeked: VecDeque::new(),
            fault: None,
            meter,
            shutdown,
            reader: Some(reader),
        })
    }

    /// Hang up: signal the reader thread, shut the socket down in both
    /// directions, and join the reader. Idempotent; also invoked on drop,
    /// so no endpoint ever leaks a detached thread.
    pub fn close(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }

    /// Connect to a listening peer.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect(
        addr: impl ToSocketAddrs,
        role: Role,
        meter: TransferMeter,
    ) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        TcpTransport::new(stream, role, meter)
    }

    /// Meter and decode one raw inbound frame.
    fn accept(&mut self, frame: Bytes) -> Result<Message, TransportError> {
        self.meter.record(self.role.inbound(), frame.len() as u64);
        Ok(Message::decode(frame)?)
    }

    /// Surface a stashed reader-thread fault, if one is waiting.
    fn take_fault(&mut self) -> Option<TransportError> {
        self.fault.take().map(TransportError::Io)
    }
}

impl Transport for TcpTransport {
    fn role(&self) -> Role {
        self.role
    }

    fn send(&mut self, msg: &Message) -> Result<(), TransportError> {
        self.meter
            .record(self.role.outbound(), msg.encoded_len() as u64);
        write_frame(&mut self.writer, msg)
    }

    fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
        if let Some(frame) = self.peeked.pop_front() {
            // Already metered by `has_inbound`.
            return Ok(Some(Message::decode(frame)?));
        }
        if let Some(fault) = self.take_fault() {
            return Err(fault);
        }
        match self.inbound.try_recv() {
            Ok(Ok(frame)) => Ok(Some(self.accept(frame)?)),
            Ok(Err(e)) => Err(TransportError::Io(e)),
            Err(mpsc::TryRecvError::Empty) | Err(mpsc::TryRecvError::Disconnected) => Ok(None),
        }
    }

    fn recv(&mut self) -> Result<Option<Message>, TransportError> {
        if let Some(frame) = self.peeked.pop_front() {
            return Ok(Some(Message::decode(frame)?));
        }
        if let Some(fault) = self.take_fault() {
            return Err(fault);
        }
        match self.inbound.recv() {
            Ok(Ok(frame)) => Ok(Some(self.accept(frame)?)),
            Ok(Err(e)) => Err(TransportError::Io(e)),
            Err(mpsc::RecvError) => Ok(None), // peer hung up cleanly
        }
    }

    fn recv_timeout(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<Message>, TransportError> {
        if let Some(frame) = self.peeked.pop_front() {
            return Ok(Some(Message::decode(frame)?));
        }
        if let Some(fault) = self.take_fault() {
            return Err(fault);
        }
        match self.inbound.recv_timeout(timeout) {
            Ok(Ok(frame)) => Ok(Some(self.accept(frame)?)),
            Ok(Err(e)) => Err(TransportError::Io(e)),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(TransportError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Ok(None), // peer hung up cleanly
        }
    }

    fn has_inbound(&mut self) -> bool {
        if !self.peeked.is_empty() {
            return true;
        }
        match self.inbound.try_recv() {
            Ok(Ok(frame)) => {
                self.meter.record(self.role.inbound(), frame.len() as u64);
                self.peeked.push_back(frame);
                true
            }
            // Stash — not swallow — a reader fault seen by this probe, so
            // the next receive reports it instead of reading clean EOF.
            Ok(Err(e)) => {
                self.fault = Some(e);
                false
            }
            Err(_) => false,
        }
    }

    fn poll(&mut self) -> Result<Readiness, TransportError> {
        if !self.peeked.is_empty() {
            return Ok(Readiness::Ready);
        }
        if let Some(fault) = self.take_fault() {
            return Err(fault);
        }
        match self.inbound.try_recv() {
            Ok(Ok(frame)) => {
                self.meter.record(self.role.inbound(), frame.len() as u64);
                self.peeked.push_back(frame);
                Ok(Readiness::Ready)
            }
            Ok(Err(e)) => Err(TransportError::Io(e)),
            Err(mpsc::TryRecvError::Empty) => Ok(Readiness::Idle),
            // The reader thread is gone: clean EOF (or an already-reported
            // fault). Nothing further will ever arrive.
            Err(mpsc::TryRecvError::Disconnected) => Ok(Readiness::Closed),
        }
    }

    fn meter(&self) -> &TransferMeter {
        &self.meter
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::QueryId;
    use eca_relational::{SignedBag, Tuple, Update};
    use std::net::TcpListener;

    fn notification(n: i64) -> Message {
        Message::UpdateNotification {
            update: Update::insert("r1", Tuple::ints([n, n + 1])),
        }
    }

    #[test]
    fn in_memory_pair_is_fifo_and_metered() {
        let meter = TransferMeter::new();
        let (mut src, mut wh) = InMemoryFifo::pair(meter.clone());
        assert_eq!(src.role(), Role::Source);
        assert_eq!(wh.role(), Role::Warehouse);

        src.send(&notification(1)).unwrap();
        src.send(&notification(2)).unwrap();
        assert!(wh.has_inbound());
        assert!(!src.has_inbound());
        assert_eq!(wh.try_recv().unwrap(), Some(notification(1)));
        assert_eq!(wh.recv().unwrap(), Some(notification(2)));
        assert_eq!(wh.try_recv().unwrap(), None);

        assert_eq!(meter.messages_s2w(), 2);
        assert_eq!(
            meter.bytes_s2w(),
            (notification(1).encoded_len() + notification(2).encoded_len()) as u64
        );
        assert_eq!(meter.messages_w2s(), 0);
    }

    #[test]
    fn in_memory_directions_are_independent() {
        let (mut src, mut wh) = InMemoryFifo::pair(TransferMeter::new());
        let query = Message::QueryAnswer {
            id: QueryId(1),
            answer: SignedBag::new(),
        };
        src.send(&query).unwrap();
        wh.send(&notification(9)).unwrap();
        assert_eq!(src.try_recv().unwrap(), Some(notification(9)));
        assert_eq!(wh.try_recv().unwrap(), Some(query));
    }

    #[test]
    fn frame_roundtrip_over_buffer() {
        let msgs = [notification(1), notification(2)];
        let mut buf = Vec::new();
        for m in &msgs {
            write_frame(&mut buf, m).unwrap();
        }
        let mut r = &buf[..];
        for m in &msgs {
            let frame = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&Message::decode(frame).unwrap(), m);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &notification(1)).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(TransportError::Io(_)),));
    }

    #[test]
    fn tcp_pair_roundtrips_and_meters_both_ends() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            // Echo protocol: read two notifications, send one query back.
            let a = wh.recv().unwrap().unwrap();
            let b = wh.recv().unwrap().unwrap();
            wh.send(&Message::QueryAnswer {
                id: QueryId(5),
                answer: SignedBag::new(),
            })
            .unwrap();
            (a, b, wh.meter().clone())
        });

        let meter = TransferMeter::new();
        let mut src = TcpTransport::connect(addr, Role::Source, meter.clone()).unwrap();
        src.send(&notification(1)).unwrap();
        src.send(&notification(2)).unwrap();
        let back = src.recv().unwrap().unwrap();
        assert!(matches!(back, Message::QueryAnswer { .. }));

        let (a, b, wh_meter) = server.join().unwrap();
        assert_eq!(a, notification(1));
        assert_eq!(b, notification(2));
        // FIFO order preserved; both meters saw the same s2w totals.
        assert_eq!(meter.messages_s2w(), 2);
        assert_eq!(wh_meter.messages_s2w(), 2);
        assert_eq!(meter.bytes_s2w(), wh_meter.bytes_s2w());
        // And the w2s answer was charged on receive at the source.
        assert_eq!(meter.messages_w2s(), 1);
    }

    #[test]
    fn shared_fifo_is_fifo_and_metered() {
        let meter = TransferMeter::new();
        let (mut src, mut wh) = SharedFifo::pair(meter.clone());
        assert_eq!(src.role(), Role::Source);
        src.send(&notification(1)).unwrap();
        src.send(&notification(2)).unwrap();
        assert!(wh.has_inbound());
        assert_eq!(wh.poll().unwrap(), Readiness::Ready);
        assert_eq!(wh.try_recv().unwrap(), Some(notification(1)));
        assert_eq!(wh.recv().unwrap(), Some(notification(2)));
        assert_eq!(wh.try_recv().unwrap(), None);
        assert_eq!(wh.poll().unwrap(), Readiness::Idle);
        assert_eq!(meter.messages_s2w(), 2);
        assert_eq!(
            meter.bytes_s2w(),
            (notification(1).encoded_len() + notification(2).encoded_len()) as u64
        );
    }

    #[test]
    fn shared_fifo_recv_blocks_until_send() {
        let (mut src, mut wh) = SharedFifo::pair(TransferMeter::new());
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            src.send(&notification(7)).unwrap();
            src // keep the endpoint alive until the message is read
        });
        assert_eq!(wh.recv().unwrap(), Some(notification(7)));
        sender.join().unwrap();
    }

    #[test]
    fn shared_fifo_peer_drop_wakes_and_closes() {
        let (src, mut wh) = SharedFifo::pair(TransferMeter::new());
        let dropper = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(src);
        });
        // Blocks until the drop, then reports a clean hang-up.
        assert_eq!(wh.recv().unwrap(), None);
        assert_eq!(wh.poll().unwrap(), Readiness::Closed);
        dropper.join().unwrap();
    }

    #[test]
    fn shared_fifo_send_to_closed_peer_errors_but_drains_queued() {
        let (mut src, wh) = SharedFifo::pair(TransferMeter::new());
        src.send(&notification(3)).unwrap();
        drop(wh);
        assert!(matches!(
            src.send(&notification(4)),
            Err(TransportError::Closed)
        ));
        // The source end can still drain anything the peer sent earlier.
        let (mut src2, mut wh2) = SharedFifo::pair(TransferMeter::new());
        wh2.send(&notification(9)).unwrap();
        drop(wh2);
        assert_eq!(src2.poll().unwrap(), Readiness::Ready);
        assert_eq!(src2.recv().unwrap(), Some(notification(9)));
        assert_eq!(src2.recv().unwrap(), None);
    }

    #[test]
    fn in_memory_poll_observes_peer_drop() {
        let (mut src, wh) = InMemoryFifo::pair(TransferMeter::new());
        assert_eq!(src.poll().unwrap(), Readiness::Idle);
        drop(wh);
        assert_eq!(src.poll().unwrap(), Readiness::Closed);
    }

    #[test]
    fn tcp_poll_distinguishes_idle_ready_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            wh.send(&notification(1)).unwrap();
            // Hold the connection open until told to close.
            wh.recv().unwrap()
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        // Wait for the in-flight message, then observe Ready without
        // consuming it.
        while src.poll().unwrap() == Readiness::Idle {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(src.poll().unwrap(), Readiness::Ready);
        assert_eq!(src.try_recv().unwrap(), Some(notification(1)));
        src.send(&notification(2)).unwrap(); // lets the server exit
        server.join().unwrap();
        // Server side dropped: eventually Closed.
        loop {
            match src.poll().unwrap() {
                Readiness::Closed => break,
                _ => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
    }

    #[test]
    fn tcp_drop_then_reconnect_leaves_no_stuck_state() {
        // Two full connect/drop cycles against fresh listeners: each drop
        // must join its reader thread (close() is drop-invoked), so the
        // second cycle starts clean and the test exits without leaks.
        for round in 0..2 {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let server = std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let mut wh =
                    TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
                let got = wh.recv().unwrap();
                wh.close(); // explicit close before drop: must be idempotent
                got
            });
            let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
            src.send(&notification(round)).unwrap();
            assert_eq!(server.join().unwrap(), Some(notification(round)));
            src.close();
            drop(src); // close() then drop: second close is a no-op
        }
    }

    #[test]
    fn in_memory_recv_timeout_never_sleeps() {
        let (mut src, wh) = InMemoryFifo::pair(TransferMeter::new());
        // Empty but connected: immediate Timeout (nothing can arrive).
        assert!(matches!(
            src.recv_timeout(std::time::Duration::from_secs(60)),
            Err(TransportError::Timeout)
        ));
        drop(wh);
        // Peer gone: clean hang-up, not a timeout.
        assert_eq!(
            src.recv_timeout(std::time::Duration::from_secs(60))
                .unwrap(),
            None
        );
    }

    #[test]
    fn shared_fifo_recv_timeout_times_out_then_delivers() {
        let (mut src, mut wh) = SharedFifo::pair(TransferMeter::new());
        // Wedged peer: connected but silent.
        assert!(matches!(
            wh.recv_timeout(std::time::Duration::from_millis(20)),
            Err(TransportError::Timeout)
        ));
        let sender = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            src.send(&notification(7)).unwrap();
            src
        });
        assert_eq!(
            wh.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            Some(notification(7))
        );
        let src = sender.join().unwrap();
        drop(src);
        // After hang-up the bounded wait reports None, like recv().
        assert_eq!(
            wh.recv_timeout(std::time::Duration::from_secs(5)).unwrap(),
            None
        );
    }

    #[test]
    fn tcp_recv_timeout_on_wedged_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            // Wedge: hold the connection open, send nothing, until told.
            wh.recv().unwrap()
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        assert!(matches!(
            src.recv_timeout(std::time::Duration::from_millis(30)),
            Err(TransportError::Timeout)
        ));
        src.send(&notification(1)).unwrap(); // release the server
        server.join().unwrap();
    }

    #[test]
    fn tcp_reader_fault_survives_has_inbound_probe() {
        use std::io::Write as _;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // A frame header promising 100 bytes, then only 3, then a
            // hard close: a truncated frame, not clean EOF.
            stream.write_all(&100u32.to_be_bytes()).unwrap();
            stream.write_all(&[1, 2, 3]).unwrap();
            stream.flush().unwrap();
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        server.join().unwrap();
        // Probe until the reader thread has observed the truncation. The
        // probe itself must not swallow the fault...
        loop {
            if src.has_inbound() {
                panic!("no complete frame should ever arrive");
            }
            if src.fault.is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // ...so the next receive reports Io (with the real ErrorKind)
        // rather than the clean-EOF `Ok(None)`.
        match src.recv() {
            Err(TransportError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
            }
            other => panic!("expected Io fault, got {other:?}"),
        }
        // The fault is reported once; afterwards the channel reads closed.
        assert_eq!(src.recv().unwrap(), None);
    }

    #[test]
    fn tcp_recv_none_after_peer_drop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut wh = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new()).unwrap();
            wh.send(&notification(3)).unwrap();
            // Dropped here: the source should read the message then EOF.
        });
        let mut src = TcpTransport::connect(addr, Role::Source, TransferMeter::new()).unwrap();
        assert_eq!(src.recv().unwrap(), Some(notification(3)));
        assert_eq!(src.recv().unwrap(), None);
        server.join().unwrap();
    }
}
