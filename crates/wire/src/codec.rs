//! A compact binary codec for relational values and messages.
//!
//! The encoding is deliberately simple and deterministic:
//!
//! * `Value::Int` — tag `0`, 8-byte big-endian payload.
//! * `Value::Str` — tag `1`, u32 length prefix, UTF-8 bytes.
//! * `Tuple` — u16 arity, then each value.
//! * `SignedBag` — u32 *occurrence* count, then per occurrence a sign byte
//!   and the tuple. Occurrences (not distinct tuples) are what travel on
//!   the wire, matching the paper's per-tuple byte accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use eca_relational::{Sign, SignedBag, Tuple, Value};

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// An unknown tag byte was encountered.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            DecodeError::BadTag { context, tag } => write!(f, "bad tag {tag} decoding {context}"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in string value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Streaming encoder over a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write a raw u8.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Write a raw u16 (big-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Write a raw u32 (big-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Write a raw u64 (big-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Write a raw i64 (big-endian).
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Write a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.buf.put_u32(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }

    /// Write a length-prefixed opaque byte string.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.put_u32(b.len() as u32);
        self.buf.put_slice(b);
    }

    /// Write a value with its tag.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.buf.put_u8(0);
                self.buf.put_i64(*i);
            }
            Value::Str(s) => {
                self.buf.put_u8(1);
                self.put_str(s);
            }
        }
    }

    /// Write a tuple.
    pub fn put_tuple(&mut self, t: &Tuple) {
        self.buf.put_u16(t.arity() as u16);
        for v in t.values() {
            self.put_value(v);
        }
    }

    /// Write a signed bag as a stream of occurrences.
    pub fn put_bag(&mut self, bag: &SignedBag) {
        let occurrences = bag.pos_len() + bag.neg_len();
        self.buf.put_u32(occurrences as u32);
        for st in bag.iter_occurrences() {
            self.buf.put_u8(match st.sign {
                Sign::Plus => 0,
                Sign::Minus => 1,
            });
            self.put_tuple(&st.tuple);
        }
    }
}

/// Streaming decoder over a byte slice.
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Decode from the given bytes.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::UnexpectedEof)
        } else {
            Ok(())
        }
    }

    /// Read a u8.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a u16.
    pub fn get_u16(&mut self) -> Result<u16, DecodeError> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    /// Read a u32.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    /// Read a u64.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    /// Read an i64.
    pub fn get_i64(&mut self) -> Result<i64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_i64())
    }

    /// Read a length-prefixed string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Read a length-prefixed opaque byte string.
    pub fn get_bytes(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Read a tagged value.
    pub fn get_value(&mut self) -> Result<Value, DecodeError> {
        match self.get_u8()? {
            0 => Ok(Value::Int(self.get_i64()?)),
            1 => Ok(Value::str(self.get_str()?)),
            tag => Err(DecodeError::BadTag {
                context: "Value",
                tag,
            }),
        }
    }

    /// Read a tuple.
    pub fn get_tuple(&mut self) -> Result<Tuple, DecodeError> {
        let arity = self.get_u16()? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.get_value()?);
        }
        Ok(Tuple::new(values))
    }

    /// Read a signed bag (stream of occurrences).
    pub fn get_bag(&mut self) -> Result<SignedBag, DecodeError> {
        let n = self.get_u32()?;
        let mut bag = SignedBag::new();
        for _ in 0..n {
            let sign = match self.get_u8()? {
                0 => 1i64,
                1 => -1i64,
                tag => {
                    return Err(DecodeError::BadTag {
                        context: "Sign",
                        tag,
                    })
                }
            };
            let tuple = self.get_tuple()?;
            bag.add(tuple, sign);
        }
        Ok(bag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_bag(bag: &SignedBag) -> SignedBag {
        let mut e = Encoder::new();
        e.put_bag(bag);
        let mut d = Decoder::new(e.finish());
        let out = d.get_bag().unwrap();
        assert_eq!(d.remaining(), 0);
        out
    }

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::Int(-5),
            Value::Int(i64::MAX),
            Value::str(""),
            Value::str("héllo"),
        ] {
            let mut e = Encoder::new();
            e.put_value(&v);
            let mut d = Decoder::new(e.finish());
            assert_eq!(d.get_value().unwrap(), v);
        }
    }

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::new([Value::Int(1), Value::str("x"), Value::Int(-9)]);
        let mut e = Encoder::new();
        e.put_tuple(&t);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_tuple().unwrap(), t);
    }

    #[test]
    fn bag_roundtrip_with_signs_and_duplicates() {
        let mut bag = SignedBag::new();
        bag.add(Tuple::ints([1, 2]), 3);
        bag.add(Tuple::ints([4, 5]), -2);
        assert_eq!(roundtrip_bag(&bag), bag);
        assert_eq!(roundtrip_bag(&SignedBag::new()), SignedBag::new());
    }

    #[test]
    fn encoded_len_matches_predicted() {
        // The relational layer's encoded_len must agree with the real
        // codec, since the paper's B metric is measured from it.
        let mut bag = SignedBag::new();
        bag.add(Tuple::ints([1, 2]), 2);
        bag.add(Tuple::new([Value::str("ab"), Value::Int(1)]), -1);
        let mut e = Encoder::new();
        e.put_bag(&bag);
        assert_eq!(e.len(), bag.encoded_len());
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Encoder::new();
        e.put_tuple(&Tuple::ints([1, 2, 3]));
        let bytes = e.finish();
        let mut d = Decoder::new(bytes.slice(0..bytes.len() - 1));
        assert_eq!(d.get_tuple(), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn bad_tags_error() {
        let mut e = Encoder::new();
        e.put_u8(9);
        let mut d = Decoder::new(e.finish());
        assert!(matches!(d.get_value(), Err(DecodeError::BadTag { .. })));
    }
}
