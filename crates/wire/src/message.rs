//! Message types exchanged between source and warehouse (paper Fig. 1.1).

use bytes::Bytes;
use eca_core::{Atom, CoreError, Query, QueryId, Term, ViewDef};
use eca_relational::{
    CmpOp, Operand, Predicate, Schema, Sign, SignedBag, SignedTuple, Update, UpdateKind,
};

use crate::codec::{DecodeError, Decoder, Encoder};

/// A self-contained query as sent over the wire.
///
/// The source does not know the warehouse's view definitions — that is the
/// founding assumption of the paper — so each query carries its own
/// relation list, selection condition and projection. `WireQuery`
/// round-trips with [`eca_core::Query`] via [`WireQuery::from_query`] and
/// [`WireQuery::to_query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireQuery {
    /// Names of the base relations `r1..rn` in product order.
    pub relations: Vec<String>,
    /// Selection condition over product columns.
    pub cond: Predicate,
    /// Projection over product columns.
    pub proj: Vec<usize>,
    /// The sum of terms.
    pub terms: Vec<WireTerm>,
}

/// One term of a wire query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireTerm {
    /// The term coefficient (±1 in the paper's algorithms).
    pub factor: i64,
    /// Per relation: `None` = the base relation itself, `Some` = a bound
    /// signed tuple.
    pub atoms: Vec<Option<SignedTuple>>,
}

impl WireQuery {
    /// Convert a core query for transmission.
    pub fn from_query(query: &Query) -> Self {
        WireQuery {
            relations: query
                .view()
                .base()
                .iter()
                .map(|s| s.relation().to_owned())
                .collect(),
            cond: query.view().cond().clone(),
            proj: query.view().proj().to_vec(),
            terms: query
                .terms()
                .iter()
                .map(|t| WireTerm {
                    factor: t.factor(),
                    atoms: t
                        .atoms()
                        .iter()
                        .map(|a| match a {
                            Atom::Rel(_) => None,
                            Atom::Bound(st) => Some(st.clone()),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuild an evaluatable core query by resolving relation names
    /// against the receiver's catalog of schemas.
    ///
    /// # Errors
    /// [`CoreError::UnknownRelation`] if a relation is not in the catalog.
    pub fn to_query(&self, catalog: &[Schema]) -> Result<Query, CoreError> {
        let mut base = Vec::with_capacity(self.relations.len());
        for name in &self.relations {
            let schema = catalog
                .iter()
                .find(|s| s.relation() == name)
                .ok_or_else(|| CoreError::UnknownRelation {
                    relation: name.clone(),
                })?;
            base.push(schema.clone());
        }
        let view = ViewDef::new("wire", base, self.cond.clone(), self.proj.clone())?;
        let terms = self
            .terms
            .iter()
            .map(|t| {
                Term::new(
                    t.factor,
                    t.atoms
                        .iter()
                        .enumerate()
                        .map(|(i, a)| match a {
                            None => Atom::Rel(i),
                            Some(st) => Atom::Bound(st.clone()),
                        })
                        .collect(),
                )
            })
            .collect();
        Ok(Query::from_terms(view, terms))
    }
}

/// The §3 consistency level a read client requests, mapped onto the
/// paper's hierarchy (weakest to strongest):
///
/// * [`ReadLevel::Convergent`] — §3's *convergence*: the answer is some
///   published epoch of the view; successive reads may go backwards.
/// * [`ReadLevel::Weak`] — §3's *weak consistency*: every answer is a
///   published epoch and, per client, epochs never regress (the client
///   carries its floor in [`Message::ReadQuery::min_epoch`], so the
///   guarantee survives reconnects).
/// * [`ReadLevel::Strong`] — §3's *strong consistency*: the answer is
///   the latest epoch published while the view's maintainer was
///   quiescent — a state of the §3.1 state history, i.e. `V` evaluated
///   at a real source state, never a mid-compensation intermediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReadLevel {
    /// Any published epoch; no per-client ordering.
    Convergent,
    /// Published epochs, monotonic per client.
    Weak,
    /// Latest quiesced epoch (read-your-latest-epoch).
    Strong,
}

impl ReadLevel {
    /// All levels, weakest first.
    pub fn all() -> [ReadLevel; 3] {
        [ReadLevel::Convergent, ReadLevel::Weak, ReadLevel::Strong]
    }

    /// Stable label for artifacts and logs.
    pub fn label(self) -> &'static str {
        match self {
            ReadLevel::Convergent => "convergent",
            ReadLevel::Weak => "weak",
            ReadLevel::Strong => "strong",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ReadLevel::Convergent => 0,
            ReadLevel::Weak => 1,
            ReadLevel::Strong => 2,
        }
    }

    fn from_u8(tag: u8) -> Result<ReadLevel, DecodeError> {
        Ok(match tag {
            0 => ReadLevel::Convergent,
            1 => ReadLevel::Weak,
            2 => ReadLevel::Strong,
            tag => {
                return Err(DecodeError::BadTag {
                    context: "ReadLevel",
                    tag,
                })
            }
        })
    }
}

/// A message on the source↔warehouse channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Source → warehouse: an update was executed (the `S_up` half).
    UpdateNotification {
        /// The executed update.
        update: Update,
    },
    /// Warehouse → source: evaluate this query (triggers `S_qu`).
    QueryRequest {
        /// Correlation id.
        id: QueryId,
        /// The self-contained query.
        query: WireQuery,
    },
    /// Source → warehouse: the answer relation for a query.
    QueryAnswer {
        /// Correlation id of the answered query.
        id: QueryId,
        /// The signed answer relation.
        answer: SignedBag,
    },
    /// Session layer: a sequenced envelope around one encoded application
    /// message, as produced by `ReliableLink`. The payload checksum lets
    /// the receiver detect corruption and treat the frame as dropped, to
    /// be healed by retransmission.
    Frame {
        /// Session epoch the sender believes is current.
        epoch: u64,
        /// Monotonic per-link sequence number (0-based).
        seq: u64,
        /// FNV-1a over `payload`.
        checksum: u64,
        /// The encoded inner [`Message`].
        payload: Bytes,
    },
    /// Session layer: cumulative acknowledgement — every frame with
    /// `seq < next` has been received in order.
    Ack {
        /// Session epoch the sender believes is current.
        epoch: u64,
        /// The next sequence number the receiver expects.
        next: u64,
    },
    /// Session layer: announce an epoch, e.g. when a peer reconnects and
    /// the warehouse opens a fresh session generation.
    Hello {
        /// The announced epoch.
        epoch: u64,
    },
    /// Read client → serve layer: read one view's materialized state at
    /// the requested consistency level.
    ReadQuery {
        /// Correlation id (client-local).
        id: QueryId,
        /// The view's registry index ([`eca_core`]'s `ViewId.0`).
        view: u64,
        /// Requested §3 consistency level.
        level: ReadLevel,
        /// Client-side monotonicity floor: the highest epoch this
        /// client has already observed for this view (0 if none). The
        /// serve layer never answers below it at [`ReadLevel::Weak`],
        /// which keeps per-client monotonicity intact across
        /// disconnects — the floor travels with the client, not the
        /// server.
        min_epoch: u64,
    },
    /// Serve layer → read client: one view snapshot plus epoch metadata.
    ReadAnswer {
        /// Correlation id of the answered read.
        id: QueryId,
        /// The view that was read.
        view: u64,
        /// The epoch of the served snapshot.
        epoch: u64,
        /// The latest epoch published (any view) when the read was
        /// served — `latest - epoch` is the answer's staleness in
        /// epochs.
        latest: u64,
        /// The materialized rows at `epoch`.
        rows: SignedBag,
    },
    /// Serve layer → read client: the read could not be served (unknown
    /// view, or a non-read message arrived on a read channel).
    ReadError {
        /// Correlation id of the failed read (0 when the request could
        /// not be parsed far enough to know).
        id: QueryId,
        /// Human-readable reason.
        reason: String,
    },
}

impl Message {
    /// Encode to bytes.
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        match self {
            Message::UpdateNotification { update } => {
                e.put_u8(0);
                put_update(&mut e, update);
            }
            Message::QueryRequest { id, query } => {
                e.put_u8(1);
                e.put_u64(id.0);
                put_wire_query(&mut e, query);
            }
            Message::QueryAnswer { id, answer } => {
                e.put_u8(2);
                e.put_u64(id.0);
                e.put_bag(answer);
            }
            Message::Frame {
                epoch,
                seq,
                checksum,
                payload,
            } => {
                e.put_u8(3);
                e.put_u64(*epoch);
                e.put_u64(*seq);
                e.put_u64(*checksum);
                e.put_bytes(payload);
            }
            Message::Ack { epoch, next } => {
                e.put_u8(4);
                e.put_u64(*epoch);
                e.put_u64(*next);
            }
            Message::Hello { epoch } => {
                e.put_u8(5);
                e.put_u64(*epoch);
            }
            Message::ReadQuery {
                id,
                view,
                level,
                min_epoch,
            } => {
                e.put_u8(6);
                e.put_u64(id.0);
                e.put_u64(*view);
                e.put_u8(level.to_u8());
                e.put_u64(*min_epoch);
            }
            Message::ReadAnswer {
                id,
                view,
                epoch,
                latest,
                rows,
            } => {
                e.put_u8(7);
                e.put_u64(id.0);
                e.put_u64(*view);
                e.put_u64(*epoch);
                e.put_u64(*latest);
                e.put_bag(rows);
            }
            Message::ReadError { id, reason } => {
                e.put_u8(8);
                e.put_u64(id.0);
                e.put_str(reason);
            }
        }
        e.finish()
    }

    /// Decode from bytes.
    ///
    /// # Errors
    /// [`DecodeError`] on malformed input.
    pub fn decode(bytes: Bytes) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let msg = match d.get_u8()? {
            0 => Message::UpdateNotification {
                update: get_update(&mut d)?,
            },
            1 => Message::QueryRequest {
                id: QueryId(d.get_u64()?),
                query: get_wire_query(&mut d)?,
            },
            2 => Message::QueryAnswer {
                id: QueryId(d.get_u64()?),
                answer: d.get_bag()?,
            },
            3 => Message::Frame {
                epoch: d.get_u64()?,
                seq: d.get_u64()?,
                checksum: d.get_u64()?,
                payload: d.get_bytes()?,
            },
            4 => Message::Ack {
                epoch: d.get_u64()?,
                next: d.get_u64()?,
            },
            5 => Message::Hello {
                epoch: d.get_u64()?,
            },
            6 => Message::ReadQuery {
                id: QueryId(d.get_u64()?),
                view: d.get_u64()?,
                level: ReadLevel::from_u8(d.get_u8()?)?,
                min_epoch: d.get_u64()?,
            },
            7 => Message::ReadAnswer {
                id: QueryId(d.get_u64()?),
                view: d.get_u64()?,
                epoch: d.get_u64()?,
                latest: d.get_u64()?,
                rows: d.get_bag()?,
            },
            8 => Message::ReadError {
                id: QueryId(d.get_u64()?),
                reason: d.get_str()?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    context: "Message",
                    tag,
                })
            }
        };
        if d.remaining() != 0 {
            return Err(DecodeError::BadTag {
                context: "trailing bytes",
                tag: 0xff,
            });
        }
        Ok(msg)
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

fn put_update(e: &mut Encoder, u: &Update) {
    e.put_u8(match u.kind {
        UpdateKind::Insert => 0,
        UpdateKind::Delete => 1,
    });
    e.put_str(&u.relation);
    e.put_tuple(&u.tuple);
}

fn get_update(d: &mut Decoder) -> Result<Update, DecodeError> {
    let kind = match d.get_u8()? {
        0 => UpdateKind::Insert,
        1 => UpdateKind::Delete,
        tag => {
            return Err(DecodeError::BadTag {
                context: "UpdateKind",
                tag,
            })
        }
    };
    let relation = d.get_str()?;
    let tuple = d.get_tuple()?;
    Ok(Update {
        relation,
        kind,
        tuple,
    })
}

fn put_predicate(e: &mut Encoder, p: &Predicate) {
    match p {
        Predicate::True => e.put_u8(0),
        Predicate::False => e.put_u8(1),
        Predicate::Cmp { lhs, op, rhs } => {
            e.put_u8(2);
            put_operand(e, lhs);
            e.put_u8(match op {
                CmpOp::Eq => 0,
                CmpOp::Ne => 1,
                CmpOp::Lt => 2,
                CmpOp::Le => 3,
                CmpOp::Gt => 4,
                CmpOp::Ge => 5,
            });
            put_operand(e, rhs);
        }
        Predicate::And(a, b) => {
            e.put_u8(3);
            put_predicate(e, a);
            put_predicate(e, b);
        }
        Predicate::Or(a, b) => {
            e.put_u8(4);
            put_predicate(e, a);
            put_predicate(e, b);
        }
        Predicate::Not(a) => {
            e.put_u8(5);
            put_predicate(e, a);
        }
    }
}

fn get_predicate(d: &mut Decoder) -> Result<Predicate, DecodeError> {
    Ok(match d.get_u8()? {
        0 => Predicate::True,
        1 => Predicate::False,
        2 => {
            let lhs = get_operand(d)?;
            let op = match d.get_u8()? {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                tag => {
                    return Err(DecodeError::BadTag {
                        context: "CmpOp",
                        tag,
                    })
                }
            };
            let rhs = get_operand(d)?;
            Predicate::Cmp { lhs, op, rhs }
        }
        3 => Predicate::And(Box::new(get_predicate(d)?), Box::new(get_predicate(d)?)),
        4 => Predicate::Or(Box::new(get_predicate(d)?), Box::new(get_predicate(d)?)),
        5 => Predicate::Not(Box::new(get_predicate(d)?)),
        tag => {
            return Err(DecodeError::BadTag {
                context: "Predicate",
                tag,
            })
        }
    })
}

fn put_operand(e: &mut Encoder, o: &Operand) {
    match o {
        Operand::Column(i) => {
            e.put_u8(0);
            e.put_u32(*i as u32);
        }
        Operand::Const(v) => {
            e.put_u8(1);
            e.put_value(v);
        }
    }
}

fn get_operand(d: &mut Decoder) -> Result<Operand, DecodeError> {
    Ok(match d.get_u8()? {
        0 => Operand::Column(d.get_u32()? as usize),
        1 => Operand::Const(d.get_value()?),
        tag => {
            return Err(DecodeError::BadTag {
                context: "Operand",
                tag,
            })
        }
    })
}

fn put_wire_query(e: &mut Encoder, q: &WireQuery) {
    e.put_u16(q.relations.len() as u16);
    for r in &q.relations {
        e.put_str(r);
    }
    put_predicate(e, &q.cond);
    e.put_u16(q.proj.len() as u16);
    for &p in &q.proj {
        e.put_u32(p as u32);
    }
    e.put_u16(q.terms.len() as u16);
    for t in &q.terms {
        e.put_i64(t.factor);
        for atom in &t.atoms {
            match atom {
                None => e.put_u8(0),
                Some(st) => {
                    e.put_u8(1);
                    e.put_u8(match st.sign {
                        Sign::Plus => 0,
                        Sign::Minus => 1,
                    });
                    e.put_tuple(&st.tuple);
                }
            }
        }
    }
}

fn get_wire_query(d: &mut Decoder) -> Result<WireQuery, DecodeError> {
    let nrel = d.get_u16()? as usize;
    let mut relations = Vec::with_capacity(nrel);
    for _ in 0..nrel {
        relations.push(d.get_str()?);
    }
    let cond = get_predicate(d)?;
    let nproj = d.get_u16()? as usize;
    let mut proj = Vec::with_capacity(nproj);
    for _ in 0..nproj {
        proj.push(d.get_u32()? as usize);
    }
    let nterms = d.get_u16()? as usize;
    let mut terms = Vec::with_capacity(nterms);
    for _ in 0..nterms {
        let factor = d.get_i64()?;
        let mut atoms = Vec::with_capacity(nrel);
        for _ in 0..nrel {
            match d.get_u8()? {
                0 => atoms.push(None),
                1 => {
                    let sign = match d.get_u8()? {
                        0 => Sign::Plus,
                        1 => Sign::Minus,
                        tag => {
                            return Err(DecodeError::BadTag {
                                context: "Sign",
                                tag,
                            })
                        }
                    };
                    atoms.push(Some(SignedTuple {
                        sign,
                        tuple: d.get_tuple()?,
                    }));
                }
                tag => {
                    return Err(DecodeError::BadTag {
                        context: "WireTerm atom",
                        tag,
                    })
                }
            }
        }
        terms.push(WireTerm { factor, atoms });
    }
    Ok(WireQuery {
        relations,
        cond,
        proj,
        terms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::Tuple;

    fn example_view() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn update_notification_roundtrip() {
        for m in [
            Message::UpdateNotification {
                update: Update::insert("r2", Tuple::ints([2, 3])),
            },
            Message::UpdateNotification {
                update: Update::delete("r1", Tuple::ints([1, 2])),
            },
        ] {
            assert_eq!(Message::decode(m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn query_request_roundtrip_and_reeval() {
        let view = example_view();
        let u1 = Update::insert("r2", Tuple::ints([2, 3]));
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        let q1 = view.substitute(&u1).unwrap();
        let q2 = view.substitute(&u2).unwrap().minus(&q1.substitute(&u2));

        let msg = Message::QueryRequest {
            id: QueryId(7),
            query: WireQuery::from_query(&q2),
        };
        let decoded = Message::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);

        // The source can rebuild and evaluate the query from its catalog.
        let Message::QueryRequest { query, .. } = decoded else {
            unreachable!()
        };
        let catalog = vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ];
        let rebuilt = query.to_query(&catalog).unwrap();

        let mut db = eca_core::BaseDb::new();
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r1", Tuple::ints([4, 2]));
        db.insert("r2", Tuple::ints([2, 3]));
        assert_eq!(rebuilt.eval(&db).unwrap(), q2.eval(&db).unwrap());
    }

    #[test]
    fn to_query_unknown_relation_errors() {
        let view = example_view();
        let wq = WireQuery::from_query(&view.as_query());
        let catalog = vec![Schema::new("r1", &["W", "X"])];
        assert!(matches!(
            wq.to_query(&catalog),
            Err(CoreError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn answer_roundtrip_preserves_signs() {
        let mut answer = SignedBag::new();
        answer.add(Tuple::ints([1]), 2);
        answer.add(Tuple::ints([4]), -1);
        let m = Message::QueryAnswer {
            id: QueryId(3),
            answer: answer.clone(),
        };
        let decoded = Message::decode(m.encode()).unwrap();
        let Message::QueryAnswer { id, answer: got } = decoded else {
            unreachable!()
        };
        assert_eq!(id, QueryId(3));
        assert_eq!(got, answer);
    }

    #[test]
    fn answer_bytes_scale_with_occurrences() {
        let small = Message::QueryAnswer {
            id: QueryId(1),
            answer: SignedBag::new(),
        };
        let mut bag = SignedBag::new();
        bag.add(Tuple::ints([1, 2]), 10);
        let large = Message::QueryAnswer {
            id: QueryId(1),
            answer: bag,
        };
        assert!(large.encoded_len() > small.encoded_len() + 9 * 20);
    }

    #[test]
    fn complex_predicate_roundtrip() {
        let p = Predicate::col_eq(0, 2)
            .and(Predicate::col_const(1, CmpOp::Gt, 5))
            .or(Predicate::col_cmp(3, CmpOp::Le, 0).not());
        let view = ViewDef::new(
            "V",
            vec![Schema::new("a", &["P", "Q"]), Schema::new("b", &["R", "S"])],
            p,
            vec![0, 3],
        )
        .unwrap();
        let m = Message::QueryRequest {
            id: QueryId(1),
            query: WireQuery::from_query(&view.as_query()),
        };
        assert_eq!(Message::decode(m.encode()).unwrap(), m);
    }

    #[test]
    fn session_layer_roundtrips() {
        let inner = Message::UpdateNotification {
            update: Update::insert("r2", Tuple::ints([2, 3])),
        };
        for m in [
            Message::Frame {
                epoch: 3,
                seq: 41,
                checksum: 0xdead_beef_cafe_f00d,
                payload: inner.encode(),
            },
            Message::Frame {
                epoch: 0,
                seq: 0,
                checksum: 0,
                payload: Bytes::new(),
            },
            Message::Ack { epoch: 2, next: 17 },
            Message::Hello { epoch: 9 },
        ] {
            assert_eq!(Message::decode(m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn read_messages_roundtrip() {
        let mut rows = SignedBag::new();
        rows.add(Tuple::ints([1, 2]), 2);
        rows.add(Tuple::ints([3, 4]), -1);
        for m in [
            Message::ReadQuery {
                id: QueryId(11),
                view: 3,
                level: ReadLevel::Convergent,
                min_epoch: 0,
            },
            Message::ReadQuery {
                id: QueryId(12),
                view: 0,
                level: ReadLevel::Weak,
                min_epoch: 41,
            },
            Message::ReadQuery {
                id: QueryId(13),
                view: u64::MAX,
                level: ReadLevel::Strong,
                min_epoch: u64::MAX,
            },
            Message::ReadAnswer {
                id: QueryId(11),
                view: 3,
                epoch: 40,
                latest: 45,
                rows,
            },
            Message::ReadAnswer {
                id: QueryId(0),
                view: 0,
                epoch: 0,
                latest: 0,
                rows: SignedBag::new(),
            },
            Message::ReadError {
                id: QueryId(9),
                reason: "unknown view #17".to_owned(),
            },
        ] {
            assert_eq!(Message::decode(m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn bad_read_level_rejected() {
        let mut bytes = Message::ReadQuery {
            id: QueryId(1),
            view: 0,
            level: ReadLevel::Strong,
            min_epoch: 0,
        }
        .encode()
        .to_vec();
        // The level byte sits after tag + id + view.
        bytes[17] = 7;
        assert!(Message::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(Message::decode(Bytes::from_static(&[9, 9, 9])).is_err());
        assert!(Message::decode(Bytes::new()).is_err());
        // Trailing bytes are rejected.
        let mut bytes = Message::UpdateNotification {
            update: Update::insert("r", Tuple::ints([1])),
        }
        .encode()
        .to_vec();
        bytes.push(0);
        assert!(Message::decode(Bytes::from(bytes)).is_err());
    }
}
