//! Property tests for the physical layer: heap/index access paths must
//! agree with brute-force filtering, and I/O charges must respect their
//! structural bounds.

use eca_relational::{Schema, Tuple, Value};
use eca_storage::{HeapFile, IoMeter, Table};
use proptest::prelude::*;

fn tuples() -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec((0i64..10, 0i64..10), 0..60)
        .prop_map(|v| v.into_iter().map(|(a, b)| Tuple::ints([a, b])).collect())
}

proptest! {
    #[test]
    fn clustered_range_equals_brute_force(data in tuples(), probe in 0i64..10) {
        let mut heap = HeapFile::new(4, Some(0)).unwrap();
        for t in &data {
            heap.insert(t.clone());
        }
        let range = heap.clustered_range(&Value::Int(probe));
        let via_range: Vec<&Tuple> = heap.tuples()[range.clone()].iter().collect();
        let brute: Vec<&Tuple> = heap
            .tuples()
            .iter()
            .filter(|t| t.get(0) == Some(&Value::Int(probe)))
            .collect();
        prop_assert_eq!(via_range.len(), brute.len());
        for t in &via_range {
            prop_assert_eq!(t.get(0), Some(&Value::Int(probe)));
        }
        // Contiguity: blocks spanned never exceeds ⌈matches/K⌉ + 1.
        let spanned = heap.blocks_spanned(&range);
        prop_assert!(spanned <= (via_range.len() as u64).div_ceil(4) + 1);
    }

    #[test]
    fn unclustered_positions_equal_brute_force(data in tuples(), probe in 0i64..10) {
        let mut heap = HeapFile::new(4, None).unwrap();
        for t in &data {
            heap.insert(t.clone());
        }
        let positions = heap.positions_with(1, &Value::Int(probe));
        let expected = data
            .iter()
            .filter(|t| t.get(1) == Some(&Value::Int(probe)))
            .count();
        prop_assert_eq!(positions.len(), expected);
    }

    #[test]
    fn inserts_and_deletes_preserve_cluster_order(
        data in tuples(),
        deletions in prop::collection::vec(0i64..10, 0..10),
    ) {
        let mut heap = HeapFile::new(4, Some(0)).unwrap();
        for t in &data {
            heap.insert(t.clone());
        }
        for d in &deletions {
            heap.delete(&Tuple::ints([*d, *d]));
        }
        let keys: Vec<&Value> = heap.tuples().iter().map(|t| t.get(0).unwrap()).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "heap out of order");
    }

    #[test]
    fn table_lookup_costs_match_charges(data in tuples(), probe in 0i64..10) {
        let meter = IoMeter::new();
        let mut table = Table::new(
            Schema::new("r", &["A", "B"]),
            4,
            Some("A"),
            &["B"],
            meter.clone(),
        ).unwrap();
        for t in &data {
            table.insert(t.clone());
        }
        meter.reset();

        // Predicted cost must equal the charge actually incurred.
        let predicted = table.index_lookup_cost(0, &Value::Int(probe)).unwrap();
        table.index_lookup(0, &Value::Int(probe)).unwrap();
        prop_assert_eq!(meter.query_reads(), predicted);

        meter.reset();
        let predicted = table.index_lookup_cost(1, &Value::Int(probe)).unwrap();
        let hits = table.index_lookup(1, &Value::Int(probe)).unwrap();
        prop_assert_eq!(meter.query_reads(), predicted);
        // Unclustered: one read per match, exactly.
        prop_assert_eq!(predicted, hits.len() as u64);
    }

    #[test]
    fn scan_cost_is_block_count(data in tuples()) {
        let meter = IoMeter::new();
        let mut table =
            Table::new(Schema::new("r", &["A", "B"]), 4, None, &[], meter.clone()).unwrap();
        for t in &data {
            table.insert(t.clone());
        }
        meter.reset();
        let all = table.scan();
        prop_assert_eq!(all.len(), data.len());
        prop_assert_eq!(meter.query_reads(), (data.len() as u64).div_ceil(4));
    }
}
