//! Heap files: tuples packed `K` per block.
//!
//! A heap file stores tuple occurrences in a flat, ordered sequence that is
//! conceptually chopped into blocks of `K` tuples (the paper's `K`,
//! default 20). When the file is *clustered* on an attribute, the sequence
//! is kept sorted by that attribute, so all tuples with a given value are
//! contiguous and a clustered lookup touches `⌈matches/K⌉`-ish blocks
//! (exactly: the distinct blocks the run spans).

use eca_relational::{Tuple, Value};

use crate::error::StorageError;

/// A block-organized tuple store.
#[derive(Clone, Debug)]
pub struct HeapFile {
    tuples: Vec<Tuple>,
    tuples_per_block: usize,
    /// When set, `tuples` is kept sorted by this attribute position.
    cluster_attr: Option<usize>,
}

impl HeapFile {
    /// An empty heap with blocks of `tuples_per_block` tuples, optionally
    /// clustered on an attribute position.
    ///
    /// # Errors
    /// [`StorageError::InvalidBlockSize`] when `tuples_per_block == 0`.
    pub fn new(tuples_per_block: usize, cluster_attr: Option<usize>) -> Result<Self, StorageError> {
        if tuples_per_block == 0 {
            return Err(StorageError::InvalidBlockSize { tuples_per_block });
        }
        Ok(HeapFile {
            tuples: Vec::new(),
            tuples_per_block,
            cluster_attr,
        })
    }

    /// Number of tuple occurrences stored.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of blocks occupied: `⌈len/K⌉` (the paper's `I` when the
    /// relation has `C` tuples).
    pub fn num_blocks(&self) -> u64 {
        self.tuples.len().div_ceil(self.tuples_per_block) as u64
    }

    /// Tuples per block (`K`).
    pub fn tuples_per_block(&self) -> usize {
        self.tuples_per_block
    }

    /// The clustering attribute position, if any.
    pub fn cluster_attr(&self) -> Option<usize> {
        self.cluster_attr
    }

    /// All stored tuples in heap order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Insert one tuple occurrence, preserving cluster order.
    pub fn insert(&mut self, tuple: Tuple) {
        match self.cluster_attr {
            None => self.tuples.push(tuple),
            Some(attr) => {
                let key = tuple.get(attr).cloned();
                let pos = self.tuples.partition_point(|t| t.get(attr).cloned() <= key);
                self.tuples.insert(pos, tuple);
            }
        }
    }

    /// Remove one occurrence of `tuple`. Returns whether one was found.
    pub fn delete(&mut self, tuple: &Tuple) -> bool {
        if let Some(pos) = self.tuples.iter().position(|t| t == tuple) {
            self.tuples.remove(pos);
            true
        } else {
            false
        }
    }

    /// The index range of tuples whose `cluster_attr` equals `value`.
    /// Only meaningful when clustered.
    pub fn clustered_range(&self, value: &Value) -> std::ops::Range<usize> {
        let attr = self
            .cluster_attr
            .expect("clustered_range on unclustered heap");
        let start = self
            .tuples
            .partition_point(|t| t.get(attr).is_some_and(|v| v < value));
        let end = self
            .tuples
            .partition_point(|t| t.get(attr).is_some_and(|v| v <= value));
        start..end
    }

    /// How many distinct blocks the tuple positions in `range` span.
    pub fn blocks_spanned(&self, range: &std::ops::Range<usize>) -> u64 {
        if range.is_empty() {
            return 0;
        }
        let first = range.start / self.tuples_per_block;
        let last = (range.end - 1) / self.tuples_per_block;
        (last - first + 1) as u64
    }

    /// Iterate the heap block by block (for nested-loop processing).
    pub fn blocks(&self) -> impl Iterator<Item = &[Tuple]> + '_ {
        self.tuples.chunks(self.tuples_per_block)
    }

    /// Positions (heap offsets) of every occurrence with `attr == value` —
    /// the access an unclustered index provides.
    pub fn positions_with(&self, attr: usize, value: &Value) -> Vec<usize> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(_, t)| t.get(attr) == Some(value))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::ints(vals.iter().copied())
    }

    #[test]
    fn zero_block_size_rejected() {
        assert!(HeapFile::new(0, None).is_err());
    }

    #[test]
    fn block_count() {
        let mut h = HeapFile::new(3, None).unwrap();
        assert_eq!(h.num_blocks(), 0);
        for i in 0..7 {
            h.insert(t(&[i, 0]));
        }
        assert_eq!(h.len(), 7);
        assert_eq!(h.num_blocks(), 3);
    }

    #[test]
    fn clustered_insert_keeps_order() {
        let mut h = HeapFile::new(2, Some(0)).unwrap();
        for v in [5, 1, 3, 1, 9] {
            h.insert(t(&[v, 0]));
        }
        let keys: Vec<i64> = h
            .tuples()
            .iter()
            .map(|tp| tp.get(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![1, 1, 3, 5, 9]);
    }

    #[test]
    fn clustered_range_and_block_span() {
        let mut h = HeapFile::new(2, Some(0)).unwrap();
        // 6 tuples: keys 1,1,1,2,2,3 → blocks: [1,1][1,2][2,3]
        for v in [1, 1, 1, 2, 2, 3] {
            h.insert(t(&[v, 0]));
        }
        let r1 = h.clustered_range(&Value::Int(1));
        assert_eq!(r1, 0..3);
        assert_eq!(h.blocks_spanned(&r1), 2);
        let r2 = h.clustered_range(&Value::Int(2));
        assert_eq!(r2, 3..5);
        assert_eq!(h.blocks_spanned(&r2), 2);
        let r9 = h.clustered_range(&Value::Int(9));
        assert!(r9.is_empty());
        assert_eq!(h.blocks_spanned(&r9), 0);
    }

    #[test]
    fn delete_removes_one_occurrence() {
        let mut h = HeapFile::new(4, Some(0)).unwrap();
        h.insert(t(&[1, 0]));
        h.insert(t(&[1, 0]));
        assert!(h.delete(&t(&[1, 0])));
        assert_eq!(h.len(), 1);
        assert!(!h.delete(&t(&[9, 9])));
    }

    #[test]
    fn positions_with_finds_all() {
        let mut h = HeapFile::new(2, None).unwrap();
        h.insert(t(&[1, 7]));
        h.insert(t(&[2, 8]));
        h.insert(t(&[3, 7]));
        assert_eq!(h.positions_with(1, &Value::Int(7)), vec![0, 2]);
        assert!(h.positions_with(1, &Value::Int(99)).is_empty());
    }

    #[test]
    fn blocks_iterator_chunks() {
        let mut h = HeapFile::new(2, None).unwrap();
        for i in 0..5 {
            h.insert(t(&[i]));
        }
        let sizes: Vec<usize> = h.blocks().map(<[Tuple]>::len).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }
}
