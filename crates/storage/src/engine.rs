//! Physical query evaluation with metered I/O, under the paper's two cost
//! scenarios (§6.3, Appendix D).
//!
//! ## Scenario 1 — indexes + ample memory
//!
//! Bound tuples are in-memory and free. Each remaining relation is brought
//! in either by **index probes** (one lookup per current intermediate row,
//! no caching across probes — the paper's pessimistic assumption) or by a
//! **full scan** followed by an in-memory hash join; the planner picks the
//! cheaper by exact cost, which reproduces the paper's `min(J, I)`
//! behaviour.
//!
//! ## Scenario 2 — no indexes, `m` free memory blocks
//!
//! Unbound relations are processed as a left-deep block-nested-loop: the
//! first `j−1` loop levels hold one block each, the innermost is streamed,
//! and any spare memory widens the outermost chunk. Level `i` is charged
//! `(Π_{l<i} chunks_l) × I_i` block reads. For the paper's parameters this
//! yields `I + I·I + I·I·I` for a 3-relation recompute (the paper quotes
//! the dominant `I³`) and `I + I′·I` for a one-bound-tuple query (the
//! paper quotes `I·I′`); lower-order differences are tabulated in
//! `EXPERIMENTS.md`.
//!
//! Result *values* are computed with in-memory joins — the charge model
//! simulates what the block-level plans would read, while the answers are
//! exact and differentially tested against the logical evaluator.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use eca_core::{Atom, Query, Term, ViewDef};
use eca_relational::{SignedBag, Tuple, Update, UpdateKind, Value};

use crate::cache::BlockCache;
use crate::error::StorageError;
use crate::io::IoMeter;
use crate::table::Table;

/// Which Appendix-D cost scenario the engine runs under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scenario {
    /// Scenario 1: in-memory indexes, ample memory.
    Indexed,
    /// Scenario 2: no indexes, a fixed number of free memory blocks
    /// (the paper uses 3).
    NestedLoop {
        /// Total free memory blocks available to join processing.
        memory_blocks: usize,
    },
}

impl Scenario {
    /// The paper's Scenario 2 default.
    pub fn nested_loop_default() -> Self {
        Scenario::NestedLoop { memory_blocks: 3 }
    }
}

/// One step of a chosen physical plan, for tests and explain output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanStep {
    /// The relation was fully scanned (`blocks` reads) and hash-joined.
    Scan {
        /// Relation name.
        relation: String,
        /// Blocks read.
        blocks: u64,
    },
    /// The relation was probed through an index, once per intermediate row.
    Probe {
        /// Relation name.
        relation: String,
        /// Number of probes issued.
        probes: u64,
        /// Total blocks read by the probes.
        blocks: u64,
    },
    /// Nested-loop level charge (Scenario 2).
    NestedLoopLevel {
        /// Relation name.
        relation: String,
        /// Times the relation is (re)scanned.
        passes: u64,
        /// Total blocks read.
        blocks: u64,
    },
    /// The relation's tuples were reused from the term-batching memo: an
    /// earlier term of the same query already paid for the scan, so no
    /// blocks are charged.
    SharedScan {
        /// Relation name.
        relation: String,
    },
}

/// Per-query memo shared by the terms of one batched evaluation: full
/// scans and index-probe results already paid for by an earlier term are
/// reused in memory instead of being re-read (and re-charged).
///
/// This is the "multiple term optimization" the paper's Appendix D
/// deliberately leaves out of its pessimistic analysis ("whenever we probe
/// a relation, we go to disk to read the block") and §6.3 calls out as the
/// obvious improvement. It assumes Scenario 1's ample memory; the
/// Scenario-2 nested-loop executor (whose premise is three memory blocks)
/// never consults it.
#[derive(Default)]
struct BatchMemo {
    /// Relation → tuples of a completed full scan (the relation is now
    /// memory-resident for the rest of the query).
    scans: HashMap<String, Vec<Tuple>>,
    /// `(relation, attribute, value)` → matches of a completed index probe.
    probes: HashMap<(String, usize, Value), Vec<Tuple>>,
}

/// The metered physical engine: a set of [`Table`]s plus a scenario.
pub struct StorageEngine {
    tables: BTreeMap<String, Table>,
    scenario: Scenario,
    meter: IoMeter,
    cache: Option<BlockCache>,
    batching: bool,
}

impl StorageEngine {
    /// An empty engine.
    pub fn new(scenario: Scenario) -> Self {
        StorageEngine {
            tables: BTreeMap::new(),
            scenario,
            meter: IoMeter::new(),
            cache: None,
            batching: false,
        }
    }

    /// Enable multi-term batching: the terms of one query share a memo of
    /// completed scans and index probes, so a k-term query reads each base
    /// relation roughly once instead of k times. Off by default — the
    /// paper's Appendix-D costs assume every term pays for its own reads,
    /// and the cost-model tests pin that pessimistic behaviour.
    pub fn enable_term_batching(&mut self) {
        self.batching = true;
    }

    /// Whether multi-term batching is enabled.
    pub fn term_batching_enabled(&self) -> bool {
        self.batching
    }

    /// Enable a shared LRU block cache of `capacity` blocks over all
    /// current and future tables — the caching ablation the paper's
    /// no-caching analysis invites (§6.3). Scenario-2 nested-loop scans
    /// bypass it by design.
    pub fn enable_cache(&mut self, capacity: usize) -> BlockCache {
        let cache = BlockCache::new(capacity);
        for table in self.tables.values_mut() {
            table.set_cache(cache.clone());
        }
        self.cache = Some(cache.clone());
        cache
    }

    /// The shared I/O meter.
    pub fn meter(&self) -> &IoMeter {
        &self.meter
    }

    /// A read-only snapshot of the engine for one concurrent query worker.
    ///
    /// Tables are copied at their current contents and rebound to `meter`,
    /// so the worker's block reads accumulate on its own meter — giving
    /// exact per-query read deltas even when many workers run at once. The
    /// snapshot shares no mutable state with `self`: updates applied to
    /// the live engine after the snapshot are not visible, which is
    /// precisely the "state as of query receipt" semantics the paper's
    /// source model assumes. The block cache is dropped (each worker pays
    /// cold reads, matching the paper's no-caching cost model).
    pub fn snapshot_reader(&self, meter: IoMeter) -> StorageEngine {
        let mut tables = self.tables.clone();
        for table in tables.values_mut() {
            table.rebind_meter(meter.clone());
        }
        StorageEngine {
            tables,
            scenario: self.scenario,
            meter,
            cache: None,
            batching: self.batching,
        }
    }

    /// The active scenario.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Create and register a table. In Scenario 2 index arguments are
    /// accepted but ignored (the executor never uses them).
    ///
    /// # Errors
    /// Propagates [`Table::new`] validation errors.
    pub fn create_table(
        &mut self,
        schema: eca_relational::Schema,
        tuples_per_block: usize,
        clustered_on: Option<&str>,
        unclustered_on: &[&str],
    ) -> Result<(), StorageError> {
        let mut table = Table::new(
            schema.clone(),
            tuples_per_block,
            clustered_on,
            unclustered_on,
            self.meter.clone(),
        )?;
        if let Some(cache) = &self.cache {
            table.set_cache(cache.clone());
        }
        self.tables.insert(schema.relation().to_owned(), table);
        Ok(())
    }

    /// Access a registered table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Apply a base-relation update. Returns `false` for an ineffective
    /// delete or unknown table.
    pub fn apply(&mut self, update: &Update) -> bool {
        let Some(table) = self.tables.get_mut(&update.relation) else {
            return false;
        };
        match update.kind {
            UpdateKind::Insert => {
                table.insert(update.tuple.clone());
                true
            }
            UpdateKind::Delete => table.delete(&update.tuple),
        }
    }

    /// Evaluate a warehouse query physically, charging the meter.
    ///
    /// # Errors
    /// [`StorageError::UnknownTable`] if the query mentions an unloaded
    /// relation; relational errors from condition evaluation.
    pub fn eval_query(&self, query: &Query) -> Result<SignedBag, StorageError> {
        let memo = self.batching.then(|| Mutex::new(BatchMemo::default()));
        let mut out = SignedBag::new();
        for term in query.terms() {
            let (bag, _) = self.eval_term(query.view(), term, memo.as_ref())?;
            out.merge(&bag);
        }
        Ok(out)
    }

    /// Evaluate the query's terms concurrently, one worker thread per
    /// term, merging the signed sum. Answers equal
    /// [`StorageEngine::eval_query`] exactly (signed-bag merge is
    /// commutative). I/O totals are also identical without batching; with
    /// batching they can exceed the sequential batched cost when two
    /// threads race to scan the same relation before either memoizes it —
    /// both charges are honest reads, never an undercount.
    ///
    /// # Errors
    /// As [`StorageEngine::eval_query`] (first failing term in term order).
    pub fn eval_query_parallel(&self, query: &Query) -> Result<SignedBag, StorageError> {
        if query.terms().len() <= 1 {
            return self.eval_query(query);
        }
        let memo = self.batching.then(|| Mutex::new(BatchMemo::default()));
        let results: Vec<Result<(SignedBag, Vec<PlanStep>), StorageError>> =
            std::thread::scope(|scope| {
                let memo = memo.as_ref();
                let handles: Vec<_> = query
                    .terms()
                    .iter()
                    .map(|term| scope.spawn(move || self.eval_term(query.view(), term, memo)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("term evaluation thread panicked"))
                    .collect()
            });
        let mut out = SignedBag::new();
        for r in results {
            out.merge(&r?.0);
        }
        Ok(out)
    }

    /// Evaluate and also return the physical plan steps taken per term.
    ///
    /// # Errors
    /// As [`StorageEngine::eval_query`].
    pub fn explain_query(&self, query: &Query) -> Result<Vec<Vec<PlanStep>>, StorageError> {
        let memo = self.batching.then(|| Mutex::new(BatchMemo::default()));
        query
            .terms()
            .iter()
            .map(|t| {
                self.eval_term(query.view(), t, memo.as_ref())
                    .map(|(_, plan)| plan)
            })
            .collect()
    }

    fn table_for(&self, view: &ViewDef, rel_idx: usize) -> Result<&Table, StorageError> {
        let name = view.base()[rel_idx].relation();
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable {
                table: name.to_owned(),
            })
    }

    fn eval_term(
        &self,
        view: &ViewDef,
        term: &Term,
        memo: Option<&Mutex<BatchMemo>>,
    ) -> Result<(SignedBag, Vec<PlanStep>), StorageError> {
        let n = view.base().len();
        // Join edges in (rel, local attr) form, derived from the view
        // condition's conjunctive equi-join pairs over product columns.
        let edges = join_edges(view);

        // Intermediate rows: per-relation assignment plus a signed count.
        let mut rows: Vec<(Vec<Option<Tuple>>, i64)> = Vec::new();
        let mut assigned = vec![false; n];
        let mut initial = vec![None; n];
        let mut factor = term.factor();
        for (i, atom) in term.atoms().iter().enumerate() {
            if let Atom::Bound(st) = atom {
                initial[i] = Some(st.tuple.clone());
                factor *= st.sign.factor();
                assigned[i] = true;
            }
        }
        rows.push((initial, factor));

        let mut plan = Vec::new();
        match self.scenario {
            Scenario::Indexed => {
                self.eval_indexed(view, &edges, &mut rows, &mut assigned, memo, &mut plan)?;
            }
            Scenario::NestedLoop { memory_blocks } => {
                self.eval_nested_loop(
                    view,
                    &edges,
                    &mut rows,
                    &mut assigned,
                    memory_blocks,
                    &mut plan,
                )?;
            }
        }

        // Assemble product tuples, apply the full condition, project.
        let mut out = SignedBag::new();
        for (assignment, count) in rows {
            if count == 0 {
                continue;
            }
            let mut values = Vec::with_capacity(view.product_arity());
            for t in assignment.iter() {
                let t = t.as_ref().expect("all relations assigned");
                values.extend(t.values().iter().cloned());
            }
            let product = Tuple::new(values);
            if view.cond().eval(&product)? {
                out.add(product.project(view.proj()), count);
            }
        }
        Ok((out, plan))
    }

    /// Scenario 1: per relation, choose index probes vs scan+hash-join by
    /// exact cost. With a batch memo, relations already scanned by an
    /// earlier term of the same query are memory-resident (free), and
    /// repeated index probes for the same `(attribute, value)` are served
    /// from the memo without re-reading blocks.
    fn eval_indexed(
        &self,
        view: &ViewDef,
        edges: &[JoinEdge],
        rows: &mut Vec<(Vec<Option<Tuple>>, i64)>,
        assigned: &mut [bool],
        memo: Option<&Mutex<BatchMemo>>,
        plan: &mut Vec<PlanStep>,
    ) -> Result<(), StorageError> {
        while let Some(next) = pick_next(assigned, edges) {
            let relation = view.base()[next].relation().to_owned();
            let table = self.table_for(view, next)?;

            // A relation fully scanned by an earlier term is resident:
            // join against it in memory at zero cost.
            let resident = memo.and_then(|m| {
                m.lock()
                    .expect("batch memo poisoned")
                    .scans
                    .get(&relation)
                    .cloned()
            });
            if let Some(tuples) = resident {
                plan.push(PlanStep::SharedScan {
                    relation: relation.clone(),
                });
                let join_edge = edges
                    .iter()
                    .find(|e| e.touches(next) && assigned[e.other(next)]);
                *rows = extend_rows(rows, next, &tuples, join_edge);
                assigned[next] = true;
                continue;
            }

            // Find a join edge from an assigned relation into `next` whose
            // target attribute has an index.
            let probe_edge = edges.iter().find(|e| {
                e.touches(next)
                    && assigned[e.other(next)]
                    && table.index_on(e.local_attr(next)).is_some()
            });
            let scan_cost = table.num_blocks();
            let probe_cost = probe_edge.map(|e| {
                rows.iter()
                    .map(|(assignment, _)| {
                        let src = e.other(next);
                        let attr = e.local_attr(next);
                        let value = assignment[src]
                            .as_ref()
                            .and_then(|t| t.get(e.local_attr(src)));
                        match value {
                            Some(v) => {
                                let memoized = memo.is_some_and(|m| {
                                    m.lock()
                                        .expect("batch memo poisoned")
                                        .probes
                                        .contains_key(&(relation.clone(), attr, v.clone()))
                                });
                                if memoized {
                                    0
                                } else {
                                    table.index_lookup_cost(attr, v).unwrap_or(scan_cost)
                                }
                            }
                            None => 0,
                        }
                    })
                    .sum::<u64>()
            });

            match (probe_edge, probe_cost) {
                (Some(edge), Some(pc)) if pc <= scan_cost || rows.is_empty() => {
                    // Index-probe path.
                    let mut probes = 0u64;
                    let before = self.meter.query_reads();
                    let mut new_rows = Vec::new();
                    let attr = edge.local_attr(next);
                    for (assignment, count) in rows.iter() {
                        let src = edge.other(next);
                        let Some(value) = assignment[src]
                            .as_ref()
                            .and_then(|t| t.get(edge.local_attr(src)))
                            .cloned()
                        else {
                            continue;
                        };
                        probes += 1;
                        let memoized = memo.and_then(|m| {
                            m.lock()
                                .expect("batch memo poisoned")
                                .probes
                                .get(&(relation.clone(), attr, value.clone()))
                                .cloned()
                        });
                        let matches = match memoized {
                            Some(cached) => cached,
                            None => {
                                let fetched = table
                                    .index_lookup(attr, &value)
                                    .expect("probe edge implies index");
                                if let Some(m) = memo {
                                    m.lock().expect("batch memo poisoned").probes.insert(
                                        (relation.clone(), attr, value.clone()),
                                        fetched.clone(),
                                    );
                                }
                                fetched
                            }
                        };
                        for m in matches {
                            let mut a = assignment.clone();
                            a[next] = Some(m);
                            new_rows.push((a, *count));
                        }
                    }
                    let blocks = self.meter.query_reads() - before;
                    plan.push(PlanStep::Probe {
                        relation,
                        probes,
                        blocks,
                    });
                    *rows = new_rows;
                }
                _ => {
                    // Scan + in-memory hash join (or cross product when no
                    // edge connects).
                    let tuples = table.scan();
                    if let Some(m) = memo {
                        m.lock()
                            .expect("batch memo poisoned")
                            .scans
                            .insert(relation.clone(), tuples.clone());
                    }
                    plan.push(PlanStep::Scan {
                        relation,
                        blocks: scan_cost,
                    });
                    let join_edge = edges
                        .iter()
                        .find(|e| e.touches(next) && assigned[e.other(next)]);
                    *rows = extend_rows(rows, next, &tuples, join_edge);
                }
            }
            assigned[next] = true;
        }
        Ok(())
    }

    /// Scenario 2: left-deep block-nested loop over the unbound relations.
    fn eval_nested_loop(
        &self,
        view: &ViewDef,
        edges: &[JoinEdge],
        rows: &mut Vec<(Vec<Option<Tuple>>, i64)>,
        assigned: &mut [bool],
        memory_blocks: usize,
        plan: &mut Vec<PlanStep>,
    ) -> Result<(), StorageError> {
        let unbound: Vec<usize> = (0..assigned.len()).filter(|&i| !assigned[i]).collect();
        let levels = unbound.len();
        if levels == 0 {
            return Ok(());
        }
        // Memory layout: inner levels hold 1 block each; spare memory
        // widens the outermost chunk (minimum 1).
        let spare = memory_blocks.saturating_sub(levels);
        let mut passes_product = 1u64;
        for (level, &next) in unbound.iter().enumerate() {
            let table = self.table_for(view, next)?;
            let blocks = table.num_blocks();
            let level_blocks = if level == 0 { 1 + spare as u64 } else { 1 };
            // This level is re-scanned once per combination of outer chunks.
            let reads = passes_product * blocks;
            self.meter.charge_read(reads);
            plan.push(PlanStep::NestedLoopLevel {
                relation: view.base()[next].relation().to_owned(),
                passes: passes_product,
                blocks: reads,
            });
            // Chunks this level contributes to inner re-scan counts.
            let chunks = blocks.div_ceil(level_blocks).max(1);
            passes_product *= chunks;

            // Compute the join result in memory (values are exact; the
            // charge above models the block pattern).
            let tuples: Vec<Tuple> = table
                .contents()
                .iter()
                .flat_map(|(t, c)| {
                    std::iter::repeat_with(move || t.clone()).take(c.max(0) as usize)
                })
                .collect();
            let join_edge = edges
                .iter()
                .find(|e| e.touches(next) && assigned[e.other(next)]);
            *rows = extend_rows(rows, next, &tuples, join_edge);
            assigned[next] = true;
        }
        Ok(())
    }
}

/// An equi-join edge between two relations of a view, in local-attribute
/// form.
#[derive(Clone, Copy, Debug)]
struct JoinEdge {
    rel_a: usize,
    attr_a: usize,
    rel_b: usize,
    attr_b: usize,
}

impl JoinEdge {
    fn touches(&self, rel: usize) -> bool {
        self.rel_a == rel || self.rel_b == rel
    }

    fn other(&self, rel: usize) -> usize {
        if self.rel_a == rel {
            self.rel_b
        } else {
            self.rel_a
        }
    }

    fn local_attr(&self, rel: usize) -> usize {
        if self.rel_a == rel {
            self.attr_a
        } else {
            self.attr_b
        }
    }
}

/// Derive join edges from the view condition's equi-join pairs.
fn join_edges(view: &ViewDef) -> Vec<JoinEdge> {
    let locate = |col: usize| -> (usize, usize) {
        // Find which relation owns a product column.
        let mut rel = 0;
        for i in 0..view.base().len() {
            if col >= view.offset(i) {
                rel = i;
            }
        }
        (rel, col - view.offset(rel))
    };
    view.cond()
        .equijoin_pairs()
        .into_iter()
        .filter_map(|(a, b)| {
            let (rel_a, attr_a) = locate(a);
            let (rel_b, attr_b) = locate(b);
            // Self-edges are selections, not joins.
            (rel_a != rel_b).then_some(JoinEdge {
                rel_a,
                attr_a,
                rel_b,
                attr_b,
            })
        })
        .collect()
}

/// Pick the next unassigned relation, preferring one connected to an
/// assigned relation; falls back to the lowest-index unassigned.
fn pick_next(assigned: &[bool], edges: &[JoinEdge]) -> Option<usize> {
    let connected = (0..assigned.len())
        .find(|&i| !assigned[i] && edges.iter().any(|e| e.touches(i) && assigned[e.other(i)]));
    connected.or_else(|| (0..assigned.len()).find(|&i| !assigned[i]))
}

/// Extend intermediate rows with `tuples` of relation `next`, using a hash
/// join on `join_edge` when available, else a cross product.
fn extend_rows(
    rows: &[(Vec<Option<Tuple>>, i64)],
    next: usize,
    tuples: &[Tuple],
    join_edge: Option<&JoinEdge>,
) -> Vec<(Vec<Option<Tuple>>, i64)> {
    let mut out = Vec::new();
    match join_edge {
        Some(edge) => {
            let next_attr = edge.local_attr(next);
            let mut table: HashMap<&Value, Vec<&Tuple>> = HashMap::new();
            for t in tuples {
                if let Some(v) = t.get(next_attr) {
                    table.entry(v).or_default().push(t);
                }
            }
            let src = edge.other(next);
            let src_attr = edge.local_attr(src);
            for (assignment, count) in rows {
                let Some(value) = assignment[src].as_ref().and_then(|t| t.get(src_attr)) else {
                    continue;
                };
                if let Some(matches) = table.get(value) {
                    for m in matches {
                        let mut a = assignment.clone();
                        a[next] = Some((*m).clone());
                        out.push((a, *count));
                    }
                }
            }
        }
        None => {
            for (assignment, count) in rows {
                for t in tuples {
                    let mut a = assignment.clone();
                    a[next] = Some(t.clone());
                    out.push((a, *count));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::{BaseDb, ViewDef};
    use eca_relational::{Predicate, Schema};

    /// The paper's Example 6 schema: r1(W,X) ⋈X r2(X,Y) ⋈Y r3(Y,Z),
    /// cond W > Z, V = π_{W,Z}.
    fn example6_view() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
                Schema::new("r3", &["Y", "Z"]),
            ],
            Predicate::col_eq(1, 2)
                .and(Predicate::col_eq(3, 4))
                .and(Predicate::col_cmp(0, eca_relational::CmpOp::Gt, 5)),
            vec![0, 5],
        )
        .unwrap()
    }

    /// Build an engine with the paper's Scenario-1 index configuration:
    /// clustered on X for r1 and r2, clustered on Y for r3, non-clustered
    /// on Y for r2.
    fn scenario1_engine(k: usize) -> StorageEngine {
        let mut e = StorageEngine::new(Scenario::Indexed);
        e.create_table(Schema::new("r1", &["W", "X"]), k, Some("X"), &[])
            .unwrap();
        e.create_table(Schema::new("r2", &["X", "Y"]), k, Some("X"), &["Y"])
            .unwrap();
        e.create_table(Schema::new("r3", &["Y", "Z"]), k, Some("Y"), &[])
            .unwrap();
        e
    }

    fn scenario2_engine(k: usize) -> StorageEngine {
        let mut e = StorageEngine::new(Scenario::nested_loop_default());
        e.create_table(Schema::new("r1", &["W", "X"]), k, None, &[])
            .unwrap();
        e.create_table(Schema::new("r2", &["X", "Y"]), k, None, &[])
            .unwrap();
        e.create_table(Schema::new("r3", &["Y", "Z"]), k, None, &[])
            .unwrap();
        e
    }

    /// Populate with a small deterministic workload and mirror into a
    /// logical BaseDb for differential checks.
    fn populate(engine: &mut StorageEngine, view: &ViewDef) -> BaseDb {
        let mut db = BaseDb::for_view(view);
        let mut tuples = Vec::new();
        for i in 0..30i64 {
            tuples.push(Update::insert("r1", Tuple::ints([i % 17, i % 5])));
            tuples.push(Update::insert("r2", Tuple::ints([i % 5, i % 7])));
            tuples.push(Update::insert("r3", Tuple::ints([i % 7, i % 11])));
        }
        for u in &tuples {
            engine.apply(u);
            db.apply(u);
        }
        engine.meter().reset();
        db
    }

    #[test]
    fn differential_full_view_scenario1() {
        let view = example6_view();
        let mut engine = scenario1_engine(4);
        let db = populate(&mut engine, &view);
        let physical = engine.eval_query(&view.as_query()).unwrap();
        let logical = view.eval(&db).unwrap();
        assert_eq!(physical, logical);
        assert!(engine.meter().query_reads() > 0);
    }

    #[test]
    fn differential_full_view_scenario2() {
        let view = example6_view();
        let mut engine = scenario2_engine(4);
        let db = populate(&mut engine, &view);
        let physical = engine.eval_query(&view.as_query()).unwrap();
        let logical = view.eval(&db).unwrap();
        assert_eq!(physical, logical);
    }

    #[test]
    fn differential_bound_terms_both_scenarios() {
        let view = example6_view();
        for engine in [&mut scenario1_engine(4), &mut scenario2_engine(4)] {
            let db = populate(engine, &view);
            let updates = [
                Update::insert("r1", Tuple::ints([3, 2])),
                Update::insert("r2", Tuple::ints([2, 4])),
                Update::delete("r3", Tuple::ints([0, 0])),
            ];
            for u in &updates {
                let q = view.substitute(u).unwrap();
                assert_eq!(
                    engine.eval_query(&q).unwrap(),
                    q.eval(&db).unwrap(),
                    "update {u:?}"
                );
            }
        }
    }

    #[test]
    fn compensated_query_differential() {
        let view = example6_view();
        let mut engine = scenario1_engine(4);
        let db = populate(&mut engine, &view);
        let u1 = Update::insert("r1", Tuple::ints([3, 2]));
        let u2 = Update::insert("r3", Tuple::ints([4, 1]));
        let q1 = view.substitute(&u1).unwrap();
        let q2 = view.substitute(&u2).unwrap().minus(&q1.substitute(&u2));
        assert_eq!(engine.eval_query(&q2).unwrap(), q2.eval(&db).unwrap());
    }

    /// Scenario 1, full recompute: exactly 3I block reads (paper:
    /// `IO_RVBest = 3I`).
    #[test]
    fn scenario1_recompute_costs_3i() {
        let view = example6_view();
        let mut engine = scenario1_engine(4);
        populate(&mut engine, &view);
        let i = engine.table("r1").unwrap().num_blocks();
        engine.meter().reset();
        engine.eval_query(&view.as_query()).unwrap();
        assert_eq!(engine.meter().query_reads(), 3 * i);
    }

    /// Scenario 1, single-bound-tuple query on r2: probes r1 and r3 via
    /// clustered indexes — a handful of reads, far below a scan.
    #[test]
    fn scenario1_bound_query_uses_probes() {
        let view = example6_view();
        let mut engine = scenario1_engine(4);
        populate(&mut engine, &view);
        engine.meter().reset();
        let q = view
            .substitute(&Update::insert("r2", Tuple::ints([2, 4])))
            .unwrap();
        let plans = engine.explain_query(&q).unwrap();
        assert!(plans[0].iter().any(|s| matches!(s, PlanStep::Probe { .. })));
        let scan_all = 3 * engine.table("r1").unwrap().num_blocks();
        assert!(engine.meter().query_reads() < scan_all);
    }

    /// Scenario 2, full recompute: charges I + I² + I³ (paper's dominant
    /// term is I³).
    #[test]
    fn scenario2_recompute_is_cubic() {
        let view = example6_view();
        let mut engine = scenario2_engine(4);
        populate(&mut engine, &view);
        let i = engine.table("r1").unwrap().num_blocks();
        engine.meter().reset();
        engine.eval_query(&view.as_query()).unwrap();
        assert_eq!(engine.meter().query_reads(), i + i * i + i * i * i);
    }

    /// Scenario 2, one bound tuple: outer relation chunked by the spare
    /// memory → I + ⌈I/2⌉·I (paper quotes I·I′).
    #[test]
    fn scenario2_bound_query_chunked() {
        let view = example6_view();
        let mut engine = scenario2_engine(4);
        populate(&mut engine, &view);
        let i = engine.table("r2").unwrap().num_blocks();
        engine.meter().reset();
        let q = view
            .substitute(&Update::insert("r1", Tuple::ints([3, 2])))
            .unwrap();
        engine.eval_query(&q).unwrap();
        assert_eq!(engine.meter().query_reads(), i + i.div_ceil(2) * i);
    }

    /// Scenario 2, two bound tuples: a single scan of the remaining
    /// relation (paper: each extra compensating term costs I).
    #[test]
    fn scenario2_double_bound_costs_one_scan() {
        let view = example6_view();
        let mut engine = scenario2_engine(4);
        populate(&mut engine, &view);
        let i = engine.table("r3").unwrap().num_blocks();
        engine.meter().reset();
        let u1 = Update::insert("r1", Tuple::ints([3, 2]));
        let u2 = Update::insert("r2", Tuple::ints([2, 4]));
        let q = view.substitute(&u1).unwrap().substitute(&u2);
        engine.eval_query(&q).unwrap();
        assert_eq!(engine.meter().query_reads(), i);
    }

    /// All atoms bound: zero I/O (paper: the fully-bound term of Q6 is
    /// free).
    #[test]
    fn fully_bound_term_is_free() {
        let view = example6_view();
        for engine in [&mut scenario1_engine(4), &mut scenario2_engine(4)] {
            populate(engine, &view);
            engine.meter().reset();
            let q = view
                .substitute(&Update::insert("r1", Tuple::ints([9, 2])))
                .unwrap()
                .substitute(&Update::insert("r2", Tuple::ints([2, 4])))
                .substitute(&Update::insert("r3", Tuple::ints([4, 1])));
            let a = engine.eval_query(&q).unwrap();
            assert_eq!(engine.meter().query_reads(), 0);
            assert_eq!(a, SignedBag::from_tuples([Tuple::ints([9, 1])]));
        }
    }

    /// Build the 4-term compensating query Q3 plus the full-view term —
    /// the shape ECA sends after a burst of updates.
    fn four_term_query(view: &ViewDef) -> eca_core::Query {
        let u1 = Update::insert("r1", Tuple::ints([3, 2]));
        let u2 = Update::insert("r3", Tuple::ints([4, 1]));
        let u3 = Update::insert("r2", Tuple::ints([2, 4]));
        let q1 = view.substitute(&u1).unwrap();
        let q2 = view.substitute(&u2).unwrap().minus(&q1.substitute(&u2));
        let q3 = view
            .substitute(&u3)
            .unwrap()
            .minus(&q1.substitute(&u3))
            .minus(&q2.substitute(&u3));
        assert_eq!(q3.terms().len(), 4);
        q3
    }

    #[test]
    fn term_batching_same_answer_fewer_reads() {
        let view = example6_view();
        let query = four_term_query(&view);

        let mut plain = scenario1_engine(4);
        let db = populate(&mut plain, &view);
        let mut batched = scenario1_engine(4);
        populate(&mut batched, &view);
        batched.enable_term_batching();

        let a_plain = plain.eval_query(&query).unwrap();
        let a_batched = batched.eval_query(&query).unwrap();
        assert_eq!(a_plain, a_batched);
        assert_eq!(a_plain, query.eval(&db).unwrap());

        let io_plain = plain.meter().query_reads();
        let io_batched = batched.meter().query_reads();
        assert!(
            io_batched < io_plain,
            "batched {io_batched} should beat per-term {io_plain}"
        );
    }

    #[test]
    fn term_batching_off_by_default_keeps_paper_costs() {
        let engine = StorageEngine::new(Scenario::Indexed);
        assert!(!engine.term_batching_enabled());
    }

    #[test]
    fn shared_scan_appears_in_explain_output() {
        let view = example6_view();
        let mut engine = scenario1_engine(4);
        populate(&mut engine, &view);
        engine.enable_term_batching();
        // Two full-recompute terms: the second must reuse all three scans.
        let q = view.as_query().minus(&view.as_query());
        let plans = engine.explain_query(&q).unwrap();
        assert!(plans[0].iter().all(|s| matches!(s, PlanStep::Scan { .. })));
        assert!(plans[1]
            .iter()
            .all(|s| matches!(s, PlanStep::SharedScan { .. })));
    }

    #[test]
    fn parallel_eval_matches_sequential() {
        let view = example6_view();
        for batching in [false, true] {
            let mut engine = scenario1_engine(4);
            let db = populate(&mut engine, &view);
            if batching {
                engine.enable_term_batching();
            }
            let query = four_term_query(&view);
            let par = engine.eval_query_parallel(&query).unwrap();
            assert_eq!(par, engine.eval_query(&query).unwrap());
            assert_eq!(par, query.eval(&db).unwrap());
        }
    }

    #[test]
    fn unknown_table_is_an_error() {
        let view = example6_view();
        let engine = StorageEngine::new(Scenario::Indexed);
        assert!(matches!(
            engine.eval_query(&view.as_query()),
            Err(StorageError::UnknownTable { .. })
        ));
    }

    #[test]
    fn apply_updates_and_ineffective_delete() {
        let mut engine = scenario1_engine(4);
        assert!(engine.apply(&Update::insert("r1", Tuple::ints([1, 2]))));
        assert!(engine.apply(&Update::delete("r1", Tuple::ints([1, 2]))));
        assert!(!engine.apply(&Update::delete("r1", Tuple::ints([1, 2]))));
        assert!(!engine.apply(&Update::insert("zz", Tuple::ints([1]))));
    }
}
