//! Tables: a heap file plus index metadata and metered access paths.

use eca_relational::{Schema, SignedBag, Tuple, Value};

use crate::cache::BlockCache;
use crate::error::StorageError;
use crate::heap::HeapFile;
use crate::io::IoMeter;

/// The kind of index available on an attribute (paper §6.3 Scenario 1:
/// clustered indexes on the join attributes plus one non-clustered index).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexKind {
    /// Tuples with equal key are contiguous; a lookup reads the blocks the
    /// run spans (`≈ ⌈matches/K⌉`).
    Clustered,
    /// Matches are scattered; a lookup reads one block per matching tuple
    /// (the paper's no-caching assumption).
    Unclustered,
}

/// A stored base relation with metered access paths.
///
/// Index *structures* are assumed memory-resident and free to traverse
/// (Scenario 1's assumption); only data-block reads are charged to the
/// [`IoMeter`].
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    heap: HeapFile,
    /// `(attribute position, kind)` of each available index.
    indexes: Vec<(usize, IndexKind)>,
    meter: IoMeter,
    /// Optional shared LRU over data blocks (the paper's caching
    /// ablation); `None` reproduces Appendix D's no-caching pessimism.
    cache: Option<BlockCache>,
}

impl Table {
    /// Create a table. `clustered_on` names the attribute the heap is
    /// physically ordered by (also registered as a clustered index);
    /// `unclustered_on` lists additional non-clustered indexes.
    ///
    /// # Errors
    /// * [`StorageError::BadIndexAttribute`] for unknown attribute names.
    /// * [`StorageError::InvalidBlockSize`] when `tuples_per_block == 0`.
    pub fn new(
        schema: Schema,
        tuples_per_block: usize,
        clustered_on: Option<&str>,
        unclustered_on: &[&str],
        meter: IoMeter,
    ) -> Result<Self, StorageError> {
        let resolve = |attr: &str| {
            schema
                .position_of(attr)
                .map_err(|_| StorageError::BadIndexAttribute {
                    table: schema.relation().to_owned(),
                    attribute: attr.to_owned(),
                })
        };
        let cluster_pos = clustered_on.map(resolve).transpose()?;
        let mut indexes = Vec::new();
        if let Some(p) = cluster_pos {
            indexes.push((p, IndexKind::Clustered));
        }
        for attr in unclustered_on {
            indexes.push((resolve(attr)?, IndexKind::Unclustered));
        }
        Ok(Table {
            heap: HeapFile::new(tuples_per_block, cluster_pos)?,
            schema,
            indexes,
            meter,
            cache: None,
        })
    }

    /// Attach a shared block cache; subsequent reads of cached blocks are
    /// free. Updates invalidate the table's cached blocks.
    pub fn set_cache(&mut self, cache: BlockCache) {
        self.cache = Some(cache);
    }

    /// Point this table at a different [`IoMeter`] and detach any shared
    /// block cache. Used by snapshot readers so each concurrent query
    /// worker accumulates its own exact read counts instead of
    /// interleaving charges (or sharing cache hits) with other workers.
    pub(crate) fn rebind_meter(&mut self, meter: IoMeter) {
        self.meter = meter;
        self.cache = None;
    }

    /// Charge a read of the given block, unless cached.
    fn charge_block(&self, block: u64) {
        let hit = self
            .cache
            .as_ref()
            .map(|c| c.access(self.schema.relation(), block))
            .unwrap_or(false);
        if !hit {
            self.meter.charge_read(1);
        }
    }

    /// Charge reads of a contiguous block range.
    fn charge_block_range(&self, first: u64, count: u64) {
        for b in first..first + count {
            self.charge_block(b);
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuple occurrences (the paper's `C`).
    pub fn cardinality(&self) -> u64 {
        self.heap.len() as u64
    }

    /// Number of occupied blocks (the paper's `I = ⌈C/K⌉`).
    pub fn num_blocks(&self) -> u64 {
        self.heap.num_blocks()
    }

    /// The index available on `attr`, preferring clustered.
    pub fn index_on(&self, attr: usize) -> Option<IndexKind> {
        let mut found = None;
        for (pos, kind) in &self.indexes {
            if *pos == attr {
                if *kind == IndexKind::Clustered {
                    return Some(IndexKind::Clustered);
                }
                found = Some(*kind);
            }
        }
        found
    }

    /// Insert one occurrence (charged as one update touch).
    pub fn insert(&mut self, tuple: Tuple) {
        self.heap.insert(tuple);
        self.meter.charge_update(1);
        if let Some(c) = &self.cache {
            c.invalidate_table(self.schema.relation());
        }
    }

    /// Delete one occurrence (charged as one update touch). Returns
    /// whether a copy existed.
    pub fn delete(&mut self, tuple: &Tuple) -> bool {
        let found = self.heap.delete(tuple);
        if found {
            self.meter.charge_update(1);
            if let Some(c) = &self.cache {
                c.invalidate_table(self.schema.relation());
            }
        }
        found
    }

    /// Full scan: reads every block, returns all tuples.
    pub fn scan(&self) -> Vec<Tuple> {
        self.charge_block_range(0, self.heap.num_blocks());
        self.heap.tuples().to_vec()
    }

    /// Scan block by block without buffering the whole table — used by the
    /// nested-loop executor. Each yielded chunk charges one block read
    /// (the cache is deliberately bypassed: Scenario 2's premise is three
    /// memory blocks and no more).
    pub fn scan_blocks(&self) -> impl Iterator<Item = &[Tuple]> + '_ {
        self.heap.blocks().inspect(|_| self.meter.charge_read(1))
    }

    /// Index lookup: all occurrences with `attr == value`, charged per the
    /// index kind. Returns `None` when no index exists on `attr`.
    pub fn index_lookup(&self, attr: usize, value: &Value) -> Option<Vec<Tuple>> {
        match self.index_on(attr)? {
            IndexKind::Clustered => {
                let range = self.heap.clustered_range(value);
                if !range.is_empty() {
                    let first = (range.start / self.heap.tuples_per_block()) as u64;
                    self.charge_block_range(first, self.heap.blocks_spanned(&range));
                }
                Some(self.heap.tuples()[range].to_vec())
            }
            IndexKind::Unclustered => {
                let positions = self.heap.positions_with(attr, value);
                for &p in &positions {
                    self.charge_block((p / self.heap.tuples_per_block()) as u64);
                }
                Some(
                    positions
                        .iter()
                        .map(|&i| self.heap.tuples()[i].clone())
                        .collect(),
                )
            }
        }
    }

    /// Predicted I/O cost of an index lookup for `value` without touching
    /// the meter (used by the planner to compare access paths).
    pub fn index_lookup_cost(&self, attr: usize, value: &Value) -> Option<u64> {
        match self.index_on(attr)? {
            IndexKind::Clustered => {
                let range = self.heap.clustered_range(value);
                Some(self.heap.blocks_spanned(&range))
            }
            IndexKind::Unclustered => Some(self.heap.positions_with(attr, value).len() as u64),
        }
    }

    /// The logical contents as a signed bag (no I/O charged — used by
    /// differential tests and snapshots, not by query plans).
    pub fn contents(&self) -> SignedBag {
        SignedBag::from_tuples(self.heap.tuples().iter().cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let schema = Schema::new("r2", &["X", "Y"]);
        let mut t = Table::new(schema, 2, Some("X"), &["Y"], IoMeter::new()).unwrap();
        for (x, y) in [(1, 10), (1, 11), (2, 10), (3, 12), (1, 12)] {
            t.insert(Tuple::ints([x, y]));
        }
        t.meter.reset(); // discard load charges
        t
    }

    #[test]
    fn bad_index_attribute_rejected() {
        let schema = Schema::new("r", &["A"]);
        assert!(Table::new(schema.clone(), 2, Some("Z"), &[], IoMeter::new()).is_err());
        assert!(Table::new(schema, 2, None, &["Q"], IoMeter::new()).is_err());
    }

    #[test]
    fn scan_charges_all_blocks() {
        let t = table();
        assert_eq!(t.cardinality(), 5);
        assert_eq!(t.num_blocks(), 3);
        let all = t.scan();
        assert_eq!(all.len(), 5);
        assert_eq!(t.meter.query_reads(), 3);
    }

    #[test]
    fn clustered_lookup_charges_spanned_blocks() {
        let t = table();
        // X=1 has 3 contiguous tuples at positions 0..3 → spans blocks 0,1.
        let hits = t.index_lookup(0, &Value::Int(1)).unwrap();
        assert_eq!(hits.len(), 3);
        assert_eq!(t.meter.query_reads(), 2);
        assert_eq!(t.index_lookup_cost(0, &Value::Int(1)), Some(2));
    }

    #[test]
    fn unclustered_lookup_charges_per_match() {
        let t = table();
        let hits = t.index_lookup(1, &Value::Int(10)).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(t.meter.query_reads(), 2);
        assert_eq!(t.index_lookup_cost(1, &Value::Int(12)), Some(2));
    }

    #[test]
    fn missing_index_returns_none() {
        let schema = Schema::new("r", &["A", "B"]);
        let t = Table::new(schema, 2, None, &[], IoMeter::new()).unwrap();
        assert!(t.index_lookup(0, &Value::Int(1)).is_none());
        assert!(t.index_lookup_cost(0, &Value::Int(1)).is_none());
        assert!(t.index_on(0).is_none());
    }

    #[test]
    fn clustered_preferred_over_unclustered() {
        let schema = Schema::new("r", &["A"]);
        let t = Table::new(schema, 2, Some("A"), &["A"], IoMeter::new()).unwrap();
        assert_eq!(t.index_on(0), Some(IndexKind::Clustered));
    }

    #[test]
    fn inserts_and_deletes_charge_updates_not_reads() {
        let mut t = table();
        t.insert(Tuple::ints([9, 9]));
        assert!(t.delete(&Tuple::ints([9, 9])));
        assert!(!t.delete(&Tuple::ints([9, 9])));
        assert_eq!(t.meter.query_reads(), 0);
        assert_eq!(t.meter.update_writes(), 2);
    }

    #[test]
    fn scan_blocks_charges_lazily() {
        let t = table();
        let mut it = t.scan_blocks();
        let _first = it.next().unwrap();
        assert_eq!(t.meter.query_reads(), 1);
        drop(it);
    }

    #[test]
    fn contents_snapshot_free() {
        let t = table();
        let bag = t.contents();
        assert_eq!(bag.pos_len(), 5);
        assert_eq!(t.meter.query_reads(), 0);
    }
}
