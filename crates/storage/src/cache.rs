//! An LRU block cache — the ablation the paper points at.
//!
//! Appendix D evaluates every term with *no caching*: "whenever we probe a
//! relation, we go to disk to read the block. Hence, the results for ECA
//! are pessimistic", and §6.3 adds "we expect that the I/O performance of
//! ECA would improve if we incorporated multiple term optimization or
//! caching into the analysis". This module supplies that missing piece:
//! a shared LRU over `(table, block)` identities. Reads that hit the
//! cache are not charged to the [`crate::IoMeter`].
//!
//! The cache models Scenario 1's "ample memory" honestly; Scenario 2's
//! whole premise is three memory blocks, so the nested-loop executor does
//! not consult it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One cached block's identity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct BlockId {
    table: String,
    block: u64,
}

struct CacheInner {
    /// Block → recency stamp.
    entries: HashMap<BlockId, u64>,
    clock: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// A shared LRU block cache. Clones reference the same cache; access is
/// serialized by a mutex so parallel term evaluation can share it.
#[derive(Clone)]
pub struct BlockCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl BlockCache {
    /// A cache holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            inner: Arc::new(Mutex::new(CacheInner {
                entries: HashMap::with_capacity(capacity),
                clock: 0,
                capacity,
                hits: 0,
                misses: 0,
            })),
        }
    }

    /// Record an access to `(table, block)`. Returns `true` on a hit (the
    /// block read is free); on a miss the block is admitted, evicting the
    /// least recently used entry if full.
    pub fn access(&self, table: &str, block: u64) -> bool {
        let mut inner = self.inner.lock().expect("cache mutex poisoned");
        inner.clock += 1;
        let clock = inner.clock;
        let id = BlockId {
            table: table.to_owned(),
            block,
        };
        if let Some(stamp) = inner.entries.get_mut(&id) {
            *stamp = clock;
            inner.hits += 1;
            return true;
        }
        inner.misses += 1;
        if inner.capacity == 0 {
            return false;
        }
        if inner.entries.len() >= inner.capacity {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
            }
        }
        inner.entries.insert(id, clock);
        false
    }

    /// Drop every cached block (e.g. after updates invalidate contents).
    pub fn invalidate_table(&self, table: &str) {
        self.inner
            .lock()
            .expect("cache mutex poisoned")
            .entries
            .retain(|id, _| id.table != table);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("cache mutex poisoned").hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("cache mutex poisoned").misses
    }

    /// Blocks currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("cache mutex poisoned")
            .entries
            .len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .expect("cache mutex poisoned")
            .entries
            .is_empty()
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("cache mutex poisoned");
        write!(
            f,
            "BlockCache(cap={}, resident={}, hits={}, misses={})",
            inner.capacity,
            inner.entries.len(),
            inner.hits,
            inner.misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let c = BlockCache::new(4);
        assert!(!c.access("r1", 0));
        assert!(c.access("r1", 0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let c = BlockCache::new(2);
        c.access("r", 0);
        c.access("r", 1);
        c.access("r", 0); // refresh 0
        c.access("r", 2); // evicts 1 (LRU)
        assert!(c.access("r", 0), "0 stays resident");
        assert!(!c.access("r", 1), "1 was evicted");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let c = BlockCache::new(0);
        assert!(!c.access("r", 0));
        assert!(!c.access("r", 0));
        assert!(c.is_empty());
    }

    #[test]
    fn tables_are_distinct() {
        let c = BlockCache::new(4);
        c.access("a", 0);
        assert!(!c.access("b", 0));
        assert!(c.access("a", 0));
    }

    #[test]
    fn invalidation_clears_one_table() {
        let c = BlockCache::new(4);
        c.access("a", 0);
        c.access("b", 0);
        c.invalidate_table("a");
        assert!(!c.access("a", 0));
        assert!(c.access("b", 0));
    }

    #[test]
    fn clones_share_state() {
        let a = BlockCache::new(4);
        let b = a.clone();
        a.access("r", 0);
        assert!(b.access("r", 0));
    }
}
