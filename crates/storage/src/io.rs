//! The I/O meter: counts block reads performed at the source.

use std::cell::Cell;
use std::rc::Rc;

/// A shared counter of block reads.
///
/// Cloning an `IoMeter` yields a handle onto the *same* counter, so the
/// engine, its tables and the harness can all observe one total. The paper
/// counts only reads performed while evaluating warehouse queries; update
/// application is metered separately via [`IoMeter::charge_update`] and
/// excluded from [`IoMeter::query_reads`].
#[derive(Clone, Debug, Default)]
pub struct IoMeter {
    query_reads: Rc<Cell<u64>>,
    update_writes: Rc<Cell<u64>>,
}

impl IoMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        IoMeter::default()
    }

    /// Record `n` block reads attributable to query evaluation.
    pub fn charge_read(&self, n: u64) {
        self.query_reads.set(self.query_reads.get() + n);
    }

    /// Record `n` block touches attributable to update application.
    pub fn charge_update(&self, n: u64) {
        self.update_writes.set(self.update_writes.get() + n);
    }

    /// Total query-evaluation block reads so far.
    pub fn query_reads(&self) -> u64 {
        self.query_reads.get()
    }

    /// Total update-application block touches so far.
    pub fn update_writes(&self) -> u64 {
        self.update_writes.get()
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.query_reads.set(0);
        self.update_writes.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_counter() {
        let a = IoMeter::new();
        let b = a.clone();
        a.charge_read(3);
        b.charge_read(2);
        assert_eq!(a.query_reads(), 5);
        assert_eq!(b.query_reads(), 5);
    }

    #[test]
    fn update_charges_are_separate() {
        let m = IoMeter::new();
        m.charge_read(1);
        m.charge_update(7);
        assert_eq!(m.query_reads(), 1);
        assert_eq!(m.update_writes(), 7);
        m.reset();
        assert_eq!(m.query_reads(), 0);
        assert_eq!(m.update_writes(), 0);
    }
}
