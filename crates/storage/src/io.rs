//! The I/O meter: counts block reads performed at the source.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared counter of block reads.
///
/// Cloning an `IoMeter` yields a handle onto the *same* counter, so the
/// engine, its tables and the harness can all observe one total. The paper
/// counts only reads performed while evaluating warehouse queries; update
/// application is metered separately via [`IoMeter::charge_update`] and
/// excluded from [`IoMeter::query_reads`].
///
/// Counters are atomic so parallel term evaluation (worker threads sharing
/// one engine) still produces one coherent total.
#[derive(Clone, Debug, Default)]
pub struct IoMeter {
    query_reads: Arc<AtomicU64>,
    update_writes: Arc<AtomicU64>,
}

impl IoMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        IoMeter::default()
    }

    /// Record `n` block reads attributable to query evaluation.
    pub fn charge_read(&self, n: u64) {
        self.query_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` block touches attributable to update application.
    pub fn charge_update(&self, n: u64) {
        self.update_writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Total query-evaluation block reads so far.
    pub fn query_reads(&self) -> u64 {
        self.query_reads.load(Ordering::Relaxed)
    }

    /// Total update-application block touches so far.
    pub fn update_writes(&self) -> u64 {
        self.update_writes.load(Ordering::Relaxed)
    }

    /// Reset both counters to zero.
    pub fn reset(&self) {
        self.query_reads.store(0, Ordering::Relaxed);
        self.update_writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_counter() {
        let a = IoMeter::new();
        let b = a.clone();
        a.charge_read(3);
        b.charge_read(2);
        assert_eq!(a.query_reads(), 5);
        assert_eq!(b.query_reads(), 5);
    }

    #[test]
    fn update_charges_are_separate() {
        let m = IoMeter::new();
        m.charge_read(1);
        m.charge_update(7);
        assert_eq!(m.query_reads(), 1);
        assert_eq!(m.update_writes(), 7);
        m.reset();
        assert_eq!(m.query_reads(), 0);
        assert_eq!(m.update_writes(), 0);
    }

    #[test]
    fn charges_from_threads_accumulate() {
        let m = IoMeter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let handle = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        handle.charge_read(1);
                    }
                });
            }
        });
        assert_eq!(m.query_reads(), 400);
    }
}
