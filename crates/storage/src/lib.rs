//! Block-based storage engine with I/O accounting.
//!
//! The paper's performance study (§6.3, Appendix D) counts the number of
//! I/Os performed *at the source* while evaluating warehouse queries, under
//! two extreme scenarios:
//!
//! * **Scenario 1** — ample memory and in-memory indexes: clustered indexes
//!   on the join attributes plus one non-clustered index; index access
//!   itself is free, data-block reads are counted.
//! * **Scenario 2** — no indexes and only **three** free memory blocks,
//!   forcing block-nested-loop join processing.
//!
//! This crate implements a physical layer that realizes both scenarios on
//! real data structures:
//!
//! * [`HeapFile`] — tuples packed `K` per block, optionally kept in
//!   cluster order; every block touch increments an [`IoMeter`].
//! * [`Table`] — a heap plus index metadata, with metered access paths
//!   (scan, clustered lookup, unclustered lookup).
//! * [`StorageEngine`] — evaluates the warehouse's [`Query`] expressions
//!   physically with a small cost-based planner per scenario, so measured
//!   I/O counts can be compared against the paper's closed-form formulas
//!   (reproduced in `eca-analytic`).
//!
//! The engine is deliberately honest rather than formula-fitted: it counts
//! the block reads its plans actually perform. Lower-order deviations from
//! Appendix D's hand counts (which ignore e.g. the cost of reading outer
//! chunks) are documented in `EXPERIMENTS.md`.
//!
//! [`Query`]: eca_core::Query

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod heap;
pub mod io;
pub mod table;

pub use cache::BlockCache;
pub use engine::{Scenario, StorageEngine};
pub use error::StorageError;
pub use heap::HeapFile;
pub use io::IoMeter;
pub use table::{IndexKind, Table};
