//! Storage-layer errors.

use std::fmt;

use eca_relational::RelationalError;

/// Errors raised by the physical storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A relational-layer error bubbled up.
    Relational(RelationalError),
    /// A query referenced a table that is not loaded in the engine.
    UnknownTable {
        /// The missing table name.
        table: String,
    },
    /// `K` (tuples per block) must be at least 1.
    InvalidBlockSize {
        /// The supplied value.
        tuples_per_block: usize,
    },
    /// An index was requested on an attribute the schema lacks.
    BadIndexAttribute {
        /// The table.
        table: String,
        /// The attribute that failed to resolve.
        attribute: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Relational(e) => write!(f, "{e}"),
            StorageError::UnknownTable { table } => write!(f, "unknown table {table:?}"),
            StorageError::InvalidBlockSize { tuples_per_block } => {
                write!(f, "tuples per block must be >= 1, got {tuples_per_block}")
            }
            StorageError::BadIndexAttribute { table, attribute } => {
                write!(f, "table {table:?} has no attribute {attribute:?} to index")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for StorageError {
    fn from(e: RelationalError) -> Self {
        StorageError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StorageError::UnknownTable { table: "r9".into() };
        assert!(e.to_string().contains("r9"));
        let w: StorageError = RelationalError::MissingKey {
            relation: "r".into(),
        }
        .into();
        assert!(std::error::Error::source(&w).is_some());
    }
}
