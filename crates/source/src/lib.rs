//! The source site (paper §1, Figure 1.1).
//!
//! A source is an autonomous system that knows **nothing about views**. It
//! does exactly two things:
//!
//! * execute local updates and notify the warehouse (`S_up` events), and
//! * evaluate queries it receives against its *current* base relations and
//!   return the answer (`S_qu` events).
//!
//! Both halves of each event are atomic (the paper's local concurrency
//! assumption); the simulator serializes events, so no locking is needed
//! here. Query evaluation runs on the metered [`StorageEngine`], so every
//! run produces honest block-read counts under either Appendix-D cost
//! scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use eca_core::basedb::BaseDb;
use eca_core::QueryId;
use eca_relational::{Schema, SignedBag, Update};
use eca_storage::{IoMeter, Scenario, StorageEngine, StorageError};
use eca_wire::{Message, PollWaker, Readiness, Transport, TransportError, WireQuery};

/// Errors raised by the source.
#[derive(Debug)]
pub enum SourceError {
    /// A query referenced a relation absent from the catalog.
    UnknownRelation(String),
    /// The storage layer failed.
    Storage(StorageError),
    /// The wire query could not be rebuilt into an evaluatable form.
    BadQuery(eca_core::CoreError),
    /// The transport to the warehouse failed.
    Transport(TransportError),
    /// The warehouse sent a message kind that never travels toward a
    /// source (anything but a query).
    Protocol(&'static str),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::UnknownRelation(r) => write!(f, "unknown relation {r:?}"),
            SourceError::Storage(e) => write!(f, "storage error: {e}"),
            SourceError::BadQuery(e) => write!(f, "bad query: {e}"),
            SourceError::Transport(e) => write!(f, "transport error: {e}"),
            SourceError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<StorageError> for SourceError {
    fn from(e: StorageError) -> Self {
        SourceError::Storage(e)
    }
}

impl From<TransportError> for SourceError {
    fn from(e: TransportError) -> Self {
        SourceError::Transport(e)
    }
}

/// What happened during one [`Source::serve`] session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Updates executed from the script.
    pub updates: u64,
    /// Update notifications sent (effective updates only).
    pub notifications: u64,
    /// Queries answered before the warehouse hung up.
    pub answers: u64,
    /// Duplicate queries served from the replay cache instead of being
    /// re-evaluated (a faulty channel may deliver a query twice; the
    /// answer must be the one the first evaluation produced, not a fresh
    /// evaluation on a later state).
    pub duplicates: u64,
    /// Inbound messages dropped because they failed to decode (corrupt
    /// frames must not kill the serving loop).
    pub decode_skips: u64,
}

/// How many recently answered queries are kept for duplicate replay.
const REPLAY_CACHE_CAP: usize = 64;

/// Bounded FIFO cache of the most recent `(id, answer)` pairs, so a
/// duplicate query (same id delivered twice by a faulty channel) is
/// answered **idempotently** — with the bytes of the original
/// evaluation — instead of being re-evaluated on a later source state
/// (which would reintroduce exactly the §4 anomalies the algorithms
/// compensate for).
struct ReplayCache {
    entries: VecDeque<(QueryId, SignedBag)>,
}

impl ReplayCache {
    fn new() -> Self {
        ReplayCache {
            entries: VecDeque::new(),
        }
    }

    fn get(&self, id: QueryId) -> Option<&SignedBag> {
        self.entries
            .iter()
            .find(|(cached, _)| *cached == id)
            .map(|(_, a)| a)
    }

    fn put(&mut self, id: QueryId, answer: SignedBag) {
        if self.entries.len() == REPLAY_CACHE_CAP {
            self.entries.pop_front();
        }
        self.entries.push_back((id, answer));
    }
}

/// The source site: a schema catalog over a metered storage engine.
pub struct Source {
    engine: StorageEngine,
    catalog: Vec<Schema>,
    /// Count of updates executed (the `i` in `S_up_i`).
    updates_executed: u64,
    /// Count of queries answered.
    queries_answered: u64,
    /// Simulated device latency paid per metered block read while
    /// answering a query. Zero (the default) disables the simulation.
    io_latency: Duration,
}

impl Source {
    /// An empty source under the given cost scenario.
    pub fn new(scenario: Scenario) -> Self {
        Source {
            engine: StorageEngine::new(scenario),
            catalog: Vec::new(),
            updates_executed: 0,
            queries_answered: 0,
            io_latency: Duration::ZERO,
        }
    }

    /// Register a base relation with its physical layout.
    ///
    /// # Errors
    /// Propagates storage validation errors.
    pub fn add_relation(
        &mut self,
        schema: Schema,
        tuples_per_block: usize,
        clustered_on: Option<&str>,
        unclustered_on: &[&str],
    ) -> Result<(), SourceError> {
        self.engine.create_table(
            schema.clone(),
            tuples_per_block,
            clustered_on,
            unclustered_on,
        )?;
        self.catalog.push(schema);
        Ok(())
    }

    /// Bulk-load tuples without counting toward query I/O.
    ///
    /// # Errors
    /// [`SourceError::UnknownRelation`] for unregistered relations.
    pub fn load(
        &mut self,
        relation: &str,
        tuples: impl IntoIterator<Item = eca_relational::Tuple>,
    ) -> Result<(), SourceError> {
        if !self.catalog.iter().any(|s| s.relation() == relation) {
            return Err(SourceError::UnknownRelation(relation.to_owned()));
        }
        for t in tuples {
            self.engine.apply(&Update::insert(relation, t));
        }
        self.engine.meter().reset();
        Ok(())
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &[Schema] {
        &self.catalog
    }

    /// The I/O meter (block reads charged to query evaluation).
    pub fn io_meter(&self) -> &IoMeter {
        self.engine.meter()
    }

    /// Enable an LRU block cache at this source (the paper's caching
    /// ablation, §6.3). Returns a handle for hit/miss statistics.
    pub fn enable_cache(&mut self, capacity: usize) -> eca_storage::BlockCache {
        self.engine.enable_cache(capacity)
    }

    /// Enable multi-term batching: the terms of one incoming query share
    /// scans and index-probe results, so a k-term compensating query reads
    /// each base relation roughly once instead of k times. Off by default
    /// to preserve the paper's pessimistic per-term cost accounting.
    pub fn enable_term_batching(&mut self) {
        self.engine.enable_term_batching();
    }

    /// Pay a simulated device latency of `per_block` for every block read
    /// charged while answering a query. The paper's cost model (§6,
    /// Appendix D) is block I/O; this turns the counted blocks into wall
    /// time so throughput experiments observe the waiting the counts
    /// imply. Zero (the default) leaves evaluation instantaneous and all
    /// deterministic tests unaffected.
    pub fn set_io_latency(&mut self, per_block: Duration) {
        self.io_latency = per_block;
    }

    /// Sleep for `blocks` worth of simulated device time.
    fn pay_io_latency(&self, blocks: u64) {
        pay_latency(self.io_latency, blocks);
    }

    /// Updates executed so far.
    pub fn updates_executed(&self) -> u64 {
        self.updates_executed
    }

    /// Queries answered so far.
    pub fn queries_answered(&self) -> u64 {
        self.queries_answered
    }

    /// Execute an update locally (the first half of an `S_up` event).
    /// Returns `false` when a delete found nothing to remove.
    pub fn execute_update(&mut self, update: &Update) -> bool {
        let effective = self.engine.apply(update);
        if effective {
            self.updates_executed += 1;
        }
        effective
    }

    /// Evaluate a wire query on the current base relations (an `S_qu`
    /// event).
    ///
    /// # Errors
    /// [`SourceError::BadQuery`] when the query references unknown
    /// relations; storage errors otherwise.
    pub fn answer(&mut self, query: &WireQuery) -> Result<SignedBag, SourceError> {
        let rebuilt = query
            .to_query(&self.catalog)
            .map_err(SourceError::BadQuery)?;
        let before = self.engine.meter().query_reads();
        let answer = self.engine.eval_query(&rebuilt)?;
        self.pay_io_latency(self.engine.meter().query_reads() - before);
        self.queries_answered += 1;
        Ok(answer)
    }

    /// Like [`Source::answer`] but evaluates the query's terms on worker
    /// threads. Answers are identical; block-read totals can differ only
    /// when term batching is enabled (racing threads may both pay for a
    /// scan before either memoizes it).
    ///
    /// # Errors
    /// As [`Source::answer`].
    pub fn answer_parallel(&mut self, query: &WireQuery) -> Result<SignedBag, SourceError> {
        let rebuilt = query
            .to_query(&self.catalog)
            .map_err(SourceError::BadQuery)?;
        let answer = self.engine.eval_query_parallel(&rebuilt)?;
        self.queries_answered += 1;
        Ok(answer)
    }

    /// Drive this source over a [`Transport`]: execute `script`, sending
    /// an update notification for each effective update, then answer
    /// every incoming query on the *current* state until the warehouse
    /// hangs up.
    ///
    /// This is the autonomous-site event loop of the paper's Figure 1.1:
    /// `S_up` events all precede the `S_qu` events here only in program
    /// order — on the wire the warehouse interleaves deliveries however
    /// its scheduler likes, and the FIFO channel is what keeps the §3
    /// ordering assumption true. Answer payloads are charged to the
    /// transport's meter (the paper's `B`).
    ///
    /// # Errors
    /// Transport failures, undecodable queries, and
    /// [`SourceError::Protocol`] if the warehouse sends anything but a
    /// [`Message::QueryRequest`].
    pub fn serve(
        &mut self,
        transport: &mut dyn Transport,
        script: &[Update],
    ) -> Result<ServeStats, SourceError> {
        let mut stats = self.run_script(transport, script)?;
        self.answer_loop(transport, &mut stats)?;
        Ok(stats)
    }

    /// Like [`Source::serve`], but answers up to `workers` outstanding
    /// queries concurrently, each on a private read-only snapshot of the
    /// post-script base relations. Per-connection FIFO answer order is
    /// preserved — a sequencer releases completed answers strictly in the
    /// order their queries arrived, so the warehouse observes exactly the
    /// event history §3's channel assumption promises — and every block
    /// read a worker performs is re-charged to this source's main
    /// [`IoMeter`], keeping `M`/`B`/read accounting identical to the
    /// serial loop. With `workers <= 1` this *is* [`Source::serve`].
    ///
    /// Snapshots are sound here because `serve`'s protocol executes the
    /// whole script before the answer phase: base relations no longer
    /// change while queries are in flight, so "state at query receipt"
    /// and "state at pool start" coincide.
    ///
    /// # Errors
    /// As [`Source::serve`]; worker-side evaluation errors are propagated
    /// to the caller.
    pub fn serve_pool(
        &mut self,
        transport: &mut dyn Transport,
        script: &[Update],
        workers: usize,
    ) -> Result<ServeStats, SourceError> {
        let mut stats = self.run_script(transport, script)?;
        if workers <= 1 {
            self.answer_loop(transport, &mut stats)?;
            return Ok(stats);
        }

        let catalog = &self.catalog;
        let io_latency = self.io_latency;
        let main_meter = self.engine.meter().clone();
        let snapshots: Vec<StorageEngine> = (0..workers)
            .map(|_| self.engine.snapshot_reader(IoMeter::new()))
            .collect();
        // One waker for both wake sources: the transport notifies on every
        // inbound frame (and on peer hang-up), workers notify on every
        // completed answer. The dispatcher parks on it instead of spinning
        // through 1 ms polls — an idle source burns ~0 CPU, which matters
        // once 100+ sources share a box with the reactor.
        let waker = PollWaker::new();
        let transport_wakes = transport.set_waker(std::sync::Arc::clone(&waker));
        let pool = PoolShared::new(std::sync::Arc::clone(&waker));

        let outcome = std::thread::scope(|scope| -> Result<PoolTally, SourceError> {
            for snapshot in snapshots {
                let pool = &pool;
                scope.spawn(move || pool.worker(snapshot, catalog, io_latency));
            }

            let mut tally = PoolTally::default();
            let mut replay = ReplayCache::new();
            let mut in_flight: std::collections::BTreeSet<QueryId> =
                std::collections::BTreeSet::new();
            let mut next_seq = 0u64; // next job number to hand out
            let mut next_to_send = 0u64; // FIFO sequencer cursor
            let mut hung_up = false;
            let mut sent = 0u64;

            // Classify one inbound message: enqueue fresh queries;
            // answer replay-cached duplicates immediately; silently drop
            // duplicates whose original is still in flight (its answer is
            // coming, in FIFO position).
            macro_rules! dispatch {
                ($msg:expr) => {{
                    let Message::QueryRequest { id, query } = $msg else {
                        return Err(SourceError::Protocol(
                            "warehouse -> source carries only QueryRequest",
                        ));
                    };
                    if let Some(answer) = replay.get(id) {
                        tally.duplicates += 1;
                        let answer = answer.clone();
                        transport.meter().record_answer_payload(
                            answer.encoded_len() as u64,
                            answer.pos_len() + answer.neg_len(),
                        );
                        transport.send(&Message::QueryAnswer { id, answer })?;
                    } else if in_flight.contains(&id) {
                        tally.duplicates += 1;
                    } else {
                        in_flight.insert(id);
                        pool.enqueue(PoolJob {
                            seq: next_seq,
                            id,
                            query,
                        });
                        next_seq += 1;
                    }
                }};
            }

            loop {
                // Snapshot the waker epoch *before* harvesting results and
                // polling: anything that lands mid-iteration bumps it, so
                // the park below returns immediately instead of sleeping
                // through the event.
                let seen = waker.epoch();
                // Release every answer that is ready *and* next in FIFO
                // order. After a hang-up the peer no longer wants them,
                // so completed work is drained and discarded.
                for (id, answer, reads) in pool.take_ready(&mut next_to_send)? {
                    main_meter.charge_read(reads);
                    sent += 1;
                    in_flight.remove(&id);
                    replay.put(id, answer.clone());
                    if hung_up {
                        continue;
                    }
                    transport.meter().record_answer_payload(
                        answer.encoded_len() as u64,
                        answer.pos_len() + answer.neg_len(),
                    );
                    transport.send(&Message::QueryAnswer { id, answer })?;
                    tally.answered += 1;
                }
                let outstanding = next_seq - sent;
                if hung_up && outstanding == 0 {
                    break;
                }
                if outstanding == 0 {
                    // Nothing in flight: block until the warehouse speaks
                    // or hangs up.
                    match transport.recv() {
                        Ok(Some(msg)) => dispatch!(msg),
                        Ok(None) => hung_up = true,
                        Err(TransportError::Timeout) => {}
                        Err(TransportError::Decode(_)) => tally.decode_skips += 1,
                        Err(e) => return Err(e.into()),
                    }
                    continue;
                }
                match transport.poll()? {
                    Readiness::Ready => match transport.try_recv() {
                        Ok(Some(msg)) => dispatch!(msg),
                        Ok(None) => {}
                        Err(TransportError::Decode(_)) => tally.decode_skips += 1,
                        Err(e) => return Err(e.into()),
                    },
                    Readiness::Closed => hung_up = true,
                    // Idle with answers outstanding: park until a worker
                    // finishes or the transport speaks. Bounded in case the
                    // transport cannot deliver wake-ups (then this is the
                    // old 1 ms poll); with waker coverage the bound only
                    // backstops a lost notification.
                    Readiness::Idle => {
                        let bound = if transport_wakes {
                            Duration::from_millis(50)
                        } else {
                            Duration::from_millis(1)
                        };
                        waker.wait(seen, bound);
                    }
                }
            }
            pool.shutdown();
            Ok(tally)
        });
        pool.shutdown(); // idempotent; covers the early-error path
        let tally = outcome?;
        stats.answers = tally.answered;
        stats.duplicates = tally.duplicates;
        stats.decode_skips = tally.decode_skips;
        self.queries_answered += stats.answers;
        Ok(stats)
    }

    /// Execute `script`, notifying the warehouse of each effective update
    /// (the `S_up` half of a serve session).
    fn run_script(
        &mut self,
        transport: &mut dyn Transport,
        script: &[Update],
    ) -> Result<ServeStats, SourceError> {
        let mut stats = ServeStats::default();
        for update in script {
            stats.updates += 1;
            if self.execute_update(update) {
                transport.send(&Message::UpdateNotification {
                    update: update.clone(),
                })?;
                stats.notifications += 1;
            }
        }
        Ok(stats)
    }

    /// Answer queries one at a time until the warehouse hangs up (the
    /// `S_qu` half of a serve session), filling `stats.answers`,
    /// `stats.duplicates` and `stats.decode_skips`.
    ///
    /// Hardened against a faulty channel: a recv timeout is retried, an
    /// undecodable frame is skipped (and counted), and a duplicate query
    /// id is answered from the bounded replay cache with the *original*
    /// answer bytes rather than re-evaluated on the current state.
    fn answer_loop(
        &mut self,
        transport: &mut dyn Transport,
        stats: &mut ServeStats,
    ) -> Result<(), SourceError> {
        let mut replay = ReplayCache::new();
        loop {
            let msg = match transport.recv() {
                Ok(Some(msg)) => msg,
                Ok(None) => return Ok(()),
                Err(TransportError::Timeout) => continue,
                Err(TransportError::Decode(_)) => {
                    stats.decode_skips += 1;
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            let Message::QueryRequest { id, query } = msg else {
                return Err(SourceError::Protocol(
                    "warehouse -> source carries only QueryRequest",
                ));
            };
            let answer = if let Some(cached) = replay.get(id) {
                stats.duplicates += 1;
                cached.clone()
            } else {
                let answer = self.answer(&query)?;
                replay.put(id, answer.clone());
                stats.answers += 1;
                answer
            };
            transport.meter().record_answer_payload(
                answer.encoded_len() as u64,
                answer.pos_len() + answer.neg_len(),
            );
            transport.send(&Message::QueryAnswer { id, answer })?;
        }
    }

    /// A logical snapshot of the current base relations — used by the
    /// consistency checker to record source states `ss_i`. Free of I/O
    /// charges.
    pub fn snapshot(&self) -> BaseDb {
        let mut db = BaseDb::new();
        for schema in &self.catalog {
            db.register(schema.relation());
            if let Some(table) = self.engine.table(schema.relation()) {
                for (t, c) in table.contents().iter() {
                    for _ in 0..c.max(0) {
                        db.insert(schema.relation(), t.clone());
                    }
                }
            }
        }
        db
    }
}

/// Sleep for `blocks` worth of simulated device time (free-standing so
/// pool workers can pay without a `Source` handle).
fn pay_latency(per_block: Duration, blocks: u64) {
    if per_block > Duration::ZERO && blocks > 0 {
        let capped = blocks.min(u64::from(u32::MAX)) as u32;
        std::thread::sleep(per_block.saturating_mul(capped));
    }
}

/// One source of a multiplexed fleet: its site state, its channel to the
/// warehouse, and the update script it will execute.
pub struct FleetMember {
    /// The autonomous site.
    pub source: Source,
    /// Its channel to the warehouse.
    pub transport: Box<dyn Transport + Send>,
    /// Updates to execute and notify before the answer phase.
    pub script: Vec<Update>,
}

/// Drive a whole fleet of sources from **one** thread, multiplexed over
/// `Transport::poll()` readiness — the source-side mirror of the
/// warehouse reactor.
///
/// Each member runs the same protocol as [`Source::serve`] (script first,
/// then answer every query on the current state until its warehouse end
/// hangs up), but instead of one blocked thread per source a single loop
/// scans all transports and parks on a shared [`PollWaker`] when nothing
/// is ready. Per-channel FIFO is untouched: each channel still sends its
/// script in order and answers its queries in arrival order.
///
/// Scaling benchmarks use this to drive 100+ sources without the
/// source-side thread count confounding the warehouse-side comparison:
/// thread-per-source vs reactor warehouses can face *identical* source
/// fleets.
///
/// # Errors
/// First member failure wins; as [`Source::serve`].
pub fn serve_fleet(members: &mut [FleetMember]) -> Result<Vec<ServeStats>, SourceError> {
    // Phase 1: every script in full, member order. Scripts only send, so
    // over unbounded links this cannot block; interleaving across members
    // is irrelevant to correctness (sources are autonomous — nothing
    // orders updates across sites).
    let mut stats = Vec::with_capacity(members.len());
    for m in members.iter_mut() {
        stats.push(m.source.run_script(m.transport.as_mut(), &m.script)?);
    }

    // Phase 2: multiplexed answer loop.
    let waker = PollWaker::new();
    let mut wakers_everywhere = true;
    for m in members.iter_mut() {
        wakers_everywhere &= m.transport.set_waker(std::sync::Arc::clone(&waker));
    }
    let mut replay: Vec<ReplayCache> = members.iter().map(|_| ReplayCache::new()).collect();
    let mut open: Vec<bool> = vec![true; members.len()];
    let mut live = members.len();
    while live > 0 {
        let seen = waker.epoch();
        let mut progress = false;
        for (i, m) in members.iter_mut().enumerate() {
            if !open[i] {
                continue;
            }
            loop {
                match m.transport.poll()? {
                    Readiness::Idle => break,
                    Readiness::Closed => {
                        open[i] = false;
                        live -= 1;
                        break;
                    }
                    Readiness::Ready => {
                        let msg = match m.transport.try_recv() {
                            Ok(Some(msg)) => msg,
                            Ok(None) => continue,
                            Err(TransportError::Decode(_)) => {
                                stats[i].decode_skips += 1;
                                continue;
                            }
                            Err(e) => return Err(e.into()),
                        };
                        progress = true;
                        let Message::QueryRequest { id, query } = msg else {
                            return Err(SourceError::Protocol(
                                "warehouse -> source carries only QueryRequest",
                            ));
                        };
                        let answer = if let Some(cached) = replay[i].get(id) {
                            stats[i].duplicates += 1;
                            cached.clone()
                        } else {
                            let answer = m.source.answer(&query)?;
                            replay[i].put(id, answer.clone());
                            stats[i].answers += 1;
                            answer
                        };
                        m.transport.meter().record_answer_payload(
                            answer.encoded_len() as u64,
                            answer.pos_len() + answer.neg_len(),
                        );
                        m.transport.send(&Message::QueryAnswer { id, answer })?;
                    }
                }
            }
        }
        if !progress && live > 0 {
            // Full scan found nothing: park until any channel speaks (or
            // hangs up — transport drops notify too). Bounded as a
            // lost-notification backstop; without universal waker
            // coverage it degrades to a short poll.
            let bound = if wakers_everywhere {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(1)
            };
            waker.wait(seen, bound);
        }
    }
    Ok(stats)
}

/// One query handed to the worker pool, tagged with its arrival sequence
/// number — the FIFO position its answer must be released at.
struct PoolJob {
    seq: u64,
    id: QueryId,
    query: WireQuery,
}

/// Dispatcher-side counters for one `serve_pool` run.
#[derive(Default)]
struct PoolTally {
    answered: u64,
    duplicates: u64,
    decode_skips: u64,
}

/// `(id, answer, block reads charged)` or the worker-side failure.
type PoolResult = Result<(QueryId, SignedBag, u64), SourceError>;

/// Queues shared between `serve_pool`'s dispatcher and its workers.
struct PoolShared {
    jobs: Mutex<(VecDeque<PoolJob>, bool)>,
    jobs_cv: Condvar,
    results: Mutex<BTreeMap<u64, PoolResult>>,
    /// Shared with the dispatcher (and its transport): notified on every
    /// completed answer so a parked dispatcher wakes. Replaces the old
    /// results condvar, whose `wait_for_result` helper woke on *any*
    /// non-empty result map — even one the FIFO sequencer could not
    /// release yet — degenerating into a hot spin on out-of-order
    /// completions.
    waker: std::sync::Arc<PollWaker>,
}

/// Lock recovering from poisoning: a panicked worker must not wedge the
/// dispatcher, which still needs to drain and report the error.
fn pool_lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl PoolShared {
    fn new(waker: std::sync::Arc<PollWaker>) -> Self {
        PoolShared {
            jobs: Mutex::new((VecDeque::new(), false)),
            jobs_cv: Condvar::new(),
            results: Mutex::new(BTreeMap::new()),
            waker,
        }
    }

    /// Enqueue a validated job for the workers.
    fn enqueue(&self, job: PoolJob) {
        pool_lock(&self.jobs).0.push_back(job);
        self.jobs_cv.notify_one();
    }

    /// Remove and return every completed answer that is next in FIFO
    /// order, advancing `next_to_send` past each. A worker error is
    /// propagated at its FIFO position.
    fn take_ready(
        &self,
        next_to_send: &mut u64,
    ) -> Result<Vec<(QueryId, SignedBag, u64)>, SourceError> {
        let mut ready = Vec::new();
        let mut results = pool_lock(&self.results);
        while let Some(result) = results.remove(next_to_send) {
            *next_to_send += 1;
            ready.push(result?);
        }
        Ok(ready)
    }

    /// Tell every worker to exit once the job queue drains. Idempotent.
    fn shutdown(&self) {
        pool_lock(&self.jobs).1 = true;
        self.jobs_cv.notify_all();
    }

    /// Worker body: evaluate jobs on a private snapshot, paying the
    /// simulated device latency for exactly the blocks this query read.
    fn worker(&self, snapshot: StorageEngine, catalog: &[Schema], io_latency: Duration) {
        let meter = snapshot.meter().clone();
        loop {
            let job = {
                let mut guard = pool_lock(&self.jobs);
                loop {
                    if let Some(job) = guard.0.pop_front() {
                        break job;
                    }
                    if guard.1 {
                        return;
                    }
                    guard = self
                        .jobs_cv
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let before = meter.query_reads();
            let result = job
                .query
                .to_query(catalog)
                .map_err(SourceError::BadQuery)
                .and_then(|q| snapshot.eval_query(&q).map_err(SourceError::from));
            let reads = meter.query_reads() - before;
            pay_latency(io_latency, reads);
            pool_lock(&self.results).insert(job.seq, result.map(|answer| (job.id, answer, reads)));
            self.waker.notify();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::basedb::BaseLookup;
    use eca_core::ViewDef;
    use eca_relational::{Predicate, Tuple};
    use eca_wire::WireQuery;

    fn example_source(scenario: Scenario) -> (Source, ViewDef) {
        let mut s = Source::new(scenario);
        s.add_relation(Schema::new("r1", &["W", "X"]), 20, Some("X"), &[])
            .unwrap();
        s.add_relation(Schema::new("r2", &["X", "Y"]), 20, Some("X"), &["Y"])
            .unwrap();
        s.load("r1", [Tuple::ints([1, 2])]).unwrap();
        s.load("r2", [Tuple::ints([2, 4])]).unwrap();
        let view = ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        (s, view)
    }

    #[test]
    fn answers_follow_current_state() {
        let (mut s, view) = example_source(Scenario::Indexed);
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        // Query built for U, but evaluated AFTER a further update — the
        // decoupling at the heart of the paper.
        let q = WireQuery::from_query(&view.substitute(&u).unwrap());
        s.execute_update(&u);
        s.execute_update(&Update::insert("r1", Tuple::ints([4, 2])));
        let a = s.answer(&q).unwrap();
        assert_eq!(
            a,
            SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])])
        );
        assert_eq!(s.updates_executed(), 2);
        assert_eq!(s.queries_answered(), 1);
    }

    #[test]
    fn snapshot_matches_applied_updates() {
        let (mut s, view) = example_source(Scenario::nested_loop_default());
        s.execute_update(&Update::insert("r1", Tuple::ints([4, 2])));
        s.execute_update(&Update::delete("r2", Tuple::ints([2, 4])));
        let snap = s.snapshot();
        assert_eq!(snap.bag("r1").unwrap().pos_len(), 2);
        assert!(snap.bag("r2").unwrap().is_empty());
        assert!(view.eval(&snap).unwrap().is_empty());
    }

    #[test]
    fn ineffective_delete_not_counted() {
        let (mut s, _) = example_source(Scenario::Indexed);
        assert!(!s.execute_update(&Update::delete("r1", Tuple::ints([9, 9]))));
        assert_eq!(s.updates_executed(), 0);
    }

    #[test]
    fn unknown_relation_in_query_rejected() {
        let (mut s, _) = example_source(Scenario::Indexed);
        let bad_view = ViewDef::new(
            "V",
            vec![Schema::new("zz", &["A"])],
            Predicate::True,
            vec![0],
        )
        .unwrap();
        let q = WireQuery::from_query(&bad_view.as_query());
        assert!(matches!(s.answer(&q), Err(SourceError::BadQuery(_))));
    }

    #[test]
    fn load_rejects_unregistered() {
        let mut s = Source::new(Scenario::Indexed);
        assert!(matches!(
            s.load("nope", [Tuple::ints([1])]),
            Err(SourceError::UnknownRelation(_))
        ));
    }

    #[test]
    fn serve_notifies_and_answers_until_hangup() {
        use eca_wire::{InMemoryFifo, TransferMeter, Transport};

        let (mut src_end, mut wh_end) = InMemoryFifo::pair(TransferMeter::new());
        let (mut s, view) = example_source(Scenario::Indexed);

        // Queue a query "from the warehouse" before serving; the
        // in-memory link never blocks, so serve() drains it and returns
        // as if the peer hung up.
        let q = WireQuery::from_query(&view.as_query());
        wh_end
            .send(&eca_wire::Message::QueryRequest {
                id: eca_core::QueryId(1),
                query: q,
            })
            .unwrap();

        let script = [
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::delete("r1", Tuple::ints([9, 9])), // ineffective
        ];
        let stats = s.serve(&mut src_end, &script).unwrap();
        assert_eq!(
            stats,
            ServeStats {
                updates: 2,
                notifications: 1,
                answers: 1,
                ..ServeStats::default()
            }
        );

        // The warehouse end sees the notification then the answer.
        assert!(matches!(
            wh_end.recv().unwrap(),
            Some(eca_wire::Message::UpdateNotification { .. })
        ));
        assert!(matches!(
            wh_end.recv().unwrap(),
            Some(eca_wire::Message::QueryAnswer { .. })
        ));
        assert!(src_end.meter().answer_bytes() > 0);
    }

    #[test]
    fn serve_pool_matches_serve_and_preserves_fifo_order() {
        use eca_wire::{SharedFifo, TransferMeter};

        // Reference: the serial loop.
        let (serial_answer, serial_reads) = {
            let (mut s, view) = example_source(Scenario::Indexed);
            s.execute_update(&Update::insert("r2", Tuple::ints([2, 3])));
            let q = WireQuery::from_query(&view.as_query());
            let a = s.answer(&q).unwrap();
            (a, s.io_meter().query_reads())
        };

        let (mut src_end, mut wh_end) = SharedFifo::pair(TransferMeter::new());
        let (mut s, view) = example_source(Scenario::Indexed);
        s.set_io_latency(Duration::from_micros(50));
        let script = vec![Update::insert("r2", Tuple::ints([2, 3]))];
        let source_thread = std::thread::spawn(move || {
            let stats = s.serve_pool(&mut src_end, &script, 3).unwrap();
            (stats, s.io_meter().query_reads(), s.queries_answered())
        });

        assert!(matches!(
            wh_end.recv().unwrap(),
            Some(Message::UpdateNotification { .. })
        ));
        // Four copies of the same query in flight at once.
        let q = WireQuery::from_query(&view.as_query());
        for i in 1..=4u64 {
            wh_end
                .send(&Message::QueryRequest {
                    id: QueryId(i),
                    query: q.clone(),
                })
                .unwrap();
        }
        for i in 1..=4u64 {
            let Some(Message::QueryAnswer { id, answer }) = wh_end.recv().unwrap() else {
                panic!("expected an answer");
            };
            assert_eq!(id, QueryId(i), "answers must come back in FIFO order");
            assert_eq!(answer, serial_answer);
        }
        drop(wh_end); // hang up
        let (stats, reads, answered) = source_thread.join().unwrap();
        assert_eq!(stats.answers, 4);
        assert_eq!(answered, 4);
        // Worker reads are re-charged to the main meter: 4 copies of the
        // query cost exactly 4x the serial single-query reads.
        assert_eq!(reads, 4 * serial_reads);
    }

    /// A duplicate query id must be answered with the *original* answer
    /// bytes (replay cache), not a fresh evaluation on the current state
    /// — even if the base relations changed in between.
    #[test]
    fn duplicate_query_replayed_idempotently() {
        use eca_wire::{InMemoryFifo, TransferMeter, Transport};

        let (mut src_end, mut wh_end) = InMemoryFifo::pair(TransferMeter::new());
        let (mut s, view) = example_source(Scenario::Indexed);

        let q = WireQuery::from_query(&view.as_query());
        // The same query id delivered three times in a row, with a
        // state-changing update queued *between* the duplicates. A
        // re-evaluation would see the extra r1 tuple; the replay cache
        // must not.
        for _ in 0..3 {
            wh_end
                .send(&Message::QueryRequest {
                    id: QueryId(7),
                    query: q.clone(),
                })
                .unwrap();
        }
        let stats = s.serve(&mut src_end, &[]).unwrap();
        assert_eq!(stats.answers, 1);
        assert_eq!(stats.duplicates, 2);
        assert_eq!(s.queries_answered(), 1, "evaluated exactly once");

        let mut answers = Vec::new();
        while let Some(msg) = wh_end.recv().unwrap() {
            let Message::QueryAnswer { id, answer } = msg else {
                panic!("expected answers only");
            };
            assert_eq!(id, QueryId(7));
            answers.push(answer);
        }
        assert_eq!(answers.len(), 3);
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[1], answers[2]);
    }

    /// The replay cache is bounded: an id evicted after
    /// `REPLAY_CACHE_CAP` newer answers is re-evaluated as fresh.
    #[test]
    fn replay_cache_is_bounded() {
        let mut cache = ReplayCache::new();
        for i in 0..=(REPLAY_CACHE_CAP as u64) {
            cache.put(QueryId(i), SignedBag::new());
        }
        assert!(cache.get(QueryId(0)).is_none(), "oldest entry evicted");
        assert!(cache.get(QueryId(1)).is_some());
    }

    /// One fleet thread driving three sources against three scripted
    /// "warehouses" answers every channel correctly and in FIFO order,
    /// with stats matching what per-source `serve` would report.
    #[test]
    fn serve_fleet_multiplexes_many_sources_on_one_thread() {
        use eca_wire::{SharedFifo, TransferMeter};

        const N: usize = 3;
        let mut members = Vec::new();
        let mut wh_ends = Vec::new();
        let mut views = Vec::new();
        for _ in 0..N {
            let (src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
            let (s, view) = example_source(Scenario::Indexed);
            members.push(FleetMember {
                source: s,
                transport: Box::new(src_end),
                script: vec![Update::insert("r2", Tuple::ints([2, 3]))],
            });
            wh_ends.push(wh_end);
            views.push(view);
        }

        let fleet = std::thread::spawn(move || {
            let stats = serve_fleet(&mut members).unwrap();
            (stats, members)
        });

        // Each "warehouse": consume the notification, fire two queries,
        // expect two FIFO answers.
        let mut expected = Vec::new();
        for (i, wh_end) in wh_ends.iter_mut().enumerate() {
            assert!(matches!(
                wh_end.recv().unwrap(),
                Some(Message::UpdateNotification { .. })
            ));
            let q = WireQuery::from_query(&views[i].as_query());
            for k in 0..2u64 {
                wh_end
                    .send(&Message::QueryRequest {
                        id: QueryId(i as u64 * 10 + k),
                        query: q.clone(),
                    })
                    .unwrap();
            }
        }
        for (i, wh_end) in wh_ends.iter_mut().enumerate() {
            for k in 0..2u64 {
                let Some(Message::QueryAnswer { id, answer }) = wh_end.recv().unwrap() else {
                    panic!("expected an answer");
                };
                assert_eq!(id, QueryId(i as u64 * 10 + k), "FIFO per channel");
                expected.push(answer);
            }
        }
        drop(wh_ends); // hang every channel up
        let (stats, members) = fleet.join().unwrap();
        for (i, st) in stats.iter().enumerate() {
            assert_eq!(st.updates, 1);
            assert_eq!(st.notifications, 1);
            assert_eq!(st.answers, 2);
            assert_eq!(members[i].source.queries_answered(), 2);
        }
        // All channels saw the same state, so all answers agree.
        assert!(expected.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn io_charged_for_answers_not_loads() {
        let (mut s, view) = example_source(Scenario::Indexed);
        assert_eq!(s.io_meter().query_reads(), 0);
        let q = WireQuery::from_query(&view.as_query());
        s.answer(&q).unwrap();
        assert!(s.io_meter().query_reads() > 0);
    }
}
