//! Workload generation for the performance study.
//!
//! * [`Params`] — the paper's Table 1 variable set with its defaults
//!   (`C = 100`, `S = 4`, `σ = ½`, `J = 4`, `K = 20`).
//! * [`example6`] — the §6.2 evaluation scenario: relations `r1(W,X)`,
//!   `r2(X,Y)`, `r3(Y,Z)`, view `V = π_{W,Z}(σ_{W>Z}(r1 ⋈ r2 ⋈ r3))`,
//!   with base data *calibrated* so every join attribute has join factor
//!   exactly `J` and the selection accepts ≈ `σ` of the product.
//! * [`scenarios`] — the paper's worked Examples 1–9 as canned scenarios
//!   for integration tests and the anomaly-tour example binary.
//! * [`stress`] — robustness generators: zipfian-skewed streams,
//!   delete-heavy mixes, rolling warehouse-restart schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod example6;
pub mod params;
pub mod scenarios;
pub mod stress;

pub use example6::{Example6, UpdateMix};
pub use params::Params;
pub use scenarios::Scenario;
pub use stress::{rolling_restart_schedule, Zipfian};
