//! Robustness workload generators beyond the paper's calibrated study.
//!
//! The §6 analysis assumes uniform update streams; recovery and chaos
//! drills want nastier shapes. This module adds three reusable ones:
//!
//! * **Zipfian skew** — join groups chosen by rank-skewed popularity, so
//!   a few hot groups absorb most churn and compensation repeatedly
//!   collides on the same tuples.
//! * **Delete-heavy mixes** — streams dominated by deletions, shrinking
//!   the view while compensation is in flight.
//! * **Rolling restart schedules** — evenly spaced warehouse-crash
//!   points for recovery drills (feed to
//!   `ChaosProfile::with_warehouse_crashes`).

use eca_relational::{Tuple, Update};
use rand::rngs::StdRng;
use rand::Rng;

use crate::example6::{Example6, SEL_RANGE};

/// An inverse-CDF Zipfian sampler over ranks `0..n` (rank 0 hottest):
/// `weight(r) ∝ 1/(r+1)^s`. The CDF is held in fixed point so sampling
/// draws one integer and binary-searches — no floating point at sample
/// time, keeping streams deterministic per seed across platforms.
#[derive(Clone, Debug)]
pub struct Zipfian {
    cum: Vec<u64>,
}

impl Zipfian {
    /// A sampler over `n` ranks with exponent `s` (`s = 0` is uniform;
    /// `s ≈ 1` is the classical zipf). `n` must be non-zero.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipfian over an empty domain");
        let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        const SCALE: f64 = (1u64 << 32) as f64;
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0u64;
        for w in &weights {
            // +1 keeps every rank reachable even when its scaled weight
            // rounds to zero.
            acc += ((w / total) * SCALE) as u64 + 1;
            cum.push(acc);
        }
        Zipfian { cum }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cum.last().expect("non-empty");
        let draw = rng.gen_range(0..total);
        self.cum.partition_point(|&c| c <= draw)
    }
}

impl Example6 {
    /// A zipfian-skewed stream of `k` inserts: join groups drawn with
    /// `weight ∝ 1/(rank+1)^s`, so hot groups keep re-deriving and
    /// colliding with in-flight compensation. `s = 0` degenerates to the
    /// uniform [`Example6::updates`] shape.
    pub fn zipfian_updates(&self, k: usize, s: f64) -> Vec<Update> {
        let mut rng = self.stream_rng(0x21_FA);
        let d = self.params.distinct_join_values() as i64;
        let zipf = Zipfian::new(d as usize, s);
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let rel = rng.gen_range(0..3usize);
            let name = ["r1", "r2", "r3"][rel];
            let group = zipf.sample(&mut rng) as i64;
            let sel = rng.gen_range(0..SEL_RANGE);
            let tuple = match rel {
                0 => Tuple::ints([sel, group]),
                1 => Tuple::ints([rng.gen_range(0..d), group]),
                2 => Tuple::ints([group, sel]),
                _ => unreachable!("three relations"),
            };
            out.push(Update::insert(name, tuple));
        }
        out
    }

    /// A delete-heavy stream: each step deletes a live tuple with
    /// probability `delete_pct`% (while any remain), otherwise inserts a
    /// replacement. At high percentages the view drains toward empty
    /// while compensation is still in flight — the shape that stresses
    /// deletion anomalies and recovery together.
    pub fn delete_heavy_updates(&self, k: usize, delete_pct: u8) -> Vec<Update> {
        let delete_pct = u64::from(delete_pct.min(100));
        let mut rng = self.stream_rng(0xDE1E);
        let d = self.params.distinct_join_values() as i64;
        let mut live: Vec<Vec<Tuple>> = (0..3).map(|r| self.base_tuples(r)).collect();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let rel = rng.gen_range(0..3usize);
            let name = ["r1", "r2", "r3"][rel];
            let delete = rng.gen_range(0..100u64) < delete_pct && !live[rel].is_empty();
            if delete {
                let idx = rng.gen_range(0..live[rel].len());
                let tuple = live[rel].swap_remove(idx);
                out.push(Update::delete(name, tuple));
            } else {
                let group = rng.gen_range(0..d);
                let sel = rng.gen_range(0..SEL_RANGE);
                let tuple = match rel {
                    0 => Tuple::ints([sel, group]),
                    1 => Tuple::ints([rng.gen_range(0..d), group]),
                    2 => Tuple::ints([group, sel]),
                    _ => unreachable!("three relations"),
                };
                live[rel].push(tuple.clone());
                out.push(Update::insert(name, tuple));
            }
        }
        out
    }
}

/// `crashes` warehouse-crash steps spread evenly across a run expected
/// to settle within `total_steps` scheduler steps — the rolling-restart
/// drill. Steps start past the first segment so the run does real work
/// between incarnations; feed the result to
/// `ChaosProfile::with_warehouse_crashes`.
pub fn rolling_restart_schedule(total_steps: u64, crashes: usize) -> Vec<u64> {
    let crashes = crashes as u64;
    if crashes == 0 || total_steps == 0 {
        return Vec::new();
    }
    let stride = (total_steps / (crashes + 1)).max(1);
    (1..=crashes).map(|i| i * stride).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use eca_relational::UpdateKind;
    use rand::SeedableRng;

    #[test]
    fn zipfian_is_skewed_and_exhaustive() {
        let zipf = Zipfian::new(25, 1.1);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0u64; 25];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > 4 * counts[10],
            "rank 0 must dominate mid ranks: {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "every rank stays reachable: {counts:?}"
        );
        // s = 0 is uniform-ish: the head must NOT dominate.
        let flat = Zipfian::new(25, 0.0);
        let mut counts = vec![0u64; 25];
        for _ in 0..20_000 {
            counts[flat.sample(&mut rng)] += 1;
        }
        assert!(counts[0] < 2 * counts[24], "{counts:?}");
    }

    #[test]
    fn zipfian_updates_hit_hot_groups_and_are_deterministic() {
        let w = Example6::new(Params::default(), 5);
        let a = w.zipfian_updates(60, 1.2);
        assert_eq!(a, w.zipfian_updates(60, 1.2), "deterministic per seed");
        assert_eq!(a.len(), 60);
        // Group 0 (the hot rank) must appear far more often than its
        // uniform share (1/D of inserts).
        let hot = a
            .iter()
            .filter(|u| {
                let t = &u.tuple;
                let col = match u.relation.as_str() {
                    "r1" => 1,
                    "r2" => 1,
                    _ => 0,
                };
                t.get(col).and_then(|v| v.as_int()) == Some(0)
            })
            .count();
        assert!(hot >= 10, "hot group underrepresented: {hot}/60");
    }

    #[test]
    fn delete_heavy_stream_is_valid_and_mostly_deletes() {
        let w = Example6::new(Params::default(), 11);
        let updates = w.delete_heavy_updates(80, 80);
        let view = Example6::view().unwrap();
        let mut db = eca_core::BaseDb::for_view(&view);
        for (rel, schema) in Example6::schemas().iter().enumerate() {
            for t in w.base_tuples(rel) {
                db.insert(schema.relation(), t);
            }
        }
        let mut deletes = 0;
        for u in &updates {
            assert!(db.apply(u), "ineffective update {u:?}");
            if u.kind == UpdateKind::Delete {
                deletes += 1;
            }
        }
        assert!(
            deletes > updates.len() / 2,
            "delete-heavy stream must mostly delete: {deletes}/{}",
            updates.len()
        );
    }

    #[test]
    fn rolling_schedule_spaces_crashes() {
        assert_eq!(rolling_restart_schedule(100, 3), vec![25, 50, 75]);
        assert_eq!(rolling_restart_schedule(100, 0), Vec::<u64>::new());
        assert_eq!(rolling_restart_schedule(0, 3), Vec::<u64>::new());
        let dense = rolling_restart_schedule(2, 5);
        assert_eq!(dense.len(), 5, "stride clamps at 1, never drops crashes");
    }
}
