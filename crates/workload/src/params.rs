//! The paper's Table 1: variables of the performance analysis.

/// Parameters of the evaluation scenario (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// `C` — cardinality of each base relation. Default 100.
    pub cardinality: u64,
    /// `S` — size in bytes of the projected attributes of one view tuple.
    /// Default 4.
    pub projected_bytes: u64,
    /// `σ` — selectivity of the selection condition. Default ½.
    pub selectivity: f64,
    /// `J` — join factor: expected matches per join-attribute value.
    /// Default 4.
    pub join_factor: u64,
    /// `K` — tuples per physical block. Default 20.
    pub tuples_per_block: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            cardinality: 100,
            projected_bytes: 4,
            selectivity: 0.5,
            join_factor: 4,
            tuples_per_block: 20,
        }
    }
}

impl Params {
    /// `I = ⌈C/K⌉` — blocks per base relation (Appendix D).
    pub fn blocks_per_relation(&self) -> u64 {
        self.cardinality.div_ceil(self.tuples_per_block as u64)
    }

    /// `I′ = ⌈C/2K⌉` — double-block buffers per relation (Appendix D,
    /// Scenario 2).
    pub fn double_blocks_per_relation(&self) -> u64 {
        self.cardinality.div_ceil(2 * self.tuples_per_block as u64)
    }

    /// Number of distinct values per join attribute so that each value
    /// matches exactly `J` tuples: `C / J` (rounded up; the generator pads
    /// the last group).
    pub fn distinct_join_values(&self) -> u64 {
        (self.cardinality / self.join_factor).max(1)
    }

    /// Render Table 1 as aligned text (the `--table1` report).
    pub fn table1(&self) -> String {
        let mut s = String::new();
        s.push_str("Name  Meaning                                   Value\n");
        s.push_str(&format!(
            "C     Cardinality of a relation                 {}\n",
            self.cardinality
        ));
        s.push_str(&format!(
            "S     Size of projected attributes (bytes)      {}\n",
            self.projected_bytes
        ));
        s.push_str(&format!(
            "sigma Selection factor                          {}\n",
            self.selectivity
        ));
        s.push_str(&format!(
            "J     Join factor                               {}\n",
            self.join_factor
        ));
        s.push_str(&format!(
            "K     Tuples per physical block                 {}\n",
            self.tuples_per_block
        ));
        s.push_str(&format!(
            "I     Blocks per relation (C/K)                 {}\n",
            self.blocks_per_relation()
        ));
        s.push_str(&format!(
            "I'    Double-block buffers (C/2K)               {}\n",
            self.double_blocks_per_relation()
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = Params::default();
        assert_eq!(p.cardinality, 100);
        assert_eq!(p.projected_bytes, 4);
        assert!((p.selectivity - 0.5).abs() < 1e-12);
        assert_eq!(p.join_factor, 4);
        assert_eq!(p.tuples_per_block, 20);
        // Appendix D: I = 5, I' = 3 for the defaults.
        assert_eq!(p.blocks_per_relation(), 5);
        assert_eq!(p.double_blocks_per_relation(), 3);
        assert_eq!(p.distinct_join_values(), 25);
    }

    #[test]
    fn ceil_divisions() {
        let p = Params {
            cardinality: 101,
            ..Params::default()
        };
        assert_eq!(p.blocks_per_relation(), 6);
        assert_eq!(p.double_blocks_per_relation(), 3);
    }

    #[test]
    fn table1_mentions_every_variable() {
        let t = Params::default().table1();
        for name in ["C ", "S ", "sigma", "J ", "K "] {
            assert!(t.contains(name), "missing {name}");
        }
    }
}
