//! The paper's Example 6 evaluation scenario, calibrated to [`Params`].
//!
//! Schema: `r1(W,X)`, `r2(X,Y)`, `r3(Y,Z)`;
//! view `V = π_{W,Z}(σ_{W>Z}(r1 ⋈_X r2 ⋈_Y r3))`.
//!
//! Calibration: with `D = C/J` distinct values per join attribute, each
//! attribute value matches exactly `J` tuples in the adjacent relation, so
//! `|r1 ⋈ r2 ⋈ r3| = C·J²` and the view has `σ·C·J²` tuples — the
//! quantities the paper's byte formulas are built from. `W` and `Z` are
//! spread over `0..SEL_RANGE` so `P(W > Z) ≈ σ` for `σ = ½`.

use eca_core::{CoreError, ViewDef};
use eca_relational::{CmpOp, Predicate, Schema, Tuple, Update};
use eca_source::{Source, SourceError};
use eca_storage::Scenario;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::Params;

/// Range of the `W`/`Z` selection attributes.
pub(crate) const SEL_RANGE: i64 = 1000;

/// What kinds of updates the k-update stream contains.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdateMix {
    /// Insertions only (the paper's §6 extension to `k` updates).
    InsertsOnly,
    /// Roughly half deletions of existing tuples, keeping `C` roughly
    /// constant — the paper's §6.2 assumption 5 ("C, J and our other
    /// parameters do not change as updates occur").
    Mixed,
    /// A hot-group churn: every updated tuple uses join group 0, so any
    /// two updates on adjacent relations mutually join. This realizes the
    /// paper's worst-case compensation sizing, where each compensating
    /// term `V⟨U_j, U_p⟩` transfers `S·σ·J` bytes unconditionally.
    /// Alternating inserts/deletes per relation keep the group's local
    /// join factor near `J`.
    CorrelatedChurn,
}

/// The calibrated Example 6 workload.
#[derive(Clone, Debug)]
pub struct Example6 {
    /// The parameter point.
    pub params: Params,
    seed: u64,
}

impl Example6 {
    /// A workload at the given parameter point, deterministic per seed.
    pub fn new(params: Params, seed: u64) -> Self {
        Example6 { params, seed }
    }

    /// The three base schemas.
    pub fn schemas() -> Vec<Schema> {
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
            Schema::new("r3", &["Y", "Z"]),
        ]
    }

    /// The three base schemas with key metadata declared: every tuple is
    /// identified by its full attribute set (the generator emits bag
    /// semantics, so no proper subset is a key). Keyness is the signal
    /// self-maintaining algorithms (`EcaAux`) use to decide which
    /// relations get warehouse-resident auxiliary views.
    pub fn keyed_schemas() -> Vec<Schema> {
        vec![
            Schema::with_key("r1", &["W", "X"], &["W", "X"]).expect("key attrs exist"),
            Schema::with_key("r2", &["X", "Y"], &["X", "Y"]).expect("key attrs exist"),
            Schema::with_key("r3", &["Y", "Z"], &["Y", "Z"]).expect("key attrs exist"),
        ]
    }

    /// The view `V = π_{W,Z}(σ_{W>Z}(r1 ⋈_X r2 ⋈_Y r3))`.
    ///
    /// # Errors
    /// Never in practice; propagates view validation.
    pub fn view() -> Result<ViewDef, CoreError> {
        Self::view_over(Self::schemas())
    }

    /// As [`Example6::view`], over the keyed schemas — required by
    /// algorithms that read key metadata (`EcaKey`, `EcaAux`).
    ///
    /// # Errors
    /// Never in practice; propagates view validation.
    pub fn keyed_view() -> Result<ViewDef, CoreError> {
        Self::view_over(Self::keyed_schemas())
    }

    fn view_over(schemas: Vec<Schema>) -> Result<ViewDef, CoreError> {
        ViewDef::new(
            "V",
            schemas,
            Predicate::col_eq(1, 2)
                .and(Predicate::col_eq(3, 4))
                .and(Predicate::col_cmp(0, CmpOp::Gt, 5)),
            vec![0, 5],
        )
    }

    pub(crate) fn stream_rng(&self, stream: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(stream))
    }

    fn rng(&self, stream: u64) -> StdRng {
        self.stream_rng(stream)
    }

    /// Deterministic base tuples for relation index `rel` (0..3), with
    /// exact join factors.
    pub fn base_tuples(&self, rel: usize) -> Vec<Tuple> {
        let c = self.params.cardinality as i64;
        let d = self.params.distinct_join_values() as i64;
        let mut rng = self.rng(rel as u64);
        (0..c)
            .map(|i| {
                let group = i % d; // join value: each appears C/D = J times
                let sel: i64 = rng.gen_range(0..SEL_RANGE);
                match rel {
                    0 => Tuple::ints([sel, group]),                // r1(W, X)
                    1 => Tuple::ints([i / (c / d).max(1), group]), // r2(X, Y)
                    2 => Tuple::ints([group, sel]),                // r3(Y, Z)
                    _ => unreachable!("three relations"),
                }
            })
            .collect()
    }

    /// Build and load a metered source under the given cost scenario,
    /// with the paper's Scenario-1 index layout (clustered X on r1 and
    /// r2, clustered Y on r3, non-clustered Y on r2) when applicable.
    ///
    /// # Errors
    /// Propagates source/storage construction errors.
    pub fn build_source(&self, scenario: Scenario) -> Result<Source, SourceError> {
        let mut source = Source::new(scenario);
        let k = self.params.tuples_per_block;
        let indexed = matches!(scenario, Scenario::Indexed);
        let schemas = Self::schemas();
        source.add_relation(schemas[0].clone(), k, indexed.then_some("X"), &[])?;
        source.add_relation(
            schemas[1].clone(),
            k,
            indexed.then_some("X"),
            if indexed { &["Y"] } else { &[] },
        )?;
        source.add_relation(schemas[2].clone(), k, indexed.then_some("Y"), &[])?;
        for (rel, schema) in schemas.iter().enumerate() {
            source.load(schema.relation(), self.base_tuples(rel))?;
        }
        Ok(source)
    }

    /// Hot-group churn: round-robin over relations; per relation,
    /// alternately insert a fresh group-0 tuple and delete the one
    /// inserted before it.
    fn correlated_churn(&self, k: usize) -> Vec<Update> {
        let mut rng = self.rng(0xC0DE);
        let mut extras: Vec<Vec<Tuple>> = vec![Vec::new(); 3];
        let mut out = Vec::with_capacity(k);
        for step in 0..k {
            let rel = step % 3;
            let name = ["r1", "r2", "r3"][rel];
            if extras[rel].len() >= 2 {
                let tuple = extras[rel].remove(0);
                out.push(Update::delete(name, tuple));
            } else {
                let sel = rng.gen_range(0..SEL_RANGE);
                let tuple = match rel {
                    0 => Tuple::ints([sel, 0]),
                    1 => Tuple::ints([0, 0]),
                    2 => Tuple::ints([0, sel]),
                    _ => unreachable!(),
                };
                extras[rel].push(tuple.clone());
                out.push(Update::insert(name, tuple));
            }
        }
        out
    }

    /// The paper's Example 6 update script: one insert into each of
    /// `r1`, `r2`, `r3` (in that order), with calibrated join values so
    /// each insert derives `≈ σJ²` view tuples.
    pub fn paper_updates(&self) -> Vec<Update> {
        let mut rng = self.rng(0xBEEF);
        let d = self.params.distinct_join_values() as i64;
        let g1 = rng.gen_range(0..d);
        let g2 = rng.gen_range(0..d);
        let g3 = rng.gen_range(0..d);
        vec![
            Update::insert("r1", Tuple::ints([rng.gen_range(0..SEL_RANGE), g1])),
            Update::insert("r2", Tuple::ints([g2, rng.gen_range(0..d)])),
            Update::insert("r3", Tuple::ints([g3, rng.gen_range(0..SEL_RANGE)])),
        ]
    }

    /// A stream of `k` updates touching the three relations with equal
    /// probability (the paper's k-update analysis assumption). Inserted
    /// tuples reuse existing join values so each insert derives `≈ σJ²`
    /// view tuples, as the byte formulas assume.
    pub fn updates(&self, k: usize, mix: UpdateMix) -> Vec<Update> {
        if mix == UpdateMix::CorrelatedChurn {
            return self.correlated_churn(k);
        }
        let mut rng = self.rng(0xFACE);
        let d = self.params.distinct_join_values() as i64;
        // Track live tuples per relation for deletions.
        let mut live: Vec<Vec<Tuple>> = (0..3).map(|r| self.base_tuples(r)).collect();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let rel = rng.gen_range(0..3usize);
            let name = ["r1", "r2", "r3"][rel];
            let delete = mix == UpdateMix::Mixed && rng.gen_bool(0.5) && !live[rel].is_empty();
            if delete {
                let idx = rng.gen_range(0..live[rel].len());
                let tuple = live[rel].swap_remove(idx);
                out.push(Update::delete(name, tuple));
            } else {
                let group = rng.gen_range(0..d);
                let sel = rng.gen_range(0..SEL_RANGE);
                let tuple = match rel {
                    0 => Tuple::ints([sel, group]),
                    1 => Tuple::ints([rng.gen_range(0..d), group]),
                    2 => Tuple::ints([group, sel]),
                    _ => unreachable!(),
                };
                live[rel].push(tuple.clone());
                out.push(Update::insert(name, tuple));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::basedb::BaseLookup;
    use eca_core::BaseDb;

    #[test]
    fn base_data_has_exact_cardinality() {
        let w = Example6::new(Params::default(), 42);
        for rel in 0..3 {
            assert_eq!(w.base_tuples(rel).len(), 100);
        }
    }

    #[test]
    fn join_factors_are_exact() {
        let p = Params::default();
        let w = Example6::new(p, 42);
        let d = p.distinct_join_values() as i64;
        // r2's X attribute: each value 0..D appears exactly J times.
        let r2 = w.base_tuples(1);
        for v in 0..d {
            let n = r2
                .iter()
                .filter(|t| t.get(0).unwrap().as_int() == Some(v))
                .count();
            assert_eq!(n as u64, p.join_factor, "X={v}");
        }
        // r2's Y attribute likewise.
        for v in 0..d {
            let n = r2
                .iter()
                .filter(|t| t.get(1).unwrap().as_int() == Some(v))
                .count();
            assert_eq!(n as u64, p.join_factor, "Y={v}");
        }
        // r1's X and r3's Y.
        let r1 = w.base_tuples(0);
        let r3 = w.base_tuples(2);
        for v in 0..d {
            assert_eq!(
                r1.iter()
                    .filter(|t| t.get(1).unwrap().as_int() == Some(v))
                    .count() as u64,
                p.join_factor
            );
            assert_eq!(
                r3.iter()
                    .filter(|t| t.get(0).unwrap().as_int() == Some(v))
                    .count() as u64,
                p.join_factor
            );
        }
    }

    #[test]
    fn view_size_close_to_sigma_c_j_squared() {
        let p = Params::default();
        let w = Example6::new(p, 7);
        let view = Example6::view().unwrap();
        let mut db = BaseDb::for_view(&view);
        for (rel, schema) in Example6::schemas().iter().enumerate() {
            for t in w.base_tuples(rel) {
                db.insert(schema.relation(), t);
            }
        }
        let v = view.eval(&db).unwrap();
        let expected = p.selectivity * (p.cardinality * p.join_factor * p.join_factor) as f64;
        let actual = v.pos_len() as f64;
        let ratio = actual / expected;
        assert!(
            (0.8..1.2).contains(&ratio),
            "view size {actual} vs expected {expected} (ratio {ratio})"
        );
    }

    #[test]
    fn updates_are_deterministic_per_seed() {
        let w = Example6::new(Params::default(), 5);
        assert_eq!(
            w.updates(10, UpdateMix::InsertsOnly),
            w.updates(10, UpdateMix::InsertsOnly)
        );
        let other = Example6::new(Params::default(), 6);
        assert_ne!(
            w.updates(10, UpdateMix::InsertsOnly),
            other.updates(10, UpdateMix::InsertsOnly)
        );
    }

    #[test]
    fn mixed_stream_contains_valid_deletes() {
        let w = Example6::new(Params::default(), 11);
        let updates = w.updates(40, UpdateMix::Mixed);
        assert_eq!(updates.len(), 40);
        // Replay against a DB: every delete must be effective.
        let view = Example6::view().unwrap();
        let mut db = BaseDb::for_view(&view);
        for (rel, schema) in Example6::schemas().iter().enumerate() {
            for t in w.base_tuples(rel) {
                db.insert(schema.relation(), t);
            }
        }
        let mut deletes = 0;
        for u in &updates {
            assert!(db.apply(u), "ineffective update {u:?}");
            if u.kind == eca_relational::UpdateKind::Delete {
                deletes += 1;
            }
        }
        assert!(
            deletes > 5,
            "expected a healthy share of deletes, got {deletes}"
        );
    }

    #[test]
    fn build_source_loads_calibrated_data() {
        let w = Example6::new(Params::default(), 3);
        let source = w.build_source(Scenario::Indexed).unwrap();
        let snap = source.snapshot();
        assert_eq!(snap.bag("r1").unwrap().pos_len(), 100);
        assert_eq!(snap.bag("r2").unwrap().pos_len(), 100);
        assert_eq!(snap.bag("r3").unwrap().pos_len(), 100);
        assert_eq!(source.io_meter().query_reads(), 0, "loads are free");
    }
}
