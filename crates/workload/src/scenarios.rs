//! The paper's worked Examples 1–9 as canned scenarios.
//!
//! Each scenario packages the view, initial base data, the update script,
//! and the correct final view, so integration tests and the anomaly-tour
//! example can replay them through the full simulator stack.

use eca_core::{CoreError, ViewDef};
use eca_relational::{Predicate, Schema, SignedBag, Tuple, Update};

/// A canned, fully specified maintenance scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Identifier, e.g. `"example2"`.
    pub name: &'static str,
    /// What the paper demonstrates with it.
    pub description: &'static str,
    /// The view.
    pub view: ViewDef,
    /// Initial contents per relation name.
    pub initial: Vec<(&'static str, Vec<Tuple>)>,
    /// The update script (executed under the adversarial interleaving to
    /// reproduce the paper's event orderings).
    pub updates: Vec<Update>,
    /// The correct final view `V[ss_p]`.
    pub expected_final: SignedBag,
    /// Whether the view is fully keyed (ECA-Key applies).
    pub keyed: bool,
}

fn view_2rel(proj: Vec<usize>, keyed: bool) -> Result<ViewDef, CoreError> {
    let (s1, s2) = if keyed {
        (
            Schema::with_key("r1", &["W", "X"], &["W"])?,
            Schema::with_key("r2", &["X", "Y"], &["Y"])?,
        )
    } else {
        (
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        )
    };
    ViewDef::new("V", vec![s1, s2], Predicate::col_eq(1, 2), proj)
}

fn view_3rel() -> Result<ViewDef, CoreError> {
    ViewDef::new(
        "V",
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
            Schema::new("r3", &["X", "Y"]),
        ],
        Predicate::col_eq(1, 2).and(Predicate::col_eq(3, 4)),
        vec![0],
    )
}

fn bag(tuples: &[&[i64]]) -> SignedBag {
    SignedBag::from_tuples(tuples.iter().map(|t| Tuple::ints(t.iter().copied())))
}

/// Example 1 (§1.1): a single insert with spaced processing — correct even
/// for the basic algorithm.
pub fn example1() -> Scenario {
    Scenario {
        name: "example1",
        description: "single insert; correct under any algorithm",
        view: view_2rel(vec![0], false).expect("static"),
        initial: vec![
            ("r1", vec![Tuple::ints([1, 2])]),
            ("r2", vec![Tuple::ints([2, 4])]),
        ],
        updates: vec![Update::insert("r2", Tuple::ints([2, 3]))],
        expected_final: {
            let mut b = SignedBag::new();
            b.add(Tuple::ints([1]), 2);
            b
        },
        keyed: false,
    }
}

/// Example 2 (§1.1): the insert anomaly — under the adversarial
/// interleaving the basic algorithm duplicates `[4]`.
pub fn example2() -> Scenario {
    Scenario {
        name: "example2",
        description: "insert anomaly: basic algorithm yields ([1],[4],[4])",
        view: view_2rel(vec![0], false).expect("static"),
        initial: vec![("r1", vec![Tuple::ints([1, 2])]), ("r2", vec![])],
        updates: vec![
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r1", Tuple::ints([4, 2])),
        ],
        expected_final: bag(&[&[1], &[4]]),
        keyed: false,
    }
}

/// Example 3 (§1.1): the deletion anomaly — the basic algorithm leaves a
/// phantom tuple.
pub fn example3() -> Scenario {
    Scenario {
        name: "example3",
        description: "deletion anomaly: basic algorithm leaves [1,3] behind",
        view: view_2rel(vec![0, 3], false).expect("static"),
        initial: vec![
            ("r1", vec![Tuple::ints([1, 2])]),
            ("r2", vec![Tuple::ints([2, 3])]),
        ],
        updates: vec![
            Update::delete("r1", Tuple::ints([1, 2])),
            Update::delete("r2", Tuple::ints([2, 3])),
        ],
        expected_final: SignedBag::new(),
        keyed: false,
    }
}

/// Example 4 (§5.3): ECA handling three insertions into three relations.
pub fn example4() -> Scenario {
    Scenario {
        name: "example4",
        description: "ECA with three inserts before any answer",
        view: view_3rel().expect("static"),
        initial: vec![
            ("r1", vec![Tuple::ints([1, 2])]),
            ("r2", vec![]),
            ("r3", vec![]),
        ],
        updates: vec![
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::insert("r3", Tuple::ints([5, 3])),
            Update::insert("r2", Tuple::ints([2, 5])),
        ],
        expected_final: bag(&[&[1], &[4]]),
        keyed: false,
    }
}

/// Example 5 (§5.4): ECA-Key with two inserts and a delete.
pub fn example5() -> Scenario {
    Scenario {
        name: "example5",
        description: "ECA-Key: local key-delete plus duplicate suppression",
        view: view_2rel(vec![0, 3], true).expect("static"),
        initial: vec![
            ("r1", vec![Tuple::ints([1, 2])]),
            ("r2", vec![Tuple::ints([2, 3])]),
        ],
        updates: vec![
            Update::insert("r2", Tuple::ints([2, 4])),
            Update::insert("r1", Tuple::ints([3, 2])),
            Update::delete("r1", Tuple::ints([1, 2])),
        ],
        expected_final: bag(&[&[3, 3], &[3, 4]]),
        keyed: true,
    }
}

/// Example 7 (App. A): three inserts with an interleaved answer.
pub fn example7() -> Scenario {
    Scenario {
        name: "example7",
        description: "ECA with answers interleaved between updates",
        view: view_3rel().expect("static"),
        initial: vec![
            ("r1", vec![Tuple::ints([1, 2])]),
            ("r2", vec![]),
            ("r3", vec![]),
        ],
        updates: vec![
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::insert("r3", Tuple::ints([5, 3])),
            Update::insert("r2", Tuple::ints([2, 5])),
        ],
        expected_final: bag(&[&[1], &[4]]),
        keyed: false,
    }
}

/// Example 8 (App. A): two deletions under ECA.
pub fn example8() -> Scenario {
    Scenario {
        name: "example8",
        description: "ECA with two deletions emptying the view",
        view: view_2rel(vec![0], false).expect("static"),
        initial: vec![
            ("r1", vec![Tuple::ints([1, 2]), Tuple::ints([4, 2])]),
            ("r2", vec![Tuple::ints([2, 3])]),
        ],
        updates: vec![
            Update::delete("r1", Tuple::ints([4, 2])),
            Update::delete("r2", Tuple::ints([2, 3])),
        ],
        expected_final: SignedBag::new(),
        keyed: false,
    }
}

/// Example 9 (App. A): a deletion racing an insertion.
pub fn example9() -> Scenario {
    Scenario {
        name: "example9",
        description: "ECA with a delete racing an insert",
        view: view_2rel(vec![0], false).expect("static"),
        initial: vec![
            ("r1", vec![Tuple::ints([1, 2]), Tuple::ints([4, 2])]),
            ("r2", vec![]),
        ],
        updates: vec![
            Update::delete("r1", Tuple::ints([4, 2])),
            Update::insert("r2", Tuple::ints([2, 3])),
        ],
        expected_final: bag(&[&[1]]),
        keyed: false,
    }
}

/// All canned scenarios in paper order.
pub fn all() -> Vec<Scenario> {
    vec![
        example1(),
        example2(),
        example3(),
        example4(),
        example5(),
        example7(),
        example8(),
        example9(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::BaseDb;

    /// Every scenario's `expected_final` must equal the view evaluated on
    /// the base data after all updates.
    #[test]
    fn expected_finals_are_self_consistent() {
        for sc in all() {
            let mut db = BaseDb::for_view(&sc.view);
            for (rel, tuples) in &sc.initial {
                for t in tuples {
                    db.insert(rel, t.clone());
                }
            }
            for u in &sc.updates {
                assert!(db.apply(u), "{}: ineffective update {u:?}", sc.name);
            }
            let v = sc.view.eval(&db).unwrap();
            assert_eq!(v, sc.expected_final, "{}", sc.name);
        }
    }

    #[test]
    fn keyed_flags_match_views() {
        for sc in all() {
            assert_eq!(sc.view.is_fully_keyed(), sc.keyed, "{}", sc.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all().len());
    }
}
