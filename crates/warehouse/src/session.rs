//! Per-source sessions: query-id allocation, epochs and strict answer
//! demux.
//!
//! Every source the warehouse talks to gets its own [`Session`] with its
//! own [`QueryIdGen`] and pending-query FIFO. Maintainers allocate
//! *local* query ids independently (each starts at 1); the session remaps
//! them onto a per-source global space so that many views can share one
//! channel to the source, and demultiplexes each answer **strictly by
//! [`QueryId`]** — an answer bearing an id that is not pending is rejected
//! before any maintainer state (`UQS`, `COLLECT`) can be touched.
//!
//! Sessions also carry an **epoch** counter, bumped on every channel
//! reset ([`Session::bump_epoch`]). Global ids are unique across epochs
//! (the generator is never rewound), so an answer addressed to a query of
//! a dead epoch routes to a retired id and is rejected by the same strict
//! demux — stale-epoch answers can never touch maintainer state. Each
//! pending query keeps its full [`WireQuery`] body and a retry count so
//! the warehouse can re-issue in-flight queries of a dead epoch under
//! fresh ids.

use std::collections::{BTreeMap, VecDeque};

use eca_core::maintainer::QueryIdGen;
use eca_core::{CoreError, QueryId};
use eca_wire::WireQuery;

/// Why a pending query was sent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteKind {
    /// An incremental maintenance query emitted by a maintainer's
    /// `on_update`/`on_answer` (answer is delivered to the maintainer
    /// under its local id).
    Update,
    /// A full-view recomputation issued by the warehouse's recovery
    /// policy (answer is installed wholesale via
    /// [`eca_core::ViewMaintainer::reset_to`]).
    Resync,
}

/// Where a pending query came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Index of the owning view in the warehouse's view table.
    pub view: usize,
    /// The maintainer-local id the answer must be delivered under
    /// (meaningless for [`RouteKind::Resync`] queries, which bypass the
    /// maintainer's id space).
    pub local: QueryId,
    /// Why the query was sent.
    pub kind: RouteKind,
}

/// One outstanding query, with everything needed to re-issue it after a
/// channel reset.
#[derive(Clone, Debug)]
pub struct PendingQuery {
    /// Demux destination.
    pub route: Route,
    /// The self-contained query body, kept so a reset can re-send it.
    pub query: WireQuery,
    /// How many times this query has been re-issued already.
    pub retries: u32,
}

/// The warehouse-side state of one source channel.
#[derive(Debug, Default)]
pub struct Session {
    ids: QueryIdGen,
    epoch: u64,
    pending: BTreeMap<QueryId, PendingQuery>,
    /// Global ids in emission order — the FIFO the paper's §3 ordering
    /// assumption says answers will respect. Demux never *relies* on it
    /// (answers route by id), but it names the oldest outstanding query
    /// for introspection and back-pressure decisions.
    fifo: VecDeque<QueryId>,
}

impl Session {
    /// A fresh session with no outstanding queries, at epoch 0.
    pub fn new() -> Self {
        Session {
            ids: QueryIdGen::new(),
            epoch: 0,
            pending: BTreeMap::new(),
            fifo: VecDeque::new(),
        }
    }

    /// The current channel epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The next session-global query id this session would allocate —
    /// checkpointed so a recovered session re-allocates the exact ids
    /// the pre-crash run used (answers route by id).
    pub fn next_global_id(&self) -> u64 {
        self.ids.next_value()
    }

    /// Restore the epoch and id allocator from a durable checkpoint.
    /// Only meaningful on a fresh session, before any traffic: the
    /// replayed log re-derives the pending table through the ordinary
    /// register/take paths.
    pub fn restore_durable(&mut self, epoch: u64, next_global_id: u64) {
        self.epoch = epoch;
        self.ids.resume_at(next_global_id);
    }

    /// Rewrite the view index inside every pending route (global view
    /// indices → shard-local ones when a warehouse with in-flight
    /// queries is reshaped into per-source shards).
    pub fn remap_views(&mut self, map: impl Fn(usize) -> usize) {
        for pq in self.pending.values_mut() {
            pq.route.view = map(pq.route.view);
        }
    }

    /// Allocate a global id for a maintenance query emitted by `view`
    /// under `local`, remembering its body for possible re-issue.
    pub fn register(&mut self, view: usize, local: QueryId, query: WireQuery) -> QueryId {
        self.insert(PendingQuery {
            route: Route {
                view,
                local,
                kind: RouteKind::Update,
            },
            query,
            retries: 0,
        })
    }

    /// Allocate a global id for a recovery resync of `view` (the full
    /// view expression; its answer will be installed via `reset_to`).
    pub fn register_resync(&mut self, view: usize, query: WireQuery) -> QueryId {
        self.insert(PendingQuery {
            route: Route {
                view,
                local: QueryId(0),
                kind: RouteKind::Resync,
            },
            query,
            retries: 0,
        })
    }

    /// Re-issue a query drained by [`Session::bump_epoch`] under a fresh
    /// global id, counting the retry. Returns the new id and a copy of
    /// the body to put on the wire.
    pub fn reissue(&mut self, mut pq: PendingQuery) -> (QueryId, WireQuery) {
        pq.retries += 1;
        let body = pq.query.clone();
        let id = self.insert(pq);
        (id, body)
    }

    fn insert(&mut self, pq: PendingQuery) -> QueryId {
        let global = self.ids.fresh();
        self.pending.insert(global, pq);
        self.fifo.push_back(global);
        global
    }

    /// Resolve and retire a pending global id.
    ///
    /// # Errors
    /// [`CoreError::UnknownQuery`] when `id` was never issued, is already
    /// answered, or belongs to a dead epoch (its entry was drained by
    /// [`Session::bump_epoch`]); the session (and every maintainer behind
    /// it) is left untouched.
    pub fn take(&mut self, id: QueryId) -> Result<Route, CoreError> {
        let pq = self
            .pending
            .remove(&id)
            .ok_or(CoreError::UnknownQuery { id: id.0 })?;
        self.fifo.retain(|&q| q != id);
        Ok(pq.route)
    }

    /// Start a new epoch after a channel reset: every in-flight query is
    /// drained (in emission order) and returned to the caller, who
    /// decides per query whether to [`Session::reissue`] it or abandon
    /// its view to a resync. Once drained, answers to the old ids are
    /// rejected by [`Session::take`] — stale-epoch answers cannot reach
    /// maintainer state.
    pub fn bump_epoch(&mut self) -> Vec<PendingQuery> {
        self.epoch += 1;
        let mut drained = Vec::with_capacity(self.fifo.len());
        for id in std::mem::take(&mut self.fifo) {
            if let Some(pq) = self.pending.remove(&id) {
                drained.push(pq);
            }
        }
        self.pending.clear();
        drained
    }

    /// Retire every pending query owned by `view` (used when the view is
    /// degraded to a resync outside of an epoch bump).
    pub fn purge_view(&mut self, view: usize) {
        self.pending.retain(|_, pq| pq.route.view != view);
        let live = &self.pending;
        self.fifo.retain(|id| live.contains_key(id));
    }

    /// Number of outstanding queries on this channel.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The oldest outstanding global id, if any.
    pub fn oldest_pending(&self) -> Option<QueryId> {
        self.fifo.front().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal stand-in query body (sessions never interpret it).
    fn q() -> WireQuery {
        WireQuery {
            relations: Vec::new(),
            cond: eca_relational::Predicate::True,
            proj: Vec::new(),
            terms: Vec::new(),
        }
    }

    #[test]
    fn ids_are_global_and_fifo_tracked() {
        let mut s = Session::new();
        let a = s.register(0, QueryId(1), q());
        let b = s.register(1, QueryId(1), q());
        assert_ne!(a, b);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.oldest_pending(), Some(a));

        let ra = s.take(a).unwrap();
        assert_eq!(
            (ra.view, ra.local, ra.kind),
            (0, QueryId(1), RouteKind::Update)
        );
        assert_eq!(s.oldest_pending(), Some(b));
        let rb = s.take(b).unwrap();
        assert_eq!((rb.view, rb.local), (1, QueryId(1)));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn round_robin_registration_takes_in_any_order_without_leakage() {
        // Many views registering round-robin: view v's r-th query uses
        // local id r+1, so the (global → route) map is fully known.
        let mut s = Session::new();
        let views = 8usize;
        let rounds = 10u64;
        let mut expected = BTreeMap::new();
        for r in 0..rounds {
            for v in 0..views {
                let global = s.register(v, QueryId(r + 1), q());
                assert!(
                    expected.insert(global, (v, QueryId(r + 1))).is_none(),
                    "global ids must never repeat"
                );
            }
        }
        assert_eq!(s.pending(), views * rounds as usize);

        // Retire in a scrambled order (deterministic stride permutation
        // of the 80 ids): every take must route to exactly the view and
        // local id it was registered under — never a neighbour's.
        let ids: Vec<QueryId> = expected.keys().copied().collect();
        let n = ids.len();
        for k in 0..n {
            let id = ids[(k * 37) % n]; // 37 ⊥ 80 → a permutation
            let route = s.take(id).unwrap();
            assert_eq!((route.view, route.local), expected[&id]);
        }
        assert_eq!(s.pending(), 0);
        assert_eq!(s.oldest_pending(), None);
    }

    #[test]
    fn unknown_and_duplicate_ids_are_rejected() {
        let mut s = Session::new();
        let a = s.register(0, QueryId(1), q());
        assert!(matches!(
            s.take(QueryId(99)),
            Err(CoreError::UnknownQuery { id: 99 })
        ));
        s.take(a).unwrap();
        assert!(matches!(s.take(a), Err(CoreError::UnknownQuery { .. })));
    }

    #[test]
    fn bump_epoch_drains_in_order_and_retires_old_ids() {
        let mut s = Session::new();
        assert_eq!(s.epoch(), 0);
        let a = s.register(0, QueryId(1), q());
        let b = s.register(1, QueryId(1), q());
        let r = s.register_resync(2, q());

        let drained = s.bump_epoch();
        assert_eq!(s.epoch(), 1);
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].route.view, 0);
        assert_eq!(drained[1].route.view, 1);
        assert_eq!(drained[2].route.kind, RouteKind::Resync);
        assert_eq!(s.pending(), 0);

        // Stale-epoch answers (old global ids) are rejected strictly.
        for id in [a, b, r] {
            assert!(matches!(s.take(id), Err(CoreError::UnknownQuery { .. })));
        }

        // Re-issue under the new epoch: fresh ids, retry counted.
        let (a2, _) = s.reissue(drained[0].clone());
        assert!(a2 > r, "ids keep growing across epochs");
        let route = s.take(a2).unwrap();
        assert_eq!((route.view, route.local), (0, QueryId(1)));
    }

    #[test]
    fn purge_view_drops_only_that_views_queries() {
        let mut s = Session::new();
        let a = s.register(0, QueryId(1), q());
        let _b = s.register(1, QueryId(1), q());
        let c = s.register(0, QueryId(2), q());
        s.purge_view(0);
        assert_eq!(s.pending(), 1);
        assert!(s.take(a).is_err());
        assert!(s.take(c).is_err());
        assert_eq!(s.oldest_pending(), Some(QueryId(2)));
    }
}
