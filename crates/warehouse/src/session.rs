//! Per-source sessions: query-id allocation and strict answer demux.
//!
//! Every source the warehouse talks to gets its own [`Session`] with its
//! own [`QueryIdGen`] and pending-query FIFO. Maintainers allocate
//! *local* query ids independently (each starts at 1); the session remaps
//! them onto a per-source global space so that many views can share one
//! channel to the source, and demultiplexes each answer **strictly by
//! [`QueryId`]** — an answer bearing an id that is not pending is rejected
//! before any maintainer state (`UQS`, `COLLECT`) can be touched.

use std::collections::{BTreeMap, VecDeque};

use eca_core::maintainer::QueryIdGen;
use eca_core::{CoreError, QueryId};

/// Where a pending query came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Route {
    /// Index of the owning view in the warehouse's view table.
    pub view: usize,
    /// The maintainer-local id the answer must be delivered under.
    pub local: QueryId,
}

/// The warehouse-side state of one source channel.
#[derive(Debug, Default)]
pub struct Session {
    ids: QueryIdGen,
    routing: BTreeMap<QueryId, Route>,
    /// Global ids in emission order — the FIFO the paper's §3 ordering
    /// assumption says answers will respect. Demux never *relies* on it
    /// (answers route by id), but it names the oldest outstanding query
    /// for introspection and back-pressure decisions.
    fifo: VecDeque<QueryId>,
}

impl Session {
    /// A fresh session with no outstanding queries.
    pub fn new() -> Self {
        Session {
            ids: QueryIdGen::new(),
            routing: BTreeMap::new(),
            fifo: VecDeque::new(),
        }
    }

    /// Allocate a global id for a query emitted by `view` under `local`.
    pub fn register(&mut self, view: usize, local: QueryId) -> QueryId {
        let global = self.ids.fresh();
        self.routing.insert(global, Route { view, local });
        self.fifo.push_back(global);
        global
    }

    /// Resolve and retire a pending global id.
    ///
    /// # Errors
    /// [`CoreError::UnknownQuery`] when `id` was never issued or is
    /// already answered; the session (and every maintainer behind it) is
    /// left untouched.
    pub fn take(&mut self, id: QueryId) -> Result<Route, CoreError> {
        let route = self
            .routing
            .remove(&id)
            .ok_or(CoreError::UnknownQuery { id: id.0 })?;
        self.fifo.retain(|&q| q != id);
        Ok(route)
    }

    /// Number of outstanding queries on this channel.
    pub fn pending(&self) -> usize {
        self.routing.len()
    }

    /// The oldest outstanding global id, if any.
    pub fn oldest_pending(&self) -> Option<QueryId> {
        self.fifo.front().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_global_and_fifo_tracked() {
        let mut s = Session::new();
        let a = s.register(0, QueryId(1));
        let b = s.register(1, QueryId(1));
        assert_ne!(a, b);
        assert_eq!(s.pending(), 2);
        assert_eq!(s.oldest_pending(), Some(a));

        assert_eq!(
            s.take(a).unwrap(),
            Route {
                view: 0,
                local: QueryId(1)
            }
        );
        assert_eq!(s.oldest_pending(), Some(b));
        assert_eq!(
            s.take(b).unwrap(),
            Route {
                view: 1,
                local: QueryId(1)
            }
        );
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn round_robin_registration_takes_in_any_order_without_leakage() {
        // Many views registering round-robin: view v's r-th query uses
        // local id r+1, so the (global → route) map is fully known.
        let mut s = Session::new();
        let views = 8usize;
        let rounds = 10u64;
        let mut expected = BTreeMap::new();
        for r in 0..rounds {
            for v in 0..views {
                let global = s.register(v, QueryId(r + 1));
                assert!(
                    expected.insert(global, (v, QueryId(r + 1))).is_none(),
                    "global ids must never repeat"
                );
            }
        }
        assert_eq!(s.pending(), views * rounds as usize);

        // Retire in a scrambled order (deterministic stride permutation
        // of the 80 ids): every take must route to exactly the view and
        // local id it was registered under — never a neighbour's.
        let ids: Vec<QueryId> = expected.keys().copied().collect();
        let n = ids.len();
        for k in 0..n {
            let id = ids[(k * 37) % n]; // 37 ⊥ 80 → a permutation
            let route = s.take(id).unwrap();
            assert_eq!((route.view, route.local), expected[&id]);
        }
        assert_eq!(s.pending(), 0);
        assert_eq!(s.oldest_pending(), None);
    }

    #[test]
    fn unknown_and_duplicate_ids_are_rejected() {
        let mut s = Session::new();
        let a = s.register(0, QueryId(1));
        assert!(matches!(
            s.take(QueryId(99)),
            Err(CoreError::UnknownQuery { id: 99 })
        ));
        s.take(a).unwrap();
        assert!(matches!(s.take(a), Err(CoreError::UnknownQuery { .. })));
    }
}
