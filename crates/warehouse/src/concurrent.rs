//! The concurrent warehouse runtime: one pump thread per source.
//!
//! The paper's premise (§1, Figure 1.1) is that sources are autonomous —
//! nothing synchronizes update streams arriving from different sites, and
//! §7 observes that with single-source views "ECA is simply applied to
//! each view separately". That independence is exactly what this module
//! exploits: warehouse state is **sharded by source**. Each
//! [`ConcurrentWarehouse`] shard owns the session and the views routed to
//! one source, behind its own lock, so pump threads progress without ever
//! contending — the lock is the fallback that would serialize access if a
//! future view spanned sources (none do today; see DESIGN.md §9).
//!
//! Correctness needs no cross-source ordering: ECA's §3 argument relies
//! only on per-channel FIFO delivery of `W_up`/`W_ans` events, which each
//! pump thread preserves by construction (it is the only consumer of its
//! transport, and it applies events in arrival order under the shard
//! lock). The deterministic single-threaded [`Warehouse`] remains the
//! default for the simulator and all golden traces; this runtime is for
//! wall-clock throughput.

use std::sync::{Arc, Mutex};

use eca_core::QueryId;
use eca_durable::{SourceCheckpoint, ViewCheckpoint, WalRecord};
use eca_relational::{SignedBag, Update};
use eca_wire::{Message, Transport, WireQuery};

use crate::durability::SourceDurability;
use crate::publish::EpochRegistry;
use crate::session::{RouteKind, Session};
use crate::{SourceId, ViewId, ViewStatus, Warehouse, WarehouseError};

/// One view hosted inside a shard. The global [`ViewId`] → (shard,
/// local) mapping lives in [`ConcurrentWarehouse::view_index`].
pub(crate) struct ShardView {
    pub(crate) maintainer: Box<dyn eca_core::ViewMaintainer>,
    pub(crate) states: Vec<SignedBag>,
    /// Global view index — the slot this view publishes to in the
    /// serving registry (shard-local indices are meaningless there).
    pub(crate) global: usize,
    /// Carried-over [`ViewStatus::Degraded`]: the view skips updates
    /// until its in-flight resync answer installs `V(ss)`.
    pub(crate) degraded: bool,
}

/// All warehouse state owned by one source's pump thread (or, in the
/// reactor runtime, by whichever pooled worker currently holds the
/// station's claim — see `reactor.rs`).
pub(crate) struct Shard {
    session: Session,
    pub(crate) views: Vec<ShardView>,
    record_history: bool,
    /// Shared epoch publication, carried over from the serial
    /// warehouse's [`Warehouse::enable_serving`] across the reshape.
    publisher: Option<Arc<EpochRegistry>>,
    /// Write-ahead log + checkpoints for this source channel, carried
    /// over from the serial warehouse's durability state. Shards log the
    /// same events the serial runtime does, so a crashed concurrent
    /// deployment recovers through the (serial)
    /// [`Warehouse::recover_durability`] path before reshaping again.
    durability: Option<SourceDurability>,
    /// Update notifications applied on this channel over its whole life.
    notifications_seen: u64,
}

impl Shard {
    /// A `W_up` event: fan the update out to every view in this shard
    /// (they are all over this source by construction). Returned messages
    /// carry session-global ids; `Route.view` holds *shard-local* view
    /// indices.
    pub(crate) fn on_update(&mut self, update: &Update) -> Result<Vec<Message>, WarehouseError> {
        let mut out = Vec::new();
        for idx in 0..self.views.len() {
            if self.views[idx].degraded {
                // Skip: the update's effects are inside the coming V(ss).
                continue;
            }
            let emitted = self.views[idx].maintainer.on_update(update)?;
            self.record_states(idx);
            for q in emitted {
                let query = WireQuery::from_query(&q.query);
                let id = self.session.register(idx, q.id, query.clone());
                out.push(Message::QueryRequest { id, query });
            }
        }
        self.notifications_seen += 1;
        self.log_event(|| WalRecord::Update(update.clone()))?;
        Ok(out)
    }

    /// A `W_ans` event: demux strictly by id, as in the serial runtime.
    pub(crate) fn on_answer(
        &mut self,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<Message>, WarehouseError> {
        let keep = self.durability.is_some().then(|| answer.clone());
        let route = self.session.take(id)?;
        if route.kind == RouteKind::Resync {
            // A carried-over resync completing on this shard: install
            // the fresh V(ss) wholesale and resume maintenance.
            let entry = &mut self.views[route.view];
            entry.maintainer.reset_to(answer)?;
            entry.degraded = false;
            self.record_states(route.view);
            if let Some(answer) = keep {
                self.log_event(move || WalRecord::Answer { id: id.0, answer })?;
            }
            return Ok(Vec::new());
        }
        let emitted = self.views[route.view]
            .maintainer
            .on_answer(route.local, answer)?;
        self.record_states(route.view);
        let mut out = Vec::new();
        for q in emitted {
            let query = WireQuery::from_query(&q.query);
            let id = self.session.register(route.view, q.id, query.clone());
            out.push(Message::QueryRequest { id, query });
        }
        if let Some(answer) = keep {
            self.log_event(move || WalRecord::Answer { id: id.0, answer })?;
        }
        Ok(out)
    }

    /// Append one committed event to the shard's log (no-op without
    /// durability), then cut a checkpoint if one is due and the shard is
    /// quiescent — same discipline as the serial runtime, under the
    /// shard lock.
    fn log_event(&mut self, record: impl FnOnce() -> WalRecord) -> Result<(), WarehouseError> {
        if self.durability.is_none() {
            return Ok(());
        }
        let record = record();
        self.durability
            .as_mut()
            .expect("checked above")
            .log(&record)?;
        self.maybe_checkpoint()
    }

    fn maybe_checkpoint(&mut self) -> Result<(), WarehouseError> {
        let due = self
            .durability
            .as_ref()
            .is_some_and(SourceDurability::due_for_checkpoint);
        if !due || !self.is_quiescent() || self.views.iter().any(|v| v.degraded) {
            return Ok(());
        }
        let wal_gen = self.durability.as_ref().expect("checked above").next_gen();
        let ckpt = SourceCheckpoint {
            epoch: self.session.epoch(),
            next_global_id: self.session.next_global_id(),
            notifications_applied: self.notifications_seen,
            wal_gen,
            views: self
                .views
                .iter()
                .map(|v| ViewCheckpoint {
                    mv: v.maintainer.materialized().clone(),
                    aux: v.maintainer.checkpoint_aux(),
                })
                .collect(),
        };
        self.durability
            .as_mut()
            .expect("checked above")
            .cut(&ckpt)?;
        Ok(())
    }

    /// Force buffered WAL records to disk regardless of policy (clean
    /// shutdown). No-op without durability.
    pub(crate) fn sync_durability(&mut self) -> Result<(), WarehouseError> {
        if let Some(d) = &mut self.durability {
            d.sync()?;
        }
        Ok(())
    }

    fn record_states(&mut self, idx: usize) {
        if !self.record_history {
            let _ = self.views[idx].maintainer.drain_intermediate_states();
        } else {
            let entry = &mut self.views[idx];
            let intermediates = entry.maintainer.drain_intermediate_states();
            if intermediates.is_empty() {
                entry.states.push(entry.maintainer.materialized().clone());
            } else {
                entry.states.extend(intermediates);
            }
        }
        if let Some(registry) = &self.publisher {
            let entry = &self.views[idx];
            registry.publish(
                entry.global,
                entry.maintainer.materialized(),
                entry.maintainer.is_quiescent(),
            );
        }
    }

    pub(crate) fn is_quiescent(&self) -> bool {
        self.session.pending() == 0 && self.views.iter().all(|v| v.maintainer.is_quiescent())
    }
}

/// The sharded-by-source reshaping shared by the concurrent and reactor
/// runtimes: per-source [`Shard`]s behind their own locks plus the global
/// [`ViewId`] → (shard, local) routing index.
pub(crate) struct ShardSet {
    pub(crate) names: Vec<String>,
    pub(crate) shards: Vec<Mutex<Shard>>,
    pub(crate) view_index: Vec<(usize, usize)>,
}

impl Warehouse {
    /// Reshape into per-source shards. Sessions move wholesale — epochs,
    /// id allocators and in-flight queries survive the reshape (pending
    /// routes are rewritten from global to shard-local view indices), as
    /// do per-view degraded states and any durability state, so a
    /// recovered warehouse can be reshaped mid-resync.
    pub(crate) fn into_shards(self) -> ShardSet {
        let durability = self.durability.map(|d| {
            assert!(
                !d.replaying,
                "cannot reshape a warehouse while recovery replay is in progress"
            );
            d.per_source
        });
        let mut names = Vec::with_capacity(self.sources.len());
        let mut shards: Vec<Shard> = Vec::with_capacity(self.sources.len());
        for entry in self.sources {
            names.push(entry.name);
            shards.push(Shard {
                session: entry.session,
                views: Vec::new(),
                record_history: self.record_history,
                publisher: self.publisher.clone(),
                durability: None,
                notifications_seen: entry.notifications_seen,
            });
        }
        if let Some(per_source) = durability {
            for (shard, sd) in shards.iter_mut().zip(per_source) {
                shard.durability = Some(sd);
            }
        }
        let mut view_index = Vec::with_capacity(self.views.len());
        for (global, entry) in self.views.into_iter().enumerate() {
            let shard = entry.source.0;
            view_index.push((shard, shards[shard].views.len()));
            debug_assert_eq!(view_index.len() - 1, global);
            shards[shard].views.push(ShardView {
                maintainer: entry.maintainer,
                states: entry.states,
                global,
                degraded: entry.status == ViewStatus::Degraded,
            });
        }
        // In-flight routes still name global view indices; rewrite them
        // to this shard's local ones.
        for shard in &mut shards {
            let map = view_index.clone();
            shard.session.remap_views(move |global| map[global].1);
        }
        ShardSet {
            names,
            shards: shards.into_iter().map(Mutex::new).collect(),
            view_index,
        }
    }
}

/// A warehouse whose per-source state lives behind per-source locks so
/// one pump thread per source can run maintenance concurrently.
///
/// Build one with [`Warehouse::into_concurrent`], drive it with
/// [`ConcurrentWarehouse::pump_all`] (or [`ConcurrentWarehouse::pump`]
/// from threads you manage yourself), then read results through the same
/// accessors the serial runtime offers.
pub struct ConcurrentWarehouse {
    names: Vec<String>,
    shards: Vec<Mutex<Shard>>,
    /// Global [`ViewId`] → (shard, shard-local index).
    view_index: Vec<(usize, usize)>,
    /// Longest silence a pump tolerates while its shard has queries
    /// outstanding before declaring the source stalled.
    stall_timeout: std::time::Duration,
}

/// Shard-lock helper: recovers from poisoning so a panicked pump thread
/// cannot wedge result accessors (the data is a consistent prefix —
/// maintainers mutate under the lock one event at a time).
pub(crate) fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Warehouse {
    /// Reshape this warehouse into the sharded concurrent runtime.
    ///
    /// Sessions, in-flight queries, degraded-view states and durability
    /// all carry over, so this is sound mid-traffic — including right
    /// after [`Warehouse::recover_durability`], while resyncs are still
    /// outstanding.
    pub fn into_concurrent(self) -> ConcurrentWarehouse {
        let ShardSet {
            names,
            shards,
            view_index,
        } = self.into_shards();
        ConcurrentWarehouse {
            names,
            shards,
            view_index,
            stall_timeout: std::time::Duration::from_secs(30),
        }
    }
}

impl ConcurrentWarehouse {
    /// Number of source shards.
    pub fn source_count(&self) -> usize {
        self.shards.len()
    }

    /// Change the pump stall timeout (default 30 s): the longest silence
    /// a pump thread tolerates while queries are outstanding before it
    /// gives up with [`WarehouseError::SourceStalled`]. Tests drop this
    /// to milliseconds so a wedged peer fails fast instead of hanging
    /// the suite.
    pub fn set_stall_timeout(&mut self, timeout: std::time::Duration) {
        self.stall_timeout = timeout;
    }

    /// The name a source was registered under.
    pub fn source_name(&self, source: SourceId) -> &str {
        &self.names[source.0]
    }

    /// The current materialized state of a view (cloned out of its
    /// shard).
    pub fn materialized(&self, view: ViewId) -> SignedBag {
        let (shard, local) = self.view_index[view.0];
        lock(&self.shards[shard]).views[local]
            .maintainer
            .materialized()
            .clone()
    }

    /// Every `MV` state a view passed through, starting with its initial
    /// state — the warehouse half of the §3.1 consistency check.
    pub fn view_states(&self, view: ViewId) -> Vec<SignedBag> {
        let (shard, local) = self.view_index[view.0];
        lock(&self.shards[shard]).views[local].states.clone()
    }

    /// Whether every shard is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.shards.iter().all(|s| lock(s).is_quiescent())
    }

    /// Force every shard's buffered WAL records to disk regardless of
    /// the fsync policy (clean-shutdown helper). No-op without
    /// durability.
    ///
    /// # Errors
    /// [`WarehouseError::Durability`] on filesystem failures.
    pub fn sync_durability(&self) -> Result<(), WarehouseError> {
        for shard in &self.shards {
            lock(shard).sync_durability()?;
        }
        Ok(())
    }

    /// Pump one source's transport until `expected_notifications` update
    /// notifications have arrived *and* the shard is quiescent. Blocks on
    /// `recv`; intended to run on its own thread, one per source — which
    /// is exactly what [`ConcurrentWarehouse::pump_all`] arranges.
    ///
    /// Answer payloads are **not** charged to the transport meter here:
    /// concurrent deployments meter each link once, on the source side
    /// (`Source::serve`/`serve_pool` record them), because both ends of a
    /// [`eca_wire::SharedFifo`] share one meter.
    ///
    /// # Errors
    /// [`WarehouseError::SourceHungUp`] if the peer disconnects before
    /// the shard settles; [`WarehouseError::SourceStalled`] if nothing
    /// arrives for a full stall timeout while the shard is unsettled (a
    /// wedged channel must not hang the pump thread forever — see
    /// [`ConcurrentWarehouse::set_stall_timeout`]); transport, routing
    /// and maintainer failures.
    pub fn pump(
        &self,
        source: SourceId,
        transport: &mut dyn Transport,
        expected_notifications: u64,
    ) -> Result<u64, WarehouseError> {
        let shard = &self.shards[source.0];
        let mut notifications = 0u64;
        let mut processed = 0u64;
        loop {
            if notifications >= expected_notifications && lock(shard).is_quiescent() {
                return Ok(processed);
            }
            let msg = match transport.recv_timeout(self.stall_timeout) {
                Ok(Some(msg)) => msg,
                Ok(None) => return Err(WarehouseError::SourceHungUp { source: source.0 }),
                Err(eca_wire::TransportError::Timeout) => {
                    return Err(WarehouseError::SourceStalled { source: source.0 })
                }
                Err(e) => return Err(e.into()),
            };
            processed += 1;
            let replies = match msg {
                Message::UpdateNotification { update } => {
                    notifications += 1;
                    lock(shard).on_update(&update)?
                }
                Message::QueryAnswer { id, answer } => lock(shard).on_answer(id, answer)?,
                Message::QueryRequest { .. } => {
                    return Err(WarehouseError::UnexpectedMessage {
                        kind: "QueryRequest",
                    })
                }
                // Session-layer envelopes are consumed by `ReliableLink`;
                // one surfacing here means the channel is mis-stacked.
                Message::Frame { .. } | Message::Ack { .. } | Message::Hello { .. } => {
                    return Err(WarehouseError::UnexpectedMessage {
                        kind: "session-layer",
                    })
                }
                // Read-serving traffic belongs on `eca-serve` channels,
                // never on a maintenance channel.
                Message::ReadQuery { .. }
                | Message::ReadAnswer { .. }
                | Message::ReadError { .. } => {
                    return Err(WarehouseError::UnexpectedMessage { kind: "read-layer" })
                }
            };
            for reply in replies {
                transport.send(&reply)?;
            }
        }
    }

    /// Spawn one pump thread per endpoint and drive every source to
    /// completion. `endpoints` pairs each source with its transport and
    /// the number of update notifications to expect (the count of
    /// *effective* updates in that source's script). Returns the total
    /// number of messages processed.
    ///
    /// # Errors
    /// The first error any pump thread hit.
    pub fn pump_all(
        &self,
        endpoints: Vec<(SourceId, Box<dyn Transport + Send>, u64)>,
    ) -> Result<u64, WarehouseError> {
        let results: Vec<Result<u64, WarehouseError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|(source, mut transport, expected)| {
                    scope.spawn(move || self.pump(source, transport.as_mut(), expected))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut total = 0u64;
        for r in results {
            total += r?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::algorithms::AlgorithmKind;
    use eca_core::{BaseDb, ViewDef};
    use eca_relational::{Predicate, Schema, Tuple};
    use eca_wire::{SharedFifo, TransferMeter};

    fn view_def(name: &str, r1: &str, r2: &str) -> ViewDef {
        ViewDef::new(
            name,
            vec![Schema::new(r1, &["W", "X"]), Schema::new(r2, &["X", "Y"])],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    /// Two sources, one view each, pumped by two threads over SharedFifo
    /// links with scripted "sources" on the far end: both views converge
    /// and the runtime reports quiescence.
    #[test]
    fn two_source_pump_converges() {
        let mut wh = Warehouse::new();
        let mut dbs = Vec::new();
        let mut views = Vec::new();
        let mut ids = Vec::new();
        for s in 0..2usize {
            let src = wh.add_source(format!("s{s}"));
            let (r1, r2) = (format!("q{s}_1"), format!("q{s}_2"));
            let view = view_def(&format!("V{s}"), &r1, &r2);
            let mut db = BaseDb::new();
            db.register(&r1);
            db.register(&r2);
            db.insert(&r1, Tuple::ints([1, 2]));
            let initial = view.eval(&db).unwrap();
            let id = wh
                .add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
                .unwrap();
            dbs.push(db);
            views.push(view);
            ids.push((src, id));
        }
        let cw = wh.into_concurrent();

        std::thread::scope(|scope| {
            let mut endpoints = Vec::new();
            for (s, db) in dbs.iter_mut().enumerate() {
                let (mut src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
                let (r1, r2) = (format!("q{s}_1"), format!("q{s}_2"));
                let updates = vec![
                    Update::insert(&r2, Tuple::ints([2, 3])),
                    Update::insert(&r1, Tuple::ints([4, 2])),
                ];
                endpoints.push((
                    SourceId(s),
                    Box::new(wh_end) as Box<dyn Transport + Send>,
                    updates.len() as u64,
                ));
                scope.spawn(move || {
                    // Scripted source: apply + notify, then answer every
                    // query on the *final* state (AllUpdatesFirst).
                    for u in &updates {
                        db.apply(u);
                        src_end
                            .send(&Message::UpdateNotification { update: u.clone() })
                            .unwrap();
                    }
                    let catalog =
                        vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])];
                    while let Some(msg) = src_end.recv().unwrap() {
                        let Message::QueryRequest { id, query } = msg else {
                            panic!("unexpected message at source");
                        };
                        let answer = query.to_query(&catalog).unwrap().eval(db).unwrap();
                        src_end.send(&Message::QueryAnswer { id, answer }).unwrap();
                    }
                });
            }
            cw.pump_all(endpoints).unwrap();
            // Dropping the endpoints hangs up the scripted sources.
        });

        assert!(cw.is_quiescent());
        for (s, (_, id)) in ids.iter().enumerate() {
            assert_eq!(cw.materialized(*id), views[s].eval(&dbs[s]).unwrap());
        }
    }

    /// Sessions carry over the reshape: a query put in flight on the
    /// serial warehouse is answered through its shard afterwards — same
    /// global id, route remapped to the shard-local view index — and the
    /// view converges.
    #[test]
    fn into_concurrent_carries_in_flight_sessions() {
        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let view = view_def("V", "r1", "r2");
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        db.insert("r1", Tuple::ints([1, 2]));
        let initial = view.eval(&db).unwrap();
        let id = wh
            .add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
            .unwrap();
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u);
        let qs = wh.on_update(src, &u).unwrap();
        assert_eq!(qs.len(), 1);
        let epoch_before = wh.epoch(src);

        let cw = wh.into_concurrent();
        assert!(!cw.is_quiescent(), "the in-flight query survived");
        {
            let mut shard = lock(&cw.shards[src.0]);
            assert_eq!(shard.session.epoch(), epoch_before);
            let answer = qs[0].query.eval(&db).unwrap();
            let replies = shard.on_answer(qs[0].id, answer).unwrap();
            assert!(replies.is_empty());
        }
        assert!(cw.is_quiescent());
        assert_eq!(cw.materialized(id), view.eval(&db).unwrap());
    }

    #[test]
    fn early_hangup_is_an_error() {
        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let view = view_def("V", "r1", "r2");
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        let initial = view.eval(&db).unwrap();
        wh.add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
            .unwrap();
        let cw = wh.into_concurrent();
        let (src_end, mut wh_end) = SharedFifo::pair(TransferMeter::new());
        drop(src_end); // peer gone before any notification
        assert!(matches!(
            cw.pump(src, &mut wh_end, 1),
            Err(WarehouseError::SourceHungUp { source: 0 })
        ));
    }
}
