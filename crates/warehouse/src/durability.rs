//! Durable warehouse state: WAL hooks, quiescent checkpoints, crash
//! recovery.
//!
//! The serial [`Warehouse`] (and, after
//! [`Warehouse::into_concurrent`]/`into_reactor`, each per-source shard)
//! can be given a disk via [`Warehouse::enable_durability`]: every
//! committed maintenance event on a source channel — applied update
//! notifications, applied answers (by session-global id), epoch bumps,
//! watermark jumps — is appended to that channel's write-ahead log
//! (`eca-durable`), and a checkpoint of view bags + session counters is
//! cut at the first quiescent point after every
//! [`eca_durable::DurabilityConfig::checkpoint_every`] events.
//!
//! Because per-source processing is single-threaded and deterministic
//! (sequential global ids, deterministic maintainer emissions), the log
//! records only *inputs*: [`Warehouse::recover_durability`] replays them
//! through the ordinary `on_update`/`on_answer`/`on_reset` paths and
//! re-derives every view bag, every pending route and every id exactly,
//! discarding the outbound queries regenerated along the way (they were
//! already on the wire before the crash). A torn or corrupt log tail is
//! truncated at the last valid record; an unusable checkpoint or log
//! falls back to the paper's §4 story — degrade every view and resync
//! from a fresh `V(ss)` ([`RecoveryOutcome::Full`]).
//!
//! Checkpoint/log pairing is by *generation*: cutting a checkpoint
//! names a fresh WAL generation and the old log file is deleted, so a
//! crash between "checkpoint written" and "old log removed" can never
//! replay pre-checkpoint records on top of the new checkpoint.

use eca_core::QueryId;
use eca_durable::{
    DurabilityConfig, DurableError, SourceCheckpoint, ViewCheckpoint, Wal, WalRecord,
};
use eca_wire::Message;

use crate::{SourceId, ViewStatus, Warehouse, WarehouseError};

/// Durable bookkeeping for one source channel. Owned by the serial
/// warehouse, and moved into the channel's shard when the warehouse is
/// reshaped for the concurrent/reactor runtimes.
pub(crate) struct SourceDurability {
    config: DurabilityConfig,
    source: usize,
    wal: Wal,
    /// Generation of the WAL currently appended to; the on-disk
    /// checkpoint (if any) names the generation it pairs with.
    gen: u64,
    records_since_checkpoint: u64,
    /// A baseline checkpoint is still owed (durability enabled or a
    /// full-fallback recovery happened while the channel was not
    /// quiescent): cut one at the first quiescent point regardless of
    /// cadence. Until it lands, a crash recovers via the full path.
    needs_baseline: bool,
}

impl SourceDurability {
    /// Wipe any previous durable state of `source` and start a fresh
    /// generation-0 log. The caller owes a baseline checkpoint.
    fn fresh(config: &DurabilityConfig, source: usize) -> Result<Self, DurableError> {
        let _ = std::fs::remove_file(config.checkpoint_path(source));
        config.remove_stale_wals(source, u64::MAX);
        let wal = Wal::open(config.wal_path(source, 0), config.fsync)?;
        Ok(SourceDurability {
            config: config.clone(),
            source,
            wal,
            gen: 0,
            records_since_checkpoint: 0,
            needs_baseline: true,
        })
    }

    /// Resume appending to an existing generation after recovery
    /// (`replayed` records already in the file count against the
    /// checkpoint cadence).
    fn resume(
        config: &DurabilityConfig,
        source: usize,
        gen: u64,
        replayed: u64,
    ) -> Result<Self, DurableError> {
        let wal = Wal::open(config.wal_path(source, gen), config.fsync)?;
        config.remove_stale_wals(source, gen);
        Ok(SourceDurability {
            config: config.clone(),
            source,
            wal,
            gen,
            records_since_checkpoint: replayed,
            needs_baseline: false,
        })
    }

    pub(crate) fn log(&mut self, record: &WalRecord) -> Result<(), DurableError> {
        self.wal.append(record)?;
        self.records_since_checkpoint += 1;
        Ok(())
    }

    pub(crate) fn due_for_checkpoint(&self) -> bool {
        self.needs_baseline || self.records_since_checkpoint >= self.config.checkpoint_every
    }

    /// Install `ckpt` as the new durable baseline and rotate to a fresh
    /// WAL generation. `ckpt.wal_gen` must be `self.gen + 1` (the
    /// generation the checkpoint will pair with).
    pub(crate) fn cut(&mut self, ckpt: &SourceCheckpoint) -> Result<(), DurableError> {
        debug_assert_eq!(ckpt.wal_gen, self.gen + 1);
        ckpt.write(&self.config.checkpoint_path(self.source))?;
        let fresh = Wal::open(
            self.config.wal_path(self.source, ckpt.wal_gen),
            self.config.fsync,
        )?;
        self.wal = fresh;
        let _ = std::fs::remove_file(self.config.wal_path(self.source, self.gen));
        self.gen = ckpt.wal_gen;
        self.records_since_checkpoint = 0;
        self.needs_baseline = false;
        Ok(())
    }

    /// The generation a cut made *now* would pair with.
    pub(crate) fn next_gen(&self) -> u64 {
        self.gen + 1
    }

    /// Force buffered records to disk regardless of policy (clean
    /// shutdown).
    pub(crate) fn sync(&mut self) -> Result<(), DurableError> {
        self.wal.sync()
    }
}

/// The warehouse-wide durable state behind
/// [`Warehouse::enable_durability`].
pub(crate) struct WarehouseDurability {
    /// One entry per source, in registration order.
    pub(crate) per_source: Vec<SourceDurability>,
    /// While `true` (log replay during recovery), events are *not*
    /// re-logged — they are already in the log being replayed.
    pub(crate) replaying: bool,
}

/// How one source channel came back from a crash.
#[derive(Debug)]
pub enum RecoveryOutcome {
    /// Checkpoint + log tail replayed: sessions are back at the correct
    /// epoch with the pre-crash in-flight queries pending, and the
    /// channel only needs the source to re-send notifications past the
    /// watermark plus answers to the re-issued queries.
    Incremental {
        /// The recovered channel.
        source: SourceId,
        /// WAL records replayed on top of the checkpoint.
        replayed: u64,
        /// Update notifications durably accounted for — the source
        /// should re-send its history *from this index on* (per-channel
        /// FIFO: re-sends must precede answers to the re-issued
        /// queries).
        notifications_seen: u64,
        /// Query messages to put on the fresh channel (in-flight work
        /// re-issued under the post-recovery epoch).
        messages: Vec<Message>,
    },
    /// Checkpoint or log unusable (missing, damaged, or inconsistent
    /// with the deployment): the paper's §4 fallback. Every view over
    /// the source is degraded and resyncs from a fresh `V(ss)`.
    Full {
        /// The recovered channel.
        source: SourceId,
        /// Resync query messages to put on the fresh channel.
        messages: Vec<Message>,
    },
}

impl RecoveryOutcome {
    /// The channel this outcome describes.
    pub fn source(&self) -> SourceId {
        match self {
            RecoveryOutcome::Incremental { source, .. } | RecoveryOutcome::Full { source, .. } => {
                *source
            }
        }
    }

    /// Whether the channel recovered incrementally (checkpoint + log).
    pub fn is_incremental(&self) -> bool {
        matches!(self, RecoveryOutcome::Incremental { .. })
    }

    /// The query messages to send on the fresh channel.
    pub fn messages(&self) -> &[Message] {
        match self {
            RecoveryOutcome::Incremental { messages, .. }
            | RecoveryOutcome::Full { messages, .. } => messages,
        }
    }
}

/// Per-source recovery plan assembled from the on-disk state before any
/// warehouse state is touched.
enum Plan {
    Incremental {
        ckpt: SourceCheckpoint,
        records: Vec<WalRecord>,
    },
    Full,
}

impl Warehouse {
    /// Whether durability is enabled.
    pub fn durability_enabled(&self) -> bool {
        self.durability.is_some()
    }

    /// Update notifications applied (and accounted) on `source`'s
    /// channel over its whole life — the watermark an incremental
    /// resync resumes from.
    pub fn notifications_seen(&self, source: SourceId) -> u64 {
        self.sources[source.0].notifications_seen
    }

    /// Turn on durability: every source channel gets a write-ahead log
    /// under `config.dir` and a baseline checkpoint (cut immediately if
    /// the channel is quiescent, else at its first quiescent point).
    /// Any durable state already in `config.dir` is wiped — this call
    /// starts a new durable lineage; use
    /// [`Warehouse::recover_durability`] to *resume* one.
    ///
    /// Fault-free behaviour is unchanged: logging touches neither
    /// transports nor meters nor scheduling, so runs stay meter- and
    /// trace-identical to the same deployment without durability.
    ///
    /// # Panics
    /// If durability is already enabled.
    ///
    /// # Errors
    /// [`WarehouseError::Durability`] on filesystem failures.
    pub fn enable_durability(&mut self, config: DurabilityConfig) -> Result<(), WarehouseError> {
        assert!(
            self.durability.is_none(),
            "durability is already enabled on this warehouse"
        );
        std::fs::create_dir_all(&config.dir).map_err(DurableError::Io)?;
        let mut per_source = Vec::with_capacity(self.sources.len());
        for s in 0..self.sources.len() {
            per_source.push(SourceDurability::fresh(&config, s)?);
        }
        self.durability = Some(WarehouseDurability {
            per_source,
            replaying: false,
        });
        for s in 0..self.sources.len() {
            self.maybe_checkpoint(s)?;
        }
        Ok(())
    }

    /// Force every buffered WAL record to disk regardless of the fsync
    /// policy (clean-shutdown helper). No-op without durability.
    ///
    /// # Errors
    /// [`WarehouseError::Durability`] on filesystem failures.
    pub fn sync_durability(&mut self) -> Result<(), WarehouseError> {
        if let Some(d) = &mut self.durability {
            for sd in &mut d.per_source {
                sd.sync()?;
            }
        }
        Ok(())
    }

    /// Record that the source has accounted for `sent` notifications on
    /// this channel even though fewer arrived — called when a completed
    /// RV-style resync subsumes notifications lost to a *source*
    /// restart, so a later warehouse crash does not ask for them again
    /// (re-applying an update already inside the installed `V(ss)`
    /// would double-count it).
    ///
    /// # Errors
    /// [`WarehouseError::UnknownSource`];
    /// [`WarehouseError::Durability`] on log append failures.
    pub fn note_source_watermark(
        &mut self,
        source: SourceId,
        sent: u64,
    ) -> Result<(), WarehouseError> {
        if source.0 >= self.sources.len() {
            return Err(WarehouseError::UnknownSource { id: source.0 });
        }
        if sent > self.sources[source.0].notifications_seen {
            self.sources[source.0].notifications_seen = sent;
            self.log_event(source.0, || WalRecord::Watermark { applied: sent })?;
        }
        Ok(())
    }

    /// Whether committed events should be logged right now (durability
    /// on and not replaying).
    pub(crate) fn logging_live(&self) -> bool {
        matches!(&self.durability, Some(d) if !d.replaying)
    }

    /// Append one committed event to `source`'s log (no-op without
    /// durability or during replay), then cut a checkpoint if one is
    /// due and the channel is quiescent.
    pub(crate) fn log_event(
        &mut self,
        source: usize,
        record: impl FnOnce() -> WalRecord,
    ) -> Result<(), WarehouseError> {
        let logging = matches!(&self.durability, Some(d) if !d.replaying);
        if !logging {
            return Ok(());
        }
        let record = record();
        self.durability.as_mut().expect("checked above").per_source[source].log(&record)?;
        self.maybe_checkpoint(source)
    }

    /// Cut a checkpoint of `source`'s channel if one is due and the
    /// channel is quiescent (nothing pending, every view active and
    /// settled — so no in-flight compensation state needs serializing).
    fn maybe_checkpoint(&mut self, source: usize) -> Result<(), WarehouseError> {
        let due = match &self.durability {
            Some(d) if !d.replaying => d.per_source[source].due_for_checkpoint(),
            _ => false,
        };
        if !due || !self.source_quiescent(SourceId(source)) {
            return Ok(());
        }
        let wal_gen =
            self.durability.as_ref().expect("checked above").per_source[source].next_gen();
        let ckpt = self.build_checkpoint(source, wal_gen);
        self.durability.as_mut().expect("checked above").per_source[source].cut(&ckpt)?;
        Ok(())
    }

    /// Serialize `source`'s durable state at a quiescent point.
    fn build_checkpoint(&self, source: usize, wal_gen: u64) -> SourceCheckpoint {
        let entry = &self.sources[source];
        SourceCheckpoint {
            epoch: entry.session.epoch(),
            next_global_id: entry.session.next_global_id(),
            notifications_applied: entry.notifications_seen,
            wal_gen,
            views: entry
                .views
                .iter()
                .map(|v| ViewCheckpoint {
                    mv: self.views[v.0].maintainer.materialized().clone(),
                    aux: self.views[v.0].maintainer.checkpoint_aux(),
                })
                .collect(),
        }
    }

    /// Restart from disk after a crash. Call on a freshly built
    /// warehouse with the *same* sources and views (same registration
    /// order) as the crashed deployment, before any traffic.
    ///
    /// Per source channel: load the checkpoint, restore view bags and
    /// session counters from it, truncate the log's torn tail at the
    /// last valid record, replay the tail through the ordinary event
    /// handlers (re-deriving pending queries under their original ids),
    /// and finally reset the channel — re-issuing the in-flight work
    /// under a fresh epoch. A missing/damaged checkpoint, an
    /// undecodable log, or a replay mismatch falls back to
    /// [`RecoveryOutcome::Full`]: every view over that source degrades
    /// and resyncs from a fresh `V(ss)`.
    ///
    /// Durability stays enabled afterwards, resuming the recovered
    /// lineage (incremental channels keep their generation; full ones
    /// start a new one and owe a baseline checkpoint).
    ///
    /// # Panics
    /// If durability is already enabled on this instance.
    ///
    /// # Errors
    /// [`WarehouseError::Durability`] on filesystem failures;
    /// maintainer failures surfaced while resetting unusable channels.
    pub fn recover_durability(
        &mut self,
        config: DurabilityConfig,
    ) -> Result<Vec<RecoveryOutcome>, WarehouseError> {
        assert!(
            self.durability.is_none(),
            "recover_durability needs a fresh warehouse without durability enabled"
        );
        std::fs::create_dir_all(&config.dir).map_err(DurableError::Io)?;

        // Phase 1: read disk and decide a plan per source.
        let mut plans = Vec::with_capacity(self.sources.len());
        for s in 0..self.sources.len() {
            let loaded = match SourceCheckpoint::load(&config.checkpoint_path(s)) {
                Ok(loaded) => loaded,
                Err(DurableError::Io(e)) => return Err(DurableError::Io(e).into()),
                // Checksum-valid but undecodable: version skew — fall
                // back rather than brick the restart.
                Err(_) => None,
            };
            let plan = match loaded {
                Some(ckpt) if ckpt.views.len() == self.sources[s].views.len() => {
                    let wal_path = config.wal_path(s, ckpt.wal_gen);
                    match Wal::scan(&wal_path) {
                        Ok(scan) => {
                            Wal::truncate_torn_tail(&wal_path, &scan)?;
                            Plan::Incremental {
                                ckpt,
                                records: scan.records,
                            }
                        }
                        // Undecodable record past a valid checksum:
                        // version skew — the log cannot be trusted.
                        Err(_) => Plan::Full,
                    }
                }
                _ => Plan::Full,
            };
            plans.push(plan);
        }

        // Phase 2: open the logs and install durability in replay mode,
        // so the replayed events are not re-logged.
        let mut per_source = Vec::with_capacity(self.sources.len());
        for (s, plan) in plans.iter().enumerate() {
            let sd = match plan {
                Plan::Incremental { ckpt, records } => {
                    SourceDurability::resume(&config, s, ckpt.wal_gen, records.len() as u64)?
                }
                Plan::Full => SourceDurability::fresh(&config, s)?,
            };
            per_source.push(sd);
        }
        self.durability = Some(WarehouseDurability {
            per_source,
            replaying: true,
        });

        // Phase 3: restore + replay per source; downgrade to Full on
        // any mismatch between the log and the deployment.
        let mut incremental: Vec<Option<u64>> = Vec::with_capacity(plans.len());
        for (s, plan) in plans.into_iter().enumerate() {
            match plan {
                Plan::Incremental { ckpt, records } => {
                    let replayed = records.len() as u64;
                    if self.restore_and_replay(s, ckpt, records) {
                        incremental.push(Some(replayed));
                    } else {
                        // Partial replay may have left garbage: wipe the
                        // durable lineage and let the resync overwrite
                        // the in-memory state wholesale.
                        let sd = SourceDurability::fresh(&config, s)?;
                        self.durability
                            .as_mut()
                            .expect("installed above")
                            .per_source[s] = sd;
                        for v in self.sources[s].views.clone() {
                            let entry = &mut self.views[v.0];
                            entry.states = vec![entry.maintainer.materialized().clone()];
                        }
                        incremental.push(None);
                    }
                }
                Plan::Full => incremental.push(None),
            }
        }

        // Phase 4: live again. Reset every channel (the crash killed
        // the connections): incremental channels re-issue their
        // in-flight queries, unusable ones degrade to full resyncs.
        self.durability.as_mut().expect("installed above").replaying = false;
        let mut outcomes = Vec::with_capacity(incremental.len());
        for (s, inc) in incremental.into_iter().enumerate() {
            let source = SourceId(s);
            let messages = self.on_reset(source, inc.is_none())?;
            outcomes.push(match inc {
                Some(replayed) => RecoveryOutcome::Incremental {
                    source,
                    replayed,
                    notifications_seen: self.sources[s].notifications_seen,
                    messages,
                },
                None => RecoveryOutcome::Full { source, messages },
            });
        }
        Ok(outcomes)
    }

    /// Restore `source` from `ckpt` and replay `records` through the
    /// ordinary event handlers (outbound queries discarded — they were
    /// on the wire before the crash). Returns `false` on any mismatch.
    fn restore_and_replay(
        &mut self,
        s: usize,
        ckpt: SourceCheckpoint,
        records: Vec<WalRecord>,
    ) -> bool {
        self.sources[s]
            .session
            .restore_durable(ckpt.epoch, ckpt.next_global_id);
        self.sources[s].notifications_seen = ckpt.notifications_applied;
        let view_ids = self.sources[s].views.clone();
        for (v, vck) in view_ids.iter().zip(ckpt.views) {
            let entry = &mut self.views[v.0];
            if entry
                .maintainer
                .restore_checkpoint(vck.mv, vck.aux)
                .is_err()
            {
                return false;
            }
            entry.status = ViewStatus::Active;
            entry.states = vec![entry.maintainer.materialized().clone()];
        }
        let source = SourceId(s);
        for record in records {
            let ok = match record {
                WalRecord::Update(update) => self.on_update(source, &update).is_ok(),
                WalRecord::Answer { id, answer } => {
                    self.on_answer(source, QueryId(id), answer).is_ok()
                }
                WalRecord::EpochBump { notifications_lost } => {
                    self.on_reset(source, notifications_lost).is_ok()
                }
                WalRecord::Watermark { applied } => {
                    let seen = &mut self.sources[s].notifications_seen;
                    *seen = (*seen).max(applied);
                    true
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SourceId, ViewId, ViewStatus, Warehouse};
    use eca_core::algorithms::AlgorithmKind;
    use eca_core::{BaseDb, ViewDef};
    use eca_relational::{Predicate, Schema, Tuple, Update};
    use eca_wire::Message;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eca-wh-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn view_def() -> ViewDef {
        ViewDef::new(
            "V",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0, 3],
        )
        .unwrap()
    }

    fn base_db() -> BaseDb {
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 7]));
        db
    }

    fn catalog() -> Vec<Schema> {
        vec![
            Schema::new("r1", &["W", "X"]),
            Schema::new("r2", &["X", "Y"]),
        ]
    }

    /// A fresh warehouse with one ECA view over one source, in the
    /// deployment shape recovery expects to be rebuilt into.
    fn build(db: &BaseDb) -> (Warehouse, SourceId, ViewId) {
        let v = view_def();
        let mut wh = Warehouse::new();
        let src = wh.add_source("src");
        let id = wh
            .add_view(
                src,
                AlgorithmKind::Eca
                    .instantiate(&v, v.eval(db).unwrap())
                    .unwrap(),
            )
            .unwrap();
        (wh, src, id)
    }

    fn answer_all(wh: &mut Warehouse, src: SourceId, db: &BaseDb, msgs: Vec<Message>) {
        let mut queue: Vec<Message> = msgs;
        while let Some(msg) = queue.pop() {
            let Message::QueryRequest { id, query } = msg else {
                panic!("only query requests expected");
            };
            let answer = query.to_query(&catalog()).unwrap().eval(db).unwrap();
            for q in wh.on_answer(src, id, answer).unwrap() {
                queue.push(Message::QueryRequest {
                    id: q.id,
                    query: eca_wire::WireQuery::from_query(&q.query),
                });
            }
        }
    }

    #[test]
    fn crash_mid_flight_recovers_incrementally_and_converges() {
        let dir = tmpdir("midflight");
        let mut db = base_db();
        let (mut wh, src, view) = build(&db);
        // Large cadence: only the baseline checkpoint exists, so the
        // whole run replays from the log.
        let cfg = DurabilityConfig::new(&dir).with_checkpoint_every(1_000);
        wh.enable_durability(cfg.clone()).unwrap();

        // One settled round, then an update whose queries stay in
        // flight across the crash.
        let u1 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u1);
        let q1 = wh.on_update(src, &u1).unwrap();
        for q in &q1 {
            wh.on_answer(src, q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        let u2 = Update::insert("r2", Tuple::ints([2, 9]));
        db.apply(&u2);
        let q2 = wh.on_update(src, &u2).unwrap();
        assert_eq!(q2.len(), 1);
        assert_eq!(wh.notifications_seen(src), 2);
        drop(wh); // crash: the process dies with a query in flight

        let (mut wh, src, view2) = build(&base_db());
        assert_eq!(view, view2);
        let outcomes = wh.recover_durability(cfg).unwrap();
        assert_eq!(outcomes.len(), 1);
        let RecoveryOutcome::Incremental {
            replayed,
            notifications_seen,
            ref messages,
            ..
        } = outcomes[0]
        else {
            panic!("expected incremental recovery, got {:?}", outcomes[0]);
        };
        assert_eq!(replayed, 3, "u1 + its answer + u2");
        assert_eq!(notifications_seen, 2);
        assert_eq!(messages.len(), 1, "the in-flight query re-issued");
        assert!(wh.epoch(src) > 0, "recovery starts a fresh epoch");
        assert_eq!(wh.view_status(view), ViewStatus::Active);

        answer_all(
            &mut wh,
            src,
            &db,
            outcomes.into_iter().next().unwrap().messages().to_vec(),
        );
        assert!(wh.is_quiescent());
        assert_eq!(*wh.materialized(view), view_def().eval(&db).unwrap());
    }

    #[test]
    fn checkpoint_rotation_bounds_replay_to_the_log_tail() {
        let dir = tmpdir("rotate");
        let mut db = base_db();
        let (mut wh, src, view) = build(&db);
        // Cut a checkpoint at every quiescent point.
        let cfg = DurabilityConfig::new(&dir).with_checkpoint_every(1);
        wh.enable_durability(cfg.clone()).unwrap();

        for i in 0..5i64 {
            let u = Update::insert("r2", Tuple::ints([2, 10 + i]));
            db.apply(&u);
            let qs = wh.on_update(src, &u).unwrap();
            for q in &qs {
                wh.on_answer(src, q.id, q.query.eval(&db).unwrap()).unwrap();
            }
        }
        assert!(wh.is_quiescent());
        drop(wh); // crash exactly at a checkpointed quiescent point

        let (mut wh, _, _) = build(&base_db());
        let outcomes = wh.recover_durability(cfg).unwrap();
        let RecoveryOutcome::Incremental {
            replayed,
            ref messages,
            ..
        } = outcomes[0]
        else {
            panic!("expected incremental recovery");
        };
        assert_eq!(replayed, 0, "the checkpoint already covers everything");
        assert!(messages.is_empty(), "nothing was in flight");
        assert_eq!(*wh.materialized(view), view_def().eval(&db).unwrap());
        assert!(wh.is_quiescent());
    }

    #[test]
    fn unusable_checkpoint_falls_back_to_full_resync() {
        let dir = tmpdir("fallback");
        let mut db = base_db();
        let (mut wh, src, view) = build(&db);
        let cfg = DurabilityConfig::new(&dir).with_checkpoint_every(1_000);
        wh.enable_durability(cfg.clone()).unwrap();
        let u = Update::insert("r1", Tuple::ints([5, 2]));
        db.apply(&u);
        let qs = wh.on_update(src, &u).unwrap();
        for q in &qs {
            wh.on_answer(src, q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        drop(wh);
        std::fs::remove_file(cfg.checkpoint_path(0)).unwrap();

        let (mut wh, src, _) = build(&base_db());
        let outcomes = wh.recover_durability(cfg.clone()).unwrap();
        let RecoveryOutcome::Full { ref messages, .. } = outcomes[0] else {
            panic!("expected full fallback, got {:?}", outcomes[0]);
        };
        assert_eq!(messages.len(), 1, "one resync query for the view");
        assert_eq!(wh.view_status(view), ViewStatus::Degraded);
        answer_all(
            &mut wh,
            src,
            &db,
            outcomes.into_iter().next().unwrap().messages().to_vec(),
        );
        assert_eq!(*wh.materialized(view), view_def().eval(&db).unwrap());
        assert!(wh.is_quiescent());

        // The fallback re-establishes a durable lineage: a second crash
        // right after quiescence now recovers incrementally again.
        drop(wh);
        let (mut wh, _, _) = build(&base_db());
        let outcomes = wh.recover_durability(cfg).unwrap();
        assert!(
            outcomes[0].is_incremental(),
            "baseline checkpoint after fallback, got {:?}",
            outcomes[0]
        );
        assert_eq!(*wh.materialized(view), view_def().eval(&db).unwrap());
    }

    #[test]
    fn fault_free_run_is_identical_with_durability_enabled() {
        let dir = tmpdir("identity");
        let mut db1 = base_db();
        let mut db2 = base_db();
        let (mut plain, src1, v1) = build(&db1);
        let (mut durable, src2, v2) = build(&db2);
        durable
            .enable_durability(DurabilityConfig::new(&dir).with_checkpoint_every(2))
            .unwrap();

        for i in 0..6i64 {
            let u = if i % 3 == 2 {
                Update::delete("r2", Tuple::ints([2, 7]))
            } else {
                Update::insert("r2", Tuple::ints([2, 20 + i]))
            };
            db1.apply(&u);
            db2.apply(&u);
            let a = plain.on_update(src1, &u).unwrap();
            let b = durable.on_update(src2, &u).unwrap();
            assert_eq!(a.len(), b.len());
            for (qa, qb) in a.iter().zip(&b) {
                assert_eq!(qa.id, qb.id, "identical global id allocation");
                plain
                    .on_answer(src1, qa.id, qa.query.eval(&db1).unwrap())
                    .unwrap();
                durable
                    .on_answer(src2, qb.id, qb.query.eval(&db2).unwrap())
                    .unwrap();
            }
        }
        assert_eq!(plain.view_states(v1), durable.view_states(v2));
        assert_eq!(plain.epoch(src1), durable.epoch(src2));
    }

    #[test]
    fn watermark_notes_are_durable_and_monotonic() {
        let dir = tmpdir("watermark");
        let db = base_db();
        let (mut wh, src, _) = build(&db);
        let cfg = DurabilityConfig::new(&dir).with_checkpoint_every(1_000);
        wh.enable_durability(cfg.clone()).unwrap();
        wh.note_source_watermark(src, 7).unwrap();
        wh.note_source_watermark(src, 3).unwrap(); // ignored: not ahead
        assert_eq!(wh.notifications_seen(src), 7);
        drop(wh);

        let (mut wh, src, _) = build(&base_db());
        let outcomes = wh.recover_durability(cfg).unwrap();
        assert!(outcomes[0].is_incremental());
        assert_eq!(wh.notifications_seen(src), 7);
    }
}
