//! The warehouse runtime (paper §1 Figure 1.1, §7).
//!
//! A [`Warehouse`] owns a set of [`ViewMaintainer`]s spread over any
//! number of autonomous sources. Each source channel gets a
//! [`Session`] with its own query-id space and pending-query FIFO; each
//! inbound update notification is routed to every view over that source
//! (paper §7: *"in a warehouse consisting of multiple views where each
//! view is over data from a single source, ECA is simply applied to each
//! view separately"*), and each answer is demultiplexed back to the
//! owning maintainer **strictly by query id**.
//!
//! The runtime is transport-agnostic: [`Warehouse::on_update`] /
//! [`Warehouse::on_answer`] react to already-delivered events (the
//! simulator's entry points), while [`Warehouse::on_message`] +
//! [`Warehouse::pump`] speak [`eca_wire::Message`] over any
//! [`Transport`], e.g. the real TCP link of `examples/tcp_warehouse.rs`.
//! Interleaving is always supplied from outside — exactly the decoupling
//! the paper studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod durability;
pub mod publish;
pub mod reactor;
pub mod session;

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use eca_core::maintainer::OutboundQuery;
use eca_core::{CoreError, QueryId, ViewMaintainer};
use eca_durable::WalRecord;
use eca_relational::{SignedBag, Update};
use eca_wire::{Message, Transport, TransportError, WireQuery};

pub use concurrent::ConcurrentWarehouse;
pub use durability::RecoveryOutcome;
pub use eca_durable::{DurabilityConfig, DurableError, FsyncPolicy};
pub use publish::{EpochRegistry, ReadSnapshot};
pub use reactor::{connect_source, ReactorWarehouse};
pub use session::{PendingQuery, Route, RouteKind, Session};

/// Handle to a registered source channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceId(pub usize);

/// Handle to a hosted view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ViewId(pub usize);

/// Errors raised by the warehouse runtime.
#[derive(Debug)]
pub enum WarehouseError {
    /// A maintainer or routing failure (including
    /// [`CoreError::UnknownQuery`] for unrouted answer ids).
    Core(CoreError),
    /// An operation referenced an unregistered source.
    UnknownSource {
        /// The offending handle.
        id: usize,
    },
    /// A message kind arrived that never travels source → warehouse.
    UnexpectedMessage {
        /// The offending kind.
        kind: &'static str,
    },
    /// The underlying transport failed.
    Transport(TransportError),
    /// A source disconnected before its shard settled (concurrent
    /// runtime only — the serial pump treats hang-up as end of input).
    SourceHungUp {
        /// The offending source's shard index.
        source: usize,
    },
    /// A blocking pump waited its full stall timeout without receiving a
    /// message while queries were still outstanding. The channel may be
    /// wedged; the caller should reset it and run
    /// [`Warehouse::on_reset`].
    SourceStalled {
        /// The offending source's index.
        source: usize,
    },
    /// A transport handed to the reactor refused the shared
    /// [`eca_wire::PollWaker`] (`set_waker` returned `false`). The
    /// reactor's parking discipline relies on arrival notifications from
    /// *every* channel; silently degrading to a short poll interval
    /// would hide the misconfiguration, so registration fails instead.
    WakerRejected {
        /// The offending source's shard index.
        source: usize,
    },
    /// The durability layer failed (WAL append, checkpoint write, or
    /// recovery I/O).
    Durability(DurableError),
}

impl std::fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarehouseError::Core(e) => write!(f, "maintenance error: {e}"),
            WarehouseError::UnknownSource { id } => write!(f, "unknown source #{id}"),
            WarehouseError::UnexpectedMessage { kind } => {
                write!(f, "unexpected {kind} message from source")
            }
            WarehouseError::Transport(e) => write!(f, "transport error: {e}"),
            WarehouseError::SourceHungUp { source } => {
                write!(f, "source #{source} hung up before its shard settled")
            }
            WarehouseError::SourceStalled { source } => {
                write!(
                    f,
                    "source #{source} sent nothing for a full stall timeout with queries pending"
                )
            }
            WarehouseError::WakerRejected { source } => {
                write!(
                    f,
                    "source #{source}'s transport rejected the reactor's poll waker"
                )
            }
            WarehouseError::Durability(e) => write!(f, "durability error: {e}"),
        }
    }
}

impl std::error::Error for WarehouseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WarehouseError::Core(e) => Some(e),
            WarehouseError::Transport(e) => Some(e),
            WarehouseError::Durability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DurableError> for WarehouseError {
    fn from(e: DurableError) -> Self {
        WarehouseError::Durability(e)
    }
}

impl From<CoreError> for WarehouseError {
    fn from(e: CoreError) -> Self {
        WarehouseError::Core(e)
    }
}

impl From<TransportError> for WarehouseError {
    fn from(e: TransportError) -> Self {
        WarehouseError::Transport(e)
    }
}

struct SourceEntry {
    name: String,
    session: Session,
    /// Routing index: handles of the views over this source, in
    /// registration order. Maintained by [`Warehouse::add_view`] so
    /// update fan-out never rescans (or re-allocates) the view table.
    views: Vec<ViewId>,
    /// Update notifications applied on this channel over its whole life
    /// (including notifications subsumed by a completed resync — see
    /// [`Warehouse::note_source_watermark`]). This is the watermark an
    /// incremental crash recovery resumes the source's stream from.
    notifications_seen: u64,
}

/// Health of a hosted view with respect to channel faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViewStatus {
    /// Normal incremental maintenance.
    Active,
    /// The view lost state it cannot recover incrementally (exhausted
    /// retries, unsafe re-issue, or lost notifications) and is waiting
    /// for the answer to a full-view resync query. Updates are skipped
    /// until the resync answer installs `V(ss)` via
    /// [`eca_core::ViewMaintainer::reset_to`].
    Degraded,
}

/// Recovery activity counters (monotonic over the warehouse's life).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// In-flight queries re-issued under a new epoch after resets.
    pub reissued: u64,
    /// Full-view resyncs started (views degraded).
    pub resyncs_started: u64,
    /// Resync answers installed (views returned to [`ViewStatus::Active`]).
    pub resyncs_completed: u64,
}

struct ViewEntry {
    source: SourceId,
    maintainer: Box<dyn ViewMaintainer>,
    status: ViewStatus,
    /// `MV` after the initial state and each event that reached this
    /// view, including every intermediate state a maintainer reports via
    /// [`ViewMaintainer::drain_intermediate_states`] — the history the
    /// §3.1 consistency checker needs.
    states: Vec<SignedBag>,
}

/// A warehouse runtime hosting many views over many sources.
pub struct Warehouse {
    sources: Vec<SourceEntry>,
    views: Vec<ViewEntry>,
    record_history: bool,
    max_retries: u32,
    recovery: RecoveryStats,
    /// Epoch publication for the read-serving layer, enabled by
    /// [`Warehouse::enable_serving`]. `None` keeps maintenance-only
    /// deployments free of per-event snapshot clones.
    publisher: Option<Arc<EpochRegistry>>,
    /// Write-ahead logging + checkpoints, enabled by
    /// [`Warehouse::enable_durability`] /
    /// [`Warehouse::recover_durability`]. `None` keeps volatile
    /// deployments free of any disk traffic.
    durability: Option<durability::WarehouseDurability>,
}

impl Default for Warehouse {
    fn default() -> Self {
        Warehouse::new()
    }
}

impl Warehouse {
    /// An empty warehouse.
    pub fn new() -> Self {
        Warehouse {
            sources: Vec::new(),
            views: Vec::new(),
            record_history: true,
            max_retries: 3,
            recovery: RecoveryStats::default(),
            publisher: None,
            durability: None,
        }
    }

    /// Turn on epoch publication for the read-serving layer: every view
    /// registered so far is published (initial state = epoch 0,
    /// quiesced), and from now on every processed event publishes the
    /// affected view's new state into the returned [`EpochRegistry`] —
    /// copy-on-publish, so readers share `Arc` snapshots and never
    /// contend with maintenance. `ring_cap` bounds each view's window
    /// of retained epochs. Call after [`Warehouse::add_view`]; views
    /// added later are not served.
    ///
    /// The registry survives [`Warehouse::into_concurrent`] and the
    /// reactor reshaping — shards keep publishing into the same store.
    pub fn enable_serving(&mut self, ring_cap: usize) -> Arc<EpochRegistry> {
        let registry = Arc::new(EpochRegistry::new(
            self.views
                .iter()
                .map(|v| v.maintainer.materialized().clone()),
            ring_cap,
        ));
        self.publisher = Some(Arc::clone(&registry));
        registry
    }

    /// How many times an in-flight query may be re-issued across channel
    /// resets before its view is degraded to a full resync (default 3).
    pub fn set_max_retries(&mut self, n: u32) {
        self.max_retries = n;
    }

    /// Recovery activity so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery
    }

    /// Toggle per-event state-history recording (on by default). The
    /// history feeds the §3.1 consistency checker; long throughput runs
    /// can switch it off so maintenance cost stays O(event) instead of
    /// cloning an ever-growing `MV` after every event. Initial states
    /// are always kept.
    pub fn set_record_history(&mut self, on: bool) {
        self.record_history = on;
    }

    /// Register a source channel.
    pub fn add_source(&mut self, name: impl Into<String>) -> SourceId {
        self.sources.push(SourceEntry {
            name: name.into(),
            session: Session::new(),
            views: Vec::new(),
            notifications_seen: 0,
        });
        SourceId(self.sources.len() - 1)
    }

    /// Host a view maintained over `source`'s base relations.
    ///
    /// # Errors
    /// [`WarehouseError::UnknownSource`] for an unregistered handle.
    pub fn add_view(
        &mut self,
        source: SourceId,
        maintainer: Box<dyn ViewMaintainer>,
    ) -> Result<ViewId, WarehouseError> {
        if source.0 >= self.sources.len() {
            return Err(WarehouseError::UnknownSource { id: source.0 });
        }
        let initial = maintainer.materialized().clone();
        self.views.push(ViewEntry {
            source,
            maintainer,
            status: ViewStatus::Active,
            states: vec![initial],
        });
        let id = ViewId(self.views.len() - 1);
        self.sources[source.0].views.push(id);
        Ok(id)
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of hosted views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// The name a source was registered under.
    pub fn source_name(&self, source: SourceId) -> &str {
        &self.sources[source.0].name
    }

    /// The session state of a source channel.
    pub fn session(&self, source: SourceId) -> &Session {
        &self.sources[source.0].session
    }

    /// The maintainer behind a view handle.
    pub fn maintainer(&self, view: ViewId) -> &dyn ViewMaintainer {
        self.views[view.0].maintainer.as_ref()
    }

    /// The current materialized state of a view.
    pub fn materialized(&self, view: ViewId) -> &SignedBag {
        self.views[view.0].maintainer.materialized()
    }

    /// Every `MV` state a view passed through, starting with its initial
    /// state — the warehouse half of the §3.1 consistency check.
    pub fn view_states(&self, view: ViewId) -> &[SignedBag] {
        &self.views[view.0].states
    }

    /// Handles of the views maintained over `source`, in registration
    /// order. Served from the precomputed routing index — no scan, no
    /// allocation.
    pub fn views_over(&self, source: SourceId) -> &[ViewId] {
        &self.sources[source.0].views
    }

    /// The fault status of a view.
    pub fn view_status(&self, view: ViewId) -> ViewStatus {
        self.views[view.0].status
    }

    /// The current epoch of a source channel.
    pub fn epoch(&self, source: SourceId) -> u64 {
        self.sources[source.0].session.epoch()
    }

    /// Whether every view is quiescent (and healthy) and no query is
    /// outstanding.
    pub fn is_quiescent(&self) -> bool {
        self.sources.iter().all(|s| s.session.pending() == 0)
            && self
                .views
                .iter()
                .all(|v| v.status == ViewStatus::Active && v.maintainer.is_quiescent())
    }

    /// Whether one source's channel is settled: nothing pending on its
    /// session and every view over it healthy and quiescent.
    pub fn source_quiescent(&self, source: SourceId) -> bool {
        self.sources[source.0].session.pending() == 0
            && self.sources[source.0].views.iter().all(|v| {
                self.views[v.0].status == ViewStatus::Active
                    && self.views[v.0].maintainer.is_quiescent()
            })
    }

    /// Record the state(s) view `idx` reached during the event just
    /// processed, and publish the new materialized state to the serving
    /// registry if one is attached.
    fn record_states(&mut self, idx: usize) {
        if !self.record_history {
            // Still drain intermediates so maintainers don't accumulate.
            let _ = self.views[idx].maintainer.drain_intermediate_states();
        } else {
            let entry = &mut self.views[idx];
            let intermediates = entry.maintainer.drain_intermediate_states();
            if intermediates.is_empty() {
                entry.states.push(entry.maintainer.materialized().clone());
            } else {
                entry.states.extend(intermediates);
            }
        }
        if let Some(registry) = &self.publisher {
            let entry = &self.views[idx];
            // Quiescent ⇒ no compensation in flight for this view ⇒ the
            // state is V at a real source state (§3.1 history member) —
            // eligible to serve strong reads.
            let quiescent = entry.status == ViewStatus::Active && entry.maintainer.is_quiescent();
            registry.publish(idx, entry.maintainer.materialized(), quiescent);
        }
    }

    /// Remap maintainer-local outbound queries into `source`'s global id
    /// space.
    fn register_outbound(
        &mut self,
        source: SourceId,
        view_idx: usize,
        emitted: Vec<OutboundQuery>,
    ) -> Vec<OutboundQuery> {
        emitted
            .into_iter()
            .map(|q| OutboundQuery {
                id: self.sources[source.0].session.register(
                    view_idx,
                    q.id,
                    WireQuery::from_query(&q.query),
                ),
                query: q.query,
            })
            .collect()
    }

    /// A `W_up` event: route an update notification from `source` to
    /// every view over it. Returned queries carry session-global ids.
    ///
    /// # Errors
    /// [`WarehouseError::UnknownSource`]; maintainer failures.
    pub fn on_update(
        &mut self,
        source: SourceId,
        update: &Update,
    ) -> Result<Vec<OutboundQuery>, WarehouseError> {
        if source.0 >= self.sources.len() {
            return Err(WarehouseError::UnknownSource { id: source.0 });
        }
        let mut out = Vec::new();
        // Routing index, not a scan: registration order equals global
        // view-index order, so fan-out order is unchanged.
        for k in 0..self.sources[source.0].views.len() {
            let idx = self.sources[source.0].views[k].0;
            if self.views[idx].status == ViewStatus::Degraded {
                // Skip: a notification arriving before the resync answer
                // was *sent* before that answer (per-channel FIFO), so
                // its update executed before the resync query was
                // evaluated and is already inside the coming V(ss).
                continue;
            }
            let emitted = self.views[idx].maintainer.on_update(update)?;
            self.record_states(idx);
            out.extend(self.register_outbound(source, idx, emitted));
        }
        self.sources[source.0].notifications_seen += 1;
        self.log_event(source.0, || WalRecord::Update(update.clone()))?;
        Ok(out)
    }

    /// A `W_ans` event: deliver an answer from `source` to the view that
    /// issued the query. Demux is strictly by id — an unknown id yields
    /// [`CoreError::UnknownQuery`] without touching any maintainer.
    ///
    /// # Errors
    /// [`WarehouseError::UnknownSource`]; `UnknownQuery` for unrouted
    /// ids; maintainer failures.
    pub fn on_answer(
        &mut self,
        source: SourceId,
        id: QueryId,
        answer: SignedBag,
    ) -> Result<Vec<OutboundQuery>, WarehouseError> {
        if source.0 >= self.sources.len() {
            return Err(WarehouseError::UnknownSource { id: source.0 });
        }
        // Copied up front only when the answer will be logged: the
        // maintainer consumes the bag on the apply path below.
        let keep = self.logging_live().then(|| answer.clone());
        let route = self.sources[source.0].session.take(id)?;
        if route.kind == RouteKind::Resync {
            // The answer is a fresh V(ss): install it wholesale and
            // resume incremental maintenance (Alg. D.1's MV ← A).
            let entry = &mut self.views[route.view];
            entry.maintainer.reset_to(answer)?;
            entry.status = ViewStatus::Active;
            self.recovery.resyncs_completed += 1;
            self.record_states(route.view);
            if let Some(answer) = keep {
                self.log_event(source.0, move || WalRecord::Answer { id: id.0, answer })?;
            }
            return Ok(Vec::new());
        }
        let emitted = self.views[route.view]
            .maintainer
            .on_answer(route.local, answer)?;
        self.record_states(route.view);
        let out = self.register_outbound(source, route.view, emitted);
        if let Some(answer) = keep {
            self.log_event(source.0, move || WalRecord::Answer { id: id.0, answer })?;
        }
        Ok(out)
    }

    /// React to a reset of `source`'s channel: bump the session epoch
    /// (retiring every in-flight global id, so stale-epoch answers are
    /// rejected before touching any maintainer) and decide, per view, how
    /// to recover. `notifications_lost` distinguishes the two severities:
    ///
    /// * `false` — a connection reset with no data loss on our side
    ///   (e.g. the session layer retransmits over a new connection).
    ///   Pending queries of compensation-safe views are re-issued under
    ///   fresh ids (the §4 compensation argument holds no matter how
    ///   late a query is evaluated, because it stays in `UQS` and every
    ///   intervening update compensates it). A view is instead
    ///   **degraded** to a full resync when a query exhausted
    ///   `max_retries` or its algorithm says re-issue is unsafe
    ///   ([`eca_core::ViewMaintainer::reissue_safe`]).
    /// * `true` — a source restart: update notifications may have been
    ///   lost, so incremental state is unsalvageable and **every** view
    ///   over the source degrades to a resync.
    ///
    /// Degraded views skip updates until their resync answer arrives;
    /// the answer installs `V(ss)` wholesale (RV semantics, Alg. D.1) —
    /// sound because per-channel FIFO puts it after every notification
    /// whose update the evaluation saw. Resync queries are always
    /// re-issued on later resets (never capped): resyncing is already
    /// the recovery of last resort.
    ///
    /// Returns the query messages to send on the (fresh) channel.
    ///
    /// # Errors
    /// [`WarehouseError::UnknownSource`] for an unregistered handle.
    pub fn on_reset(
        &mut self,
        source: SourceId,
        notifications_lost: bool,
    ) -> Result<Vec<Message>, WarehouseError> {
        if source.0 >= self.sources.len() {
            return Err(WarehouseError::UnknownSource { id: source.0 });
        }
        let drained = self.sources[source.0].session.bump_epoch();

        // Pass 1: which views must fall back to a full resync?
        let mut degrade: BTreeSet<usize> = BTreeSet::new();
        if notifications_lost {
            degrade.extend(self.sources[source.0].views.iter().map(|v| v.0));
        }
        for pq in &drained {
            if pq.route.kind == RouteKind::Update
                && (!self.views[pq.route.view].maintainer.reissue_safe()
                    || pq.retries + 1 > self.max_retries)
            {
                degrade.insert(pq.route.view);
            }
        }

        // Pass 2: re-issue survivors (and in-flight resyncs) in the old
        // emission order; drop maintenance queries of degraded views.
        let mut out = Vec::new();
        let mut resyncing: BTreeSet<usize> = BTreeSet::new();
        for pq in drained {
            let (kind, view) = (pq.route.kind, pq.route.view);
            if kind == RouteKind::Update && degrade.contains(&view) {
                continue;
            }
            if kind == RouteKind::Resync {
                resyncing.insert(view);
            }
            let (id, query) = self.sources[source.0].session.reissue(pq);
            self.recovery.reissued += 1;
            out.push(Message::QueryRequest { id, query });
        }

        // Pass 3: newly degraded views get marked and sent one resync.
        for idx in degrade {
            self.views[idx].status = ViewStatus::Degraded;
            if resyncing.contains(&idx) {
                continue; // its resync from a prior reset was re-issued
            }
            let query = WireQuery::from_query(&self.views[idx].maintainer.view().as_query());
            let id = self.sources[source.0]
                .session
                .register_resync(idx, query.clone());
            self.recovery.resyncs_started += 1;
            out.push(Message::QueryRequest { id, query });
        }
        self.log_event(source.0, || WalRecord::EpochBump { notifications_lost })?;
        Ok(out)
    }

    /// Process one decoded inbound message from `source`, returning the
    /// encoded-ready query messages to send back.
    ///
    /// # Errors
    /// [`WarehouseError::UnexpectedMessage`] for [`Message::QueryRequest`]
    /// (queries never travel source → warehouse); routing and maintainer
    /// failures as in [`Warehouse::on_update`]/[`Warehouse::on_answer`].
    pub fn on_message(
        &mut self,
        source: SourceId,
        msg: Message,
    ) -> Result<Vec<Message>, WarehouseError> {
        let outbound = match msg {
            Message::UpdateNotification { update } => self.on_update(source, &update)?,
            Message::QueryAnswer { id, answer } => self.on_answer(source, id, answer)?,
            Message::QueryRequest { .. } => {
                return Err(WarehouseError::UnexpectedMessage {
                    kind: "QueryRequest",
                })
            }
            // Session-layer envelopes are consumed by `ReliableLink`;
            // one surfacing here means the channel is mis-stacked.
            Message::Frame { .. } | Message::Ack { .. } | Message::Hello { .. } => {
                return Err(WarehouseError::UnexpectedMessage {
                    kind: "session-layer",
                })
            }
            // Read-serving traffic belongs on `eca-serve` channels,
            // never on a maintenance channel.
            Message::ReadQuery { .. } | Message::ReadAnswer { .. } | Message::ReadError { .. } => {
                return Err(WarehouseError::UnexpectedMessage { kind: "read-layer" })
            }
        };
        Ok(outbound
            .into_iter()
            .map(|q| Message::QueryRequest {
                id: q.id,
                query: WireQuery::from_query(&q.query),
            })
            .collect())
    }

    /// Drain and process every message currently available on `source`'s
    /// transport, sending emitted queries back. Answer payloads are
    /// charged to the transport's meter (the paper's `B`). Returns the
    /// number of messages processed.
    ///
    /// # Errors
    /// Transport, routing and maintainer failures.
    pub fn pump(
        &mut self,
        source: SourceId,
        transport: &mut dyn Transport,
    ) -> Result<usize, WarehouseError> {
        let mut processed = 0;
        while let Some(msg) = transport.try_recv()? {
            if let Message::QueryAnswer { answer, .. } = &msg {
                transport.meter().record_answer_payload(
                    answer.encoded_len() as u64,
                    answer.pos_len() + answer.neg_len(),
                );
            }
            for reply in self.on_message(source, msg)? {
                transport.send(&reply)?;
            }
            processed += 1;
        }
        Ok(processed)
    }

    /// Pump `source`'s transport until `expected_notifications` update
    /// notifications have arrived and the channel is settled
    /// ([`Warehouse::source_quiescent`]), blocking at most `stall` for
    /// each message. Returns the number of messages processed.
    ///
    /// # Errors
    /// [`WarehouseError::SourceStalled`] when nothing arrives for a full
    /// `stall` while queries are outstanding (the fault-recovery signal —
    /// reset the channel and call [`Warehouse::on_reset`]);
    /// [`WarehouseError::SourceHungUp`] on disconnect before settling;
    /// transport, routing and maintainer failures.
    pub fn pump_until_settled(
        &mut self,
        source: SourceId,
        transport: &mut dyn Transport,
        expected_notifications: u64,
        stall: Duration,
    ) -> Result<usize, WarehouseError> {
        let mut notifications = 0u64;
        let mut processed = 0;
        while notifications < expected_notifications || !self.source_quiescent(source) {
            let msg = match transport.recv_timeout(stall) {
                Ok(Some(msg)) => msg,
                Ok(None) => return Err(WarehouseError::SourceHungUp { source: source.0 }),
                Err(TransportError::Timeout) => {
                    return Err(WarehouseError::SourceStalled { source: source.0 })
                }
                Err(e) => return Err(e.into()),
            };
            if matches!(msg, Message::UpdateNotification { .. }) {
                notifications += 1;
            }
            if let Message::QueryAnswer { answer, .. } = &msg {
                transport.meter().record_answer_payload(
                    answer.encoded_len() as u64,
                    answer.pos_len() + answer.neg_len(),
                );
            }
            for reply in self.on_message(source, msg)? {
                transport.send(&reply)?;
            }
            processed += 1;
        }
        Ok(processed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::algorithms::AlgorithmKind;
    use eca_core::{BaseDb, ViewDef};
    use eca_relational::{Predicate, Schema, Tuple};

    /// Two views sharing r2: V1 = π_W(r1 ⋈ r2), V2 = π_Y(r2 ⋈ r3).
    fn two_views() -> (ViewDef, ViewDef) {
        let v1 = ViewDef::new(
            "V1",
            vec![
                Schema::new("r1", &["W", "X"]),
                Schema::new("r2", &["X", "Y"]),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let v2 = ViewDef::new(
            "V2",
            vec![
                Schema::new("r2", &["X", "Y"]),
                Schema::new("r3", &["Y", "Z"]),
            ],
            Predicate::col_eq(1, 2),
            vec![1],
        )
        .unwrap();
        (v1, v2)
    }

    fn shared_db(v1: &ViewDef, v2: &ViewDef) -> BaseDb {
        let mut db = BaseDb::new();
        for v in [v1, v2] {
            for s in v.base() {
                db.register(s.relation());
            }
        }
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 7]));
        db.insert("r3", Tuple::ints([7, 9]));
        db
    }

    fn hub_over_one_source() -> (
        Warehouse,
        SourceId,
        ViewId,
        ViewId,
        ViewDef,
        ViewDef,
        BaseDb,
    ) {
        let (v1, v2) = two_views();
        let db = shared_db(&v1, &v2);
        let mut wh = Warehouse::new();
        let src = wh.add_source("src");
        let i1 = wh
            .add_view(
                src,
                AlgorithmKind::Eca
                    .instantiate(&v1, v1.eval(&db).unwrap())
                    .unwrap(),
            )
            .unwrap();
        let i2 = wh
            .add_view(
                src,
                AlgorithmKind::Eca
                    .instantiate(&v2, v2.eval(&db).unwrap())
                    .unwrap(),
            )
            .unwrap();
        (wh, src, i1, i2, v1, v2, db)
    }

    /// The MultiView fan-out scenario, now through the runtime: updates
    /// land adversarially (queries all answered on the final state).
    #[test]
    fn shared_relation_updates_fan_out() {
        let (mut wh, src, i1, i2, v1, v2, mut db) = hub_over_one_source();
        let updates = [
            Update::insert("r2", Tuple::ints([2, 8])), // involves both views
            Update::insert("r1", Tuple::ints([4, 2])), // only V1
            Update::insert("r3", Tuple::ints([8, 5])), // only V2
        ];
        let mut queries = Vec::new();
        for u in &updates {
            db.apply(u);
            queries.extend(wh.on_update(src, u).unwrap());
        }
        // r2 update fans out to both views; the others hit one each.
        assert_eq!(queries.len(), 4);

        for q in &queries {
            wh.on_answer(src, q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert!(wh.is_quiescent());
        assert_eq!(*wh.materialized(i1), v1.eval(&db).unwrap());
        assert_eq!(*wh.materialized(i2), v2.eval(&db).unwrap());
    }

    /// Self-maintenance through the session path: a locally-answered
    /// update produces no outbound query, registers nothing in the
    /// session's pending table, and still tracks the source exactly.
    #[test]
    fn eca_aux_session_path_emits_no_queries() {
        let view = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let mut db = BaseDb::for_view(&view);
        db.insert("r1", Tuple::ints([1, 2]));
        let mut wh = Warehouse::new();
        let src = wh.add_source("src");
        let id = wh
            .add_view(
                src,
                AlgorithmKind::EcaAux
                    .instantiate_with_base(&view, view.eval(&db).unwrap(), Some(db.clone()))
                    .unwrap(),
            )
            .unwrap();
        for u in [
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::delete("r1", Tuple::ints([1, 2])),
        ] {
            db.apply(&u);
            let queries = wh.on_update(src, &u).unwrap();
            assert!(queries.is_empty(), "{u:?} must be answered locally");
            assert_eq!(wh.session(src).pending(), 0);
            assert_eq!(*wh.materialized(id), view.eval(&db).unwrap());
        }
        assert!(wh.is_quiescent());
        let stats = wh.maintainer(id).selfmaint_stats().unwrap();
        assert_eq!(stats.local_updates, 3);
        assert_eq!(stats.remote_updates, 0);
    }

    #[test]
    fn global_ids_do_not_collide_across_views() {
        let (mut wh, src, ..) = hub_over_one_source();
        // Both maintainers locally use Q1 for their first query; the
        // session must hand out distinct global ids.
        let qs = wh
            .on_update(src, &Update::insert("r2", Tuple::ints([2, 3])))
            .unwrap();
        assert_eq!(qs.len(), 2);
        assert_ne!(qs[0].id, qs[1].id);
        assert_eq!(wh.session(src).pending(), 2);
        assert_eq!(wh.session(src).oldest_pending(), Some(qs[0].id));
    }

    /// Satellite regression: many views register queries round-robin on
    /// one session; answers come back out of registration order *across*
    /// views (each view's own answers stay FIFO, as the per-id routing
    /// contract requires). No answer may leak into another view.
    #[test]
    fn interleaved_registration_answers_out_of_order_across_views() {
        // Six distinct projections of r1(W,X) ⋈ r2(X,Y): a leaked answer
        // would corrupt a view with tuples of the wrong shape or value.
        let projections: [&[usize]; 6] = [&[0], &[1], &[2], &[3], &[0, 3], &[1, 2]];
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        db.insert("r1", Tuple::ints([1, 2]));
        db.insert("r2", Tuple::ints([2, 7]));

        let mut wh = Warehouse::new();
        let src = wh.add_source("src");
        let mut views = Vec::new();
        let mut ids = Vec::new();
        for (v, proj) in projections.iter().enumerate() {
            let view = ViewDef::new(
                format!("V{v}"),
                vec![
                    Schema::new("r1", &["W", "X"]),
                    Schema::new("r2", &["X", "Y"]),
                ],
                Predicate::col_eq(1, 2),
                proj.to_vec(),
            )
            .unwrap();
            let initial = view.eval(&db).unwrap();
            ids.push(
                wh.add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
                    .unwrap(),
            );
            views.push(view);
        }

        // Two updates, each fanning out to all six views: registration
        // is round-robin (v0..v5 for u1, then v0..v5 for u2).
        let u1 = Update::insert("r1", Tuple::ints([4, 2]));
        let u2 = Update::insert("r2", Tuple::ints([2, 9]));
        db.apply(&u1);
        let round1 = wh.on_update(src, &u1).unwrap();
        db.apply(&u2);
        let round2 = wh.on_update(src, &u2).unwrap();
        assert_eq!(round1.len(), 6);
        assert_eq!(round2.len(), 6);

        // Deliver answers scrambled across views — v3 finishes both its
        // queries before v0 sees its first — while each view's own two
        // answers stay in emission order (round1 before round2).
        let order: [(usize, usize); 12] = [
            (3, 0),
            (3, 1),
            (1, 0),
            (5, 0),
            (0, 0),
            (5, 1),
            (2, 0),
            (1, 1),
            (4, 0),
            (0, 1),
            (2, 1),
            (4, 1),
        ];
        let rounds = [&round1, &round2];
        for (view, round) in order {
            let q = &rounds[round][view];
            wh.on_answer(src, q.id, q.query.eval(&db).unwrap()).unwrap();
        }

        assert!(wh.is_quiescent());
        for (v, id) in ids.iter().enumerate() {
            assert_eq!(
                *wh.materialized(*id),
                views[v].eval(&db).unwrap(),
                "view V{v} corrupted by cross-view answer delivery"
            );
            // initial + (W_up + W_ans) × 2 updates.
            assert_eq!(wh.view_states(*id).len(), 5);
        }
    }

    #[test]
    fn unknown_answer_id_is_rejected_without_corrupting_uqs() {
        let (mut wh, src, i1, _, v1, _, mut db) = hub_over_one_source();
        let u = Update::insert("r2", Tuple::ints([2, 8]));
        db.apply(&u);
        let queries = wh.on_update(src, &u).unwrap();
        let pending_before = wh.session(src).pending();

        // A stray answer under an id that was never issued.
        let stray = QueryId(0xDEAD);
        assert!(matches!(
            wh.on_answer(src, stray, SignedBag::from_tuples([Tuple::ints([9])])),
            Err(WarehouseError::Core(CoreError::UnknownQuery { .. }))
        ));
        // Nothing was consumed or applied: the real answers still land
        // and the view still converges.
        assert_eq!(wh.session(src).pending(), pending_before);
        for q in &queries {
            wh.on_answer(src, q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert!(wh.is_quiescent());
        assert_eq!(*wh.materialized(i1), v1.eval(&db).unwrap());
    }

    #[test]
    fn views_route_only_to_their_source() {
        let (v1, v2) = two_views();
        let db = shared_db(&v1, &v2);
        let mut wh = Warehouse::new();
        let sa = wh.add_source("a");
        let sb = wh.add_source("b");
        let ia = wh
            .add_view(
                sa,
                AlgorithmKind::Eca
                    .instantiate(&v1, v1.eval(&db).unwrap())
                    .unwrap(),
            )
            .unwrap();
        let ib = wh
            .add_view(
                sb,
                AlgorithmKind::Eca
                    .instantiate(&v2, v2.eval(&db).unwrap())
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(wh.views_over(sa), vec![ia]);
        assert_eq!(wh.views_over(sb), vec![ib]);

        // An r2 update arriving on channel `a` must not reach V2, even
        // though V2 also mentions r2 (it mirrors a *different* site).
        let qs = wh
            .on_update(sa, &Update::insert("r2", Tuple::ints([2, 3])))
            .unwrap();
        assert_eq!(qs.len(), 1);
        assert_eq!(wh.session(sb).pending(), 0);
    }

    #[test]
    fn unknown_source_rejected() {
        let mut wh = Warehouse::new();
        assert!(matches!(
            wh.on_update(SourceId(3), &Update::insert("r", Tuple::ints([1]))),
            Err(WarehouseError::UnknownSource { id: 3 })
        ));
        let (v1, _) = two_views();
        let db = shared_db(&v1, &two_views().1);
        assert!(matches!(
            wh.add_view(
                SourceId(0),
                AlgorithmKind::Eca
                    .instantiate(&v1, v1.eval(&db).unwrap())
                    .unwrap()
            ),
            Err(WarehouseError::UnknownSource { .. })
        ));
    }

    #[test]
    fn query_request_from_source_is_a_protocol_error() {
        let (mut wh, src, ..) = hub_over_one_source();
        let (v1, _) = two_views();
        let msg = Message::QueryRequest {
            id: QueryId(1),
            query: WireQuery::from_query(&v1.as_query()),
        };
        assert!(matches!(
            wh.on_message(src, msg),
            Err(WarehouseError::UnexpectedMessage { .. })
        ));
    }

    /// A lossless reset mid-flight: the epoch bumps, stale answers are
    /// rejected, pending ECA queries are re-issued under fresh ids, and
    /// the view still converges.
    #[test]
    fn reset_reissues_pending_queries_and_rejects_stale_answers() {
        let (mut wh, src, i1, _, v1, _, mut db) = hub_over_one_source();
        let u = Update::insert("r2", Tuple::ints([2, 8]));
        db.apply(&u);
        let queries = wh.on_update(src, &u).unwrap();
        assert_eq!(wh.epoch(src), 0);

        let reissued = wh.on_reset(src, false).unwrap();
        assert_eq!(wh.epoch(src), 1);
        assert_eq!(reissued.len(), queries.len());
        assert_eq!(wh.recovery_stats().reissued, queries.len() as u64);
        assert_eq!(wh.recovery_stats().resyncs_started, 0);

        // An answer addressed to a dead-epoch id never touches UQS.
        assert!(matches!(
            wh.on_answer(src, queries[0].id, SignedBag::new()),
            Err(WarehouseError::Core(CoreError::UnknownQuery { .. }))
        ));

        // Answer the re-issued queries (same bodies, new ids).
        let catalog: Vec<_> = [("r1", ["W", "X"]), ("r2", ["X", "Y"]), ("r3", ["Y", "Z"])]
            .iter()
            .map(|(r, c)| Schema::new(*r, c))
            .collect();
        for msg in reissued {
            let Message::QueryRequest { id, query } = msg else {
                panic!("reset must re-emit QueryRequests");
            };
            let answer = query.to_query(&catalog).unwrap().eval(&db).unwrap();
            wh.on_answer(src, id, answer).unwrap();
        }
        assert!(wh.is_quiescent());
        assert_eq!(*wh.materialized(i1), v1.eval(&db).unwrap());
    }

    /// Exhausted retries degrade the view to a full resync: updates are
    /// skipped while degraded, the resync answer is installed wholesale,
    /// and maintenance resumes.
    #[test]
    fn retry_exhaustion_degrades_then_resync_restores() {
        let (mut wh, src, i1, i2, v1, _, mut db) = hub_over_one_source();
        wh.set_max_retries(0); // first reset already exceeds the cap
        let u = Update::insert("r2", Tuple::ints([2, 8]));
        db.apply(&u);
        let queries = wh.on_update(src, &u).unwrap();
        assert_eq!(queries.len(), 2);

        let out = wh.on_reset(src, false).unwrap();
        // Both views degrade; each gets exactly one resync query.
        assert_eq!(out.len(), 2);
        assert_eq!(wh.view_status(i1), ViewStatus::Degraded);
        assert_eq!(wh.view_status(i2), ViewStatus::Degraded);
        assert_eq!(wh.recovery_stats().resyncs_started, 2);
        assert!(!wh.is_quiescent());

        // Updates arriving while degraded are skipped (their effects are
        // inside the coming V(ss)).
        let u2 = Update::insert("r1", Tuple::ints([4, 2]));
        db.apply(&u2);
        assert!(wh.on_update(src, &u2).unwrap().is_empty());

        let catalog: Vec<_> = [("r1", ["W", "X"]), ("r2", ["X", "Y"]), ("r3", ["Y", "Z"])]
            .iter()
            .map(|(r, c)| Schema::new(*r, c))
            .collect();
        for msg in out {
            let Message::QueryRequest { id, query } = msg else {
                panic!("resyncs travel as QueryRequests");
            };
            let answer = query.to_query(&catalog).unwrap().eval(&db).unwrap();
            assert!(wh.on_answer(src, id, answer).unwrap().is_empty());
        }
        assert_eq!(wh.view_status(i1), ViewStatus::Active);
        assert_eq!(wh.recovery_stats().resyncs_completed, 2);
        assert!(wh.is_quiescent());
        assert_eq!(*wh.materialized(i1), v1.eval(&db).unwrap());

        // Incremental maintenance resumes normally after the resync.
        let u3 = Update::insert("r2", Tuple::ints([2, 9]));
        db.apply(&u3);
        let qs = wh.on_update(src, &u3).unwrap();
        assert_eq!(qs.len(), 2);
        for q in &qs {
            wh.on_answer(src, q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        assert_eq!(*wh.materialized(i1), v1.eval(&db).unwrap());
    }

    /// A source restart (possible lost notifications) degrades every view
    /// over that source even with zero queries in flight.
    #[test]
    fn lost_notifications_degrade_all_views() {
        let (mut wh, src, i1, i2, ..) = hub_over_one_source();
        assert!(wh.is_quiescent());
        let out = wh.on_reset(src, true).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(wh.view_status(i1), ViewStatus::Degraded);
        assert_eq!(wh.view_status(i2), ViewStatus::Degraded);
        assert_eq!(wh.recovery_stats().reissued, 0);
    }

    /// Basic's queries must not be re-evaluated at later source states
    /// (`reissue_safe() == false`): any reset degrades it straight to a
    /// resync instead of re-issuing.
    #[test]
    fn unsafe_reissue_goes_straight_to_resync() {
        let (v1, _) = two_views();
        let db = {
            let mut db = BaseDb::new();
            db.register("r1");
            db.register("r2");
            db.insert("r1", Tuple::ints([1, 2]));
            db
        };
        let mut wh = Warehouse::new();
        let src = wh.add_source("src");
        let id = wh
            .add_view(
                src,
                AlgorithmKind::Basic
                    .instantiate(&v1, v1.eval(&db).unwrap())
                    .unwrap(),
            )
            .unwrap();
        let mut db = db;
        let u = Update::insert("r2", Tuple::ints([2, 3]));
        db.apply(&u);
        let qs = wh.on_update(src, &u).unwrap();
        assert_eq!(qs.len(), 1);

        let out = wh.on_reset(src, false).unwrap();
        assert_eq!(wh.view_status(id), ViewStatus::Degraded);
        assert_eq!(wh.recovery_stats().reissued, 0, "Basic never re-issues");
        assert_eq!(out.len(), 1, "one resync query only");
    }

    /// A second reset while a resync is in flight re-issues the resync
    /// (uncapped) rather than stacking another one.
    #[test]
    fn resync_survives_repeated_resets() {
        let (mut wh, src, i1, ..) = hub_over_one_source();
        wh.on_reset(src, true).unwrap();
        let again = wh.on_reset(src, true).unwrap();
        assert_eq!(again.len(), 2, "one re-issued resync per view");
        assert_eq!(wh.recovery_stats().resyncs_started, 2, "not restarted");
        assert_eq!(wh.recovery_stats().reissued, 2, "resyncs re-issued");
        assert_eq!(wh.view_status(i1), ViewStatus::Degraded);
        assert_eq!(wh.epoch(src), 2);
    }

    #[test]
    fn state_histories_record_every_event() {
        let (mut wh, src, i1, i2, v1, v2, mut db) = hub_over_one_source();
        let u = Update::insert("r2", Tuple::ints([2, 8]));
        db.apply(&u);
        let queries = wh.on_update(src, &u).unwrap();
        for q in &queries {
            wh.on_answer(src, q.id, q.query.eval(&db).unwrap()).unwrap();
        }
        // initial + W_up + W_ans per view.
        assert_eq!(wh.view_states(i1).len(), 3);
        assert_eq!(wh.view_states(i2).len(), 3);
        assert_eq!(wh.view_states(i1).last().unwrap(), &v1.eval(&db).unwrap());
        assert_eq!(wh.view_states(i2).last().unwrap(), &v2.eval(&db).unwrap());
    }
}
