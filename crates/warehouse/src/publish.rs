//! Epoch publication: the maintenance → serving handoff.
//!
//! Maintenance (any of the three runtimes) *publishes* view snapshots
//! into an [`EpochRegistry`]; the read-serving layer (`eca-serve`)
//! *reads* them. Publication is copy-on-publish: each event's
//! materialized state is cloned once into an `Arc` and pushed onto a
//! bounded per-view ring, so readers never take a lock the maintainer
//! holds during query evaluation — heavy read traffic cannot block
//! maintenance, and vice versa. The registry is the §3 consistency
//! hierarchy made operational:
//!
//! * every ring entry is a *published epoch* — [`ReadLevel::Convergent`]
//!   may serve any of them;
//! * epochs are globally monotonic ([`EpochRegistry::latest`] never
//!   decreases), so a per-client floor turns ring reads into
//!   [`ReadLevel::Weak`] monotonic reads;
//! * a snapshot published while the view's maintainer was quiescent is
//!   by construction a member of the §3.1 state history (`V` evaluated
//!   at a real source state, never a mid-compensation intermediate) —
//!   the latest such snapshot serves [`ReadLevel::Strong`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use eca_relational::SignedBag;
use eca_wire::ReadLevel;

/// One served snapshot plus the epoch metadata a read answer carries.
#[derive(Clone, Debug)]
pub struct ReadSnapshot {
    /// Epoch of the served state.
    pub epoch: u64,
    /// Latest epoch published anywhere in the registry at serve time;
    /// `latest - epoch` is the answer's staleness in epochs.
    pub latest: u64,
    /// The rows, shared with the publisher (copy-on-publish).
    pub rows: Arc<SignedBag>,
}

struct ViewSlot {
    /// Published `(epoch, state)` pairs, oldest first. Never empty: the
    /// initial state is published at registration.
    ring: VecDeque<(u64, Arc<SignedBag>)>,
    /// The latest snapshot published while the maintainer was quiescent
    /// — the §3.1-history state strong reads serve.
    strong: (u64, Arc<SignedBag>),
}

/// Shared epoch store: one slot per view, a global epoch counter, and a
/// rotation cursor that spreads convergent reads over the ring (so the
/// bench's staleness distribution reflects the whole window, not just
/// the freshest entry).
pub struct EpochRegistry {
    epoch: AtomicU64,
    rotation: AtomicU64,
    ring_cap: usize,
    slots: Vec<Mutex<ViewSlot>>,
}

/// Lock helper mirroring the shard-lock discipline: publication state
/// stays readable even if a panicking thread poisoned a slot.
fn lock(slot: &Mutex<ViewSlot>) -> MutexGuard<'_, ViewSlot> {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl EpochRegistry {
    /// A registry over the given initial view states (published as
    /// epoch 0, quiesced — the initial state is `V(ss)` by definition).
    /// `ring_cap` bounds each view's published-epoch window (≥ 1).
    pub fn new(initial: impl IntoIterator<Item = SignedBag>, ring_cap: usize) -> EpochRegistry {
        let slots = initial
            .into_iter()
            .map(|state| {
                let rows = Arc::new(state);
                Mutex::new(ViewSlot {
                    ring: VecDeque::from([(0, Arc::clone(&rows))]),
                    strong: (0, rows),
                })
            })
            .collect();
        EpochRegistry {
            epoch: AtomicU64::new(0),
            rotation: AtomicU64::new(0),
            ring_cap: ring_cap.max(1),
            slots,
        }
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.slots.len()
    }

    /// The latest epoch published anywhere (globally monotonic).
    pub fn latest(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publish `state` as view `view`'s newest epoch. `quiescent` marks
    /// a state reached with no compensation in flight — exactly the
    /// §3.1-history membership strong reads rely on. Returns the epoch
    /// assigned.
    ///
    /// Called by the maintainer after every processed event; readers
    /// only ever contend for the brief ring push below, never for the
    /// maintainer's own locks.
    pub fn publish(&self, view: usize, state: &SignedBag, quiescent: bool) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        let rows = Arc::new(state.clone());
        let mut slot = lock(&self.slots[view]);
        slot.ring.push_back((epoch, Arc::clone(&rows)));
        if slot.ring.len() > self.ring_cap {
            slot.ring.pop_front();
        }
        if quiescent {
            slot.strong = (epoch, rows);
        }
        epoch
    }

    /// Serve one read at `level`, honouring the client's monotonicity
    /// floor `min_epoch` (the highest epoch that client has observed
    /// for this view — carried by the client so it survives
    /// reconnects). Returns `None` for an unknown view.
    pub fn read(&self, view: usize, level: ReadLevel, min_epoch: u64) -> Option<ReadSnapshot> {
        let slot = lock(self.slots.get(view)?);
        let (epoch, rows) = match level {
            // Any published epoch: rotate through the ring so the
            // convergent staleness distribution samples the window.
            ReadLevel::Convergent => {
                let i = self.rotation.fetch_add(1, Ordering::Relaxed) as usize % slot.ring.len();
                slot.ring[i].clone()
            }
            // Monotonic per client: the *oldest* published epoch at or
            // above the client's floor — maximal permissible staleness,
            // which is what distinguishes weak from strong in the
            // staleness histograms while keeping epochs non-regressing.
            ReadLevel::Weak => slot
                .ring
                .iter()
                .find(|(e, _)| *e >= min_epoch)
                .or_else(|| slot.ring.back())
                .cloned()?,
            // Latest quiesced epoch: a §3.1-history state, and
            // non-regressing because `strong` only moves forward.
            ReadLevel::Strong => slot.strong.clone(),
        };
        let latest = self.latest();
        Some(ReadSnapshot {
            epoch,
            latest,
            rows,
        })
    }

    /// The epoch of view `view`'s latest quiesced snapshot.
    pub fn strong_epoch(&self, view: usize) -> Option<u64> {
        Some(lock(self.slots.get(view)?).strong.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::Tuple;

    fn bag(n: i64) -> SignedBag {
        SignedBag::from_tuples([Tuple::ints([n])])
    }

    #[test]
    fn initial_state_serves_every_level_at_epoch_zero() {
        let reg = EpochRegistry::new([bag(1), bag(2)], 4);
        assert_eq!(reg.view_count(), 2);
        for level in ReadLevel::all() {
            let snap = reg.read(1, level, 0).unwrap();
            assert_eq!(snap.epoch, 0);
            assert_eq!(*snap.rows, bag(2));
        }
        assert!(reg.read(2, ReadLevel::Weak, 0).is_none());
    }

    #[test]
    fn strong_tracks_only_quiescent_publications() {
        let reg = EpochRegistry::new([bag(0)], 4);
        let e1 = reg.publish(0, &bag(1), false); // mid-compensation
        assert_eq!(reg.read(0, ReadLevel::Strong, 0).unwrap().epoch, 0);
        let e2 = reg.publish(0, &bag(2), true);
        assert!(e2 > e1);
        let snap = reg.read(0, ReadLevel::Strong, 0).unwrap();
        assert_eq!(snap.epoch, e2);
        assert_eq!(*snap.rows, bag(2));
        assert_eq!(reg.strong_epoch(0), Some(e2));
    }

    #[test]
    fn weak_honours_the_client_floor() {
        let reg = EpochRegistry::new([bag(0)], 8);
        let mut epochs = vec![0];
        for i in 1..=5 {
            epochs.push(reg.publish(0, &bag(i), true));
        }
        // Floor 0: the oldest ring entry (maximal staleness).
        assert_eq!(reg.read(0, ReadLevel::Weak, 0).unwrap().epoch, 0);
        // A floor mid-window: never served below it.
        let floor = epochs[3];
        let snap = reg.read(0, ReadLevel::Weak, floor).unwrap();
        assert!(snap.epoch >= floor);
        assert_eq!(*snap.rows, bag(3));
    }

    #[test]
    fn ring_stays_bounded_and_convergent_rotates() {
        let reg = EpochRegistry::new([bag(0)], 3);
        for i in 1..=10 {
            reg.publish(0, &bag(i), i % 2 == 0);
        }
        assert_eq!(reg.latest(), 10);
        // Convergent reads cycle through at most ring_cap distinct epochs.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..12 {
            seen.insert(reg.read(0, ReadLevel::Convergent, 0).unwrap().epoch);
        }
        assert!(seen.len() <= 3, "ring leaked: {seen:?}");
        assert!(seen.contains(&10));
        // Staleness metadata is consistent.
        let snap = reg.read(0, ReadLevel::Weak, 0).unwrap();
        assert!(snap.latest >= snap.epoch);
    }
}
