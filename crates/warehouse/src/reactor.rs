//! The reactor warehouse runtime: a fixed worker pool multiplexing many
//! sources over `Transport::poll()` readiness instead of one blocked OS
//! thread per source.
//!
//! `ConcurrentWarehouse` scales the paper's event loop (§3, Figure 1.1)
//! by parking one thread per source in `recv`. That design tops out at
//! tens of sources: each idle channel still costs a kernel thread, and
//! the scheduler — not maintenance work — becomes the bottleneck. The
//! reactor keeps the same sharded-by-source state (the `Shard` type is
//! shared with `concurrent.rs`) but drives *all* channels from a small
//! fixed pool:
//!
//! * **Poll loop.** Each source gets a `Station` wrapping its
//!   transport, a bounded inbox and per-station progress counters. A
//!   station's *home worker* (`station_index % workers`) is the only
//!   thread that polls its transport, so per-channel FIFO arrival order —
//!   the §3 correctness foundation — is preserved by construction: a
//!   single producer appends to the inbox in arrival order.
//! * **Shard pinning + work-stealing.** Event processing is decoupled
//!   from polling: any worker may *claim* a station (an atomic busy
//!   flag) and drain its inbox through the shard, so a worker whose home
//!   stations are idle steals processing from stations whose
//!   compensating-query answers have piled up. The claim flag keeps
//!   processing single-threaded per station, so events still apply in
//!   arrival order.
//! * **Backpressure.** Inboxes are bounded: once a station holds
//!   [`ReactorWarehouse::set_inbox_cap`] undrained events its home
//!   worker stops polling the transport, which (over a bounded
//!   [`eca_wire::SharedFifo`]) blocks the flooding source while every
//!   other station keeps making progress.
//! * **Parking.** Workers snapshot a shared [`eca_wire::PollWaker`]
//!   epoch before scanning; if a full scan makes no progress they sleep
//!   on the waker, which every transport notifies on arrival and every
//!   worker notifies after handing work to a peer. An idle reactor burns
//!   ~0 CPU instead of spinning.
//!
//! * **Live accept.** [`ReactorWarehouse::run_listener`] binds the pool
//!   to a TCP listener: sources dial in (see [`connect_source`]), open
//!   with a `Hello` handshake naming their [`SourceId`], and join the
//!   running reactor as poller-driven stations — no restart, and no
//!   thread per connection. Total OS threads stay at
//!   `workers + 1 accept loop + 1 poller` no matter how many sources
//!   connect.
//!
//! The serial [`Warehouse`] remains the golden-trace reference; the
//! reactor must (and is tested to) produce byte-identical meters and
//! state histories on every scenario, because per-source event order is
//! identical in all three runtimes.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use eca_relational::SignedBag;
use eca_wire::{
    read_frame_capped, write_frame, Message, PollWaker, Poller, Readiness, Role, TcpTransport,
    TransferMeter, Transport, TransportError,
};

use crate::concurrent::{lock, Shard, ShardSet};
use crate::{SourceId, ViewId, Warehouse, WarehouseError};

/// How long the accept loop waits for a connection's opening
/// [`Message::Hello`] frame before declaring the handshake dead. Dialers
/// send it immediately, so on any sane network this is generous.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Longest handshake frame the warehouse will accept. A real
/// [`Message::Hello`] encodes in under twenty bytes; the length prefix
/// of an unauthenticated connection must not be trusted with an
/// allocation, so anything larger marks the peer as a stray.
const HELLO_MAX_LEN: usize = 256;

/// Dial a [`ReactorWarehouse::run_listener`] endpoint and identify as
/// `source`. The `Hello { epoch: source.0 }` handshake frame is written
/// *outside* the metered protocol — it is transport plumbing, not §6
/// traffic, so source-side meters stay comparable with the in-memory
/// runtimes frame for frame. Returns the metered source-side transport,
/// ready for notifications and compensating-query answers.
///
/// # Errors
/// Propagates connect and handshake-write failures.
pub fn connect_source(
    addr: SocketAddr,
    source: SourceId,
    meter: TransferMeter,
) -> std::io::Result<TcpTransport> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(
        &mut stream,
        &Message::Hello {
            epoch: source.0 as u64,
        },
    )
    .map_err(|e| match e {
        TransportError::Io(io) => io,
        other => std::io::Error::new(std::io::ErrorKind::InvalidData, other),
    })?;
    TcpTransport::new(stream, Role::Source, meter)
}

/// What a home-worker probe of a station observed; governs whether the
/// scan epoch may be recorded (see `Station::scanned`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Probe {
    /// Messages moved: drained into the inbox or applied inline.
    Progress,
    /// The transport was actually probed and found idle — safe to skip
    /// this station until its waker epoch moves again.
    Idle,
    /// The probe never reached the transport (inbox full, e.g. while
    /// another worker holds the claim pre-drain): buffered input may
    /// remain whose arrival notifications were already consumed, so the
    /// station must be rescanned even without a fresh notification.
    Skipped,
}

/// Per-source channel state owned by the reactor run loop.
struct Station {
    /// Index into `ReactorWarehouse::shards` (== `SourceId.0`).
    source: usize,
    /// Only the home worker touches the transport (single poller ⇒
    /// single inbox producer ⇒ FIFO preserved), but replies are sent by
    /// whichever worker holds the processing claim, so it sits behind a
    /// lock.
    transport: Mutex<Box<dyn Transport + Send>>,
    /// Arrival-ordered events waiting for a worker; bounded by
    /// `inbox_cap`.
    inbox: Mutex<VecDeque<Message>>,
    /// Mirror of `inbox.len()`, written only while holding the inbox
    /// lock. Lets the hot scan paths skip stations with nothing queued
    /// without taking the lock (a stale read just defers one scan).
    queued: AtomicUsize,
    /// Processing claim: at most one worker drains the inbox at a time.
    busy: AtomicBool,
    /// Update notifications seen so far vs the number the script will
    /// send; settling requires all of them plus shard quiescence.
    notifications: AtomicU64,
    expected: u64,
    /// The transport reported `Readiness::Closed`.
    closed: AtomicBool,
    /// Settled: all notifications arrived, inbox drained, shard
    /// quiescent. Terminal — sources only answer queries we asked.
    done: AtomicBool,
    /// Per-station arrival counter ([`PollWaker::chained`] to the run's
    /// shared waker): the transport notifies it on every delivery, so
    /// the home worker knows whether this channel has spoken since its
    /// last probe.
    waker: Arc<PollWaker>,
    /// `waker` epoch as of the last probe that found the transport
    /// *idle*. Home scans skip the station (no transport lock, no read
    /// syscall) while the epoch still matches — turning an O(stations)
    /// re-probe per wake-up into a probe of only the channels that
    /// fired. `u64::MAX` forces the first probe.
    scanned: AtomicU64,
}

impl Station {
    fn new(
        source: SourceId,
        transport: Box<dyn Transport + Send>,
        expected: u64,
        waker: Arc<PollWaker>,
    ) -> Station {
        Station {
            source: source.0,
            transport: Mutex::new(transport),
            inbox: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(0),
            busy: AtomicBool::new(false),
            notifications: AtomicU64::new(0),
            expected,
            closed: AtomicBool::new(false),
            done: AtomicBool::new(false),
            waker,
            scanned: AtomicU64::new(u64::MAX),
        }
    }
}

/// Shared state for one [`ReactorWarehouse::run`] or
/// [`ReactorWarehouse::run_listener`] call.
///
/// Station slots are [`OnceLock`]s so the listener thread can register a
/// freshly accepted connection *while the worker pool is already
/// running*: workers skip unfilled slots, and a `set` + waker
/// notification makes the new station visible to its home worker on the
/// next scan. [`ReactorWarehouse::run`] fills every slot up front, so
/// the two entry points share the whole loop unchanged.
struct RunState {
    stations: Vec<OnceLock<Station>>,
    /// Sources that were settled before any connection arrived (nothing
    /// expected, shard quiescent). Their slots may legitimately stay
    /// empty forever, so stall detection skips them.
    born_settled: Vec<bool>,
    /// Notified by transports on arrival and by workers when they
    /// enqueue stealable work, finish a station or record an error.
    waker: Arc<PollWaker>,
    /// Stations not yet done; `run` returns when this reaches zero.
    remaining: AtomicUsize,
    /// Messages processed across all stations (the `run` return value).
    processed: AtomicU64,
    /// First error wins; everyone else unwinds.
    error: Mutex<Option<WarehouseError>>,
    /// Instant of the last global progress, for stall detection.
    last_progress: Mutex<Instant>,
    /// Live-accept mode: the listener's local address. A finishing
    /// worker pokes it with a throwaway connection so the accept loop
    /// wakes up and observes `accept_done`.
    listener_addr: Option<SocketAddr>,
    /// The run is over; the accept loop must exit instead of admitting.
    accept_done: AtomicBool,
}

impl RunState {
    fn fail(&self, err: WarehouseError) {
        let mut slot = self
            .error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(err);
        }
        drop(slot);
        self.waker.notify();
    }

    fn failed(&self) -> bool {
        self.error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
    }

    fn touch_progress(&self) {
        *self
            .last_progress
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Instant::now();
    }

    fn since_progress(&self) -> Duration {
        self.last_progress
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .elapsed()
    }

    /// Unblock the accept loop at end of run (first caller wins). The
    /// listener thread spends its life parked in `accept`; a local
    /// throwaway connection is the portable way to kick it loose.
    fn finish_listener(&self) {
        let Some(addr) = self.listener_addr else {
            return;
        };
        if !self.accept_done.swap(true, Ordering::AcqRel) {
            let _ = TcpStream::connect(addr);
        }
    }
}

/// A warehouse driven by a fixed pool of reactor workers multiplexing
/// every source channel, instead of one pump thread per source.
///
/// Build one with [`Warehouse::into_reactor`], drive it with
/// [`ReactorWarehouse::run`], then read results through the same
/// accessors the other runtimes offer.
pub struct ReactorWarehouse {
    names: Vec<String>,
    shards: Vec<Mutex<Shard>>,
    /// Global [`ViewId`] → (shard, shard-local index).
    view_index: Vec<(usize, usize)>,
    workers: usize,
    inbox_cap: usize,
    stall_timeout: Duration,
}

impl Warehouse {
    /// Reshape this warehouse into the reactor runtime with a fixed
    /// worker pool. Like [`Warehouse::into_concurrent`], this must
    /// happen before any traffic.
    ///
    /// # Panics
    /// If `workers == 0` or any session has outstanding queries.
    pub fn into_reactor(self, workers: usize) -> ReactorWarehouse {
        assert!(workers > 0, "reactor needs at least one worker");
        let ShardSet {
            names,
            shards,
            view_index,
        } = self.into_shards();
        ReactorWarehouse {
            names,
            shards,
            view_index,
            workers,
            inbox_cap: 64,
            stall_timeout: Duration::from_secs(30),
        }
    }
}

impl ReactorWarehouse {
    /// Number of source shards.
    pub fn source_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of pooled workers [`ReactorWarehouse::run`] spawns.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The name a source was registered under.
    pub fn source_name(&self, source: SourceId) -> &str {
        &self.names[source.0]
    }

    /// Bound each station's inbox (default 64 events). Once full, the
    /// home worker stops draining that transport until a worker catches
    /// up — over a bounded link this blocks the flooding source without
    /// touching anyone else.
    ///
    /// # Panics
    /// If `cap == 0` (a zero-slot inbox could never accept an event).
    pub fn set_inbox_cap(&mut self, cap: usize) {
        assert!(cap > 0, "inbox capacity must be at least 1");
        self.inbox_cap = cap;
    }

    /// Change the stall timeout (default 30 s): the longest stretch with
    /// no progress on *any* station the reactor tolerates while
    /// unsettled before giving up with [`WarehouseError::SourceStalled`].
    pub fn set_stall_timeout(&mut self, timeout: Duration) {
        self.stall_timeout = timeout;
    }

    /// The current materialized state of a view (cloned out of its
    /// shard).
    pub fn materialized(&self, view: ViewId) -> SignedBag {
        let (shard, local) = self.view_index[view.0];
        lock(&self.shards[shard]).views[local]
            .maintainer
            .materialized()
            .clone()
    }

    /// Every `MV` state a view passed through, starting with its initial
    /// state — the warehouse half of the §3.1 consistency check.
    pub fn view_states(&self, view: ViewId) -> Vec<SignedBag> {
        let (shard, local) = self.view_index[view.0];
        lock(&self.shards[shard]).views[local].states.clone()
    }

    /// Whether every shard is quiescent.
    pub fn is_quiescent(&self) -> bool {
        self.shards.iter().all(|s| lock(s).is_quiescent())
    }

    /// Drive every source to completion on the worker pool. `endpoints`
    /// pairs each source with its transport and the number of update
    /// notifications to expect, exactly like
    /// [`crate::ConcurrentWarehouse::pump_all`]. Returns the total
    /// number of messages processed.
    ///
    /// Answer payloads are **not** charged to the transport meter here,
    /// matching `pump`: concurrent deployments meter each link once, on
    /// the source side.
    ///
    /// # Errors
    /// [`WarehouseError::WakerRejected`] if any transport refuses the
    /// shared poll waker — the reactor's parking discipline requires
    /// arrival notifications from every channel, so registration fails
    /// loudly instead of silently degrading to a poll interval;
    /// [`WarehouseError::SourceHungUp`] if a peer disconnects before its
    /// station settles; [`WarehouseError::SourceStalled`] if no station
    /// makes progress for a full stall timeout while any is unsettled;
    /// transport, routing and maintainer failures. First error wins and
    /// stops the pool.
    pub fn run(
        &self,
        endpoints: Vec<(SourceId, Box<dyn Transport + Send>, u64)>,
    ) -> Result<u64, WarehouseError> {
        let waker = PollWaker::new();
        let mut stations = Vec::with_capacity(endpoints.len());
        for (source, mut transport, expected) in endpoints {
            let st_waker = PollWaker::chained(Arc::clone(&waker));
            if !transport.set_waker(Arc::clone(&st_waker)) {
                return Err(WarehouseError::WakerRejected { source: source.0 });
            }
            stations.push(Station::new(source, transport, expected, st_waker));
        }
        // A station expecting nothing from an already-quiescent shard is
        // born settled; count the rest.
        let mut remaining = 0usize;
        for st in &stations {
            if st.expected == 0 && lock(&self.shards[st.source]).is_quiescent() {
                st.done.store(true, Ordering::Release);
            } else {
                remaining += 1;
            }
        }
        let born_settled = vec![false; stations.len()];
        let state = RunState {
            stations: stations
                .into_iter()
                .map(|st| {
                    let slot = OnceLock::new();
                    let _ = slot.set(st);
                    slot
                })
                .collect(),
            born_settled,
            waker,
            remaining: AtomicUsize::new(remaining),
            processed: AtomicU64::new(0),
            error: Mutex::new(None),
            last_progress: Mutex::new(Instant::now()),
            listener_addr: None,
            accept_done: AtomicBool::new(false),
        };
        let workers = self.workers.min(state.stations.len()).max(1);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let state = &state;
                scope.spawn(move || self.worker_loop(state, w, workers));
            }
        });
        Self::into_outcome(state)
    }

    /// Serve sources that dial in over TCP while the pool is running,
    /// instead of receiving pre-built transports. `listener` should
    /// already be bound; each accepted connection must open with a
    /// [`Message::Hello`] handshake frame carrying its [`SourceId`]
    /// (dial with [`connect_source`]), after which the stream joins the
    /// reactor as a poller-driven station pinned to its home worker —
    /// registration happens live, no restart, no thread per connection.
    /// `expected[s]` is the number of update notifications source `s`
    /// will send, exactly as in [`ReactorWarehouse::run`].
    ///
    /// Thread accounting: `workers.min(sources)` pooled workers plus
    /// this one accept loop, regardless of how many sources connect —
    /// the readiness multiplexing lives in `poller`'s single thread.
    ///
    /// Sources that expect no traffic over an already-quiescent shard
    /// need not connect at all; everyone else must connect and settle
    /// within the stall timeout.
    ///
    /// # Panics
    /// If `expected.len()` differs from the number of registered
    /// sources.
    ///
    /// # Errors
    /// Everything [`ReactorWarehouse::run`] raises, plus
    /// [`WarehouseError::UnknownSource`] for a Hello naming no
    /// registered source and [`WarehouseError::UnexpectedMessage`] for
    /// a duplicate connection. Connections that never complete a valid
    /// `Hello` (port scans, garbage, handshake timeouts) are dropped
    /// silently — only a peer that authenticated as a source can fail
    /// the run.
    pub fn run_listener(
        &self,
        listener: TcpListener,
        poller: &Arc<Poller>,
        expected: &[u64],
    ) -> Result<u64, WarehouseError> {
        let n = self.shards.len();
        assert_eq!(
            expected.len(),
            n,
            "expected-notification counts must cover every source"
        );
        let mut born_settled = vec![false; n];
        let mut remaining = 0usize;
        for s in 0..n {
            if expected[s] == 0 && lock(&self.shards[s]).is_quiescent() {
                born_settled[s] = true;
            } else {
                remaining += 1;
            }
        }
        let addr = listener
            .local_addr()
            .map_err(|e| WarehouseError::Transport(TransportError::Io(e)))?;
        let state = RunState {
            stations: (0..n).map(|_| OnceLock::new()).collect(),
            born_settled,
            waker: PollWaker::new(),
            remaining: AtomicUsize::new(remaining),
            processed: AtomicU64::new(0),
            error: Mutex::new(None),
            last_progress: Mutex::new(Instant::now()),
            listener_addr: Some(addr),
            accept_done: AtomicBool::new(false),
        };
        if remaining == 0 {
            return Ok(0);
        }
        let workers = self.workers.min(n).max(1);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let state = &state;
                scope.spawn(move || self.worker_loop(state, w, workers));
            }
            let (state, listener) = (&state, &listener);
            scope.spawn(move || self.accept_loop(state, listener, poller, expected));
        });
        Self::into_outcome(state)
    }

    /// Extract the run result once every pool thread has joined.
    fn into_outcome(state: RunState) -> Result<u64, WarehouseError> {
        if let Some(err) = state
            .error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            return Err(err);
        }
        Ok(state.processed.load(Ordering::Acquire))
    }

    /// The listener thread body: accept, handshake, register. Runs until
    /// a finishing worker flips `accept_done` (and pokes us loose with a
    /// throwaway connection) or an admitted source is rejected. Stray
    /// connections that fail the handshake are dropped, not fatal.
    fn accept_loop(
        &self,
        state: &RunState,
        listener: &TcpListener,
        poller: &Arc<Poller>,
        expected: &[u64],
    ) {
        loop {
            if state.accept_done.load(Ordering::Acquire) || state.failed() {
                return;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    state.fail(WarehouseError::Transport(TransportError::Io(e)));
                    return;
                }
            };
            if state.accept_done.load(Ordering::Acquire) {
                return; // the shutdown poke, not a source
            }
            if let Err(err) = self.admit(state, stream, poller, expected) {
                state.fail(err);
                return;
            }
        }
    }

    /// Blocking, timeout- and length-capped read of the opening
    /// [`Message::Hello`] on a freshly accepted connection. `None`
    /// means the peer is not a source speaking our protocol — it hung
    /// up, timed out, or sent garbage (including a length prefix over
    /// [`HELLO_MAX_LEN`], which is rejected *before* any allocation
    /// could trust it) — and the caller should drop the connection.
    fn handshake(stream: &TcpStream) -> Option<u64> {
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).ok()?;
        let mut reader = stream;
        let frame = read_frame_capped(&mut reader, HELLO_MAX_LEN).ok()??;
        match Message::decode(frame) {
            Ok(Message::Hello { epoch }) => Some(epoch),
            _ => None,
        }
    }

    /// Handshake one accepted connection and register its station. The
    /// Hello frame is read *blocking* with a short timeout — the station
    /// only goes non-blocking (and onto the poller) once we know which
    /// source it is.
    ///
    /// A connection that fails the handshake (EOF, timeout, garbage
    /// bytes, an oversized or non-`Hello` frame) is a stray — a port
    /// scan, a health probe — and is dropped without disturbing the
    /// run: `Ok(())`, no station registered, keep accepting. Errors are
    /// reserved for connections that *complete* the handshake and then
    /// prove semantically wrong (unknown source id, duplicate
    /// connection) and for warehouse-local failures.
    fn admit(
        &self,
        state: &RunState,
        stream: TcpStream,
        poller: &Arc<Poller>,
        expected: &[u64],
    ) -> Result<(), WarehouseError> {
        let Some(epoch) = Self::handshake(&stream) else {
            return Ok(());
        };
        let source = epoch as usize;
        if source >= state.stations.len() {
            return Err(WarehouseError::UnknownSource { id: source });
        }
        stream
            .set_read_timeout(None)
            .map_err(|e| WarehouseError::Transport(TransportError::Io(e)))?;
        // The warehouse-side meter is private to this station; §6
        // accounting reads the source-side meters, matching `run`.
        let mut transport = TcpTransport::new(stream, Role::Warehouse, TransferMeter::new())
            .map_err(|e| WarehouseError::Transport(TransportError::Io(e)))?;
        transport.attach_poller(Arc::clone(poller));
        let st_waker = PollWaker::chained(Arc::clone(&state.waker));
        if !transport.set_waker(Arc::clone(&st_waker)) {
            return Err(WarehouseError::WakerRejected { source });
        }
        let st = Station::new(
            SourceId(source),
            Box::new(transport),
            expected[source],
            st_waker,
        );
        if state.born_settled[source] {
            // Settled before it connected: keep the link open for a
            // clean shutdown, but there is nothing to wait for.
            st.done.store(true, Ordering::Release);
        }
        if state.stations[source].set(st).is_err() {
            return Err(WarehouseError::UnexpectedMessage {
                kind: "duplicate Hello",
            });
        }
        // A connection is progress (sources may trickle in for a while)
        // and the new station's home worker may be parked.
        state.touch_progress();
        state.waker.notify();
        Ok(())
    }

    /// One pooled worker: poll home stations' transports into inboxes,
    /// then process any claimable station's inbox (home first, then
    /// steal), parking on the shared waker when a full scan finds
    /// nothing. On the way out, kick the accept loop (live-accept runs
    /// only) so the listener thread joins too.
    fn worker_loop(&self, state: &RunState, worker: usize, workers: usize) {
        self.worker_duty(state, worker, workers);
        state.finish_listener();
    }

    fn worker_duty(&self, state: &RunState, worker: usize, workers: usize) {
        let n = state.stations.len();
        // Reused across iterations: transport drain batches, inbox
        // processing batches and reply staging, so the steady state
        // allocates nothing.
        let mut scratch = Vec::new();
        let mut batch = Vec::new();
        let mut replies = Vec::new();
        loop {
            if state.remaining.load(Ordering::Acquire) == 0 || state.failed() {
                return;
            }
            // Snapshot before scanning: an arrival that lands mid-scan
            // bumps the epoch, so the post-scan wait returns instantly.
            let seen = state.waker.epoch();
            let mut progress = false;

            // 1. Home duty: drain transports into inboxes (sole poller
            //    per station keeps the inbox arrival-ordered). Unfilled
            //    slots are sources that have not dialed in yet.
            let mut home = worker;
            while home < n {
                if let Some(st) = state.stations[home].get() {
                    let st_epoch = st.waker.epoch();
                    if st.scanned.load(Ordering::Acquire) != st_epoch {
                        match self.poll_station(state, st, &mut scratch, &mut replies) {
                            Ok(probe) => {
                                progress |= probe == Probe::Progress;
                                // Record the pre-probe epoch only once
                                // the probe actually ran and proved the
                                // channel idle. A Skipped probe (inbox
                                // full) may leave messages buffered in
                                // the transport whose notifications
                                // were already consumed — draining the
                                // inbox pokes only the pool waker, so
                                // marking Skipped as scanned would park
                                // the station forever. A closed station
                                // must keep re-running hangup detection.
                                if probe == Probe::Idle && !st.closed.load(Ordering::Acquire) {
                                    st.scanned.store(st_epoch, Ordering::Release);
                                }
                            }
                            Err(err) => {
                                state.fail(err);
                                return;
                            }
                        }
                    }
                }
                home += workers;
            }

            // 2. Processing: claim stations and apply their events.
            //    Start at our own home block so distinct workers begin
            //    at distinct stations and only collide when stealing.
            for off in 0..n {
                let idx = (worker + off) % n;
                if let Some(st) = state.stations[idx].get() {
                    match self.process_station(state, st, &mut batch, &mut replies) {
                        Ok(p) => progress |= p,
                        Err(err) => {
                            state.fail(err);
                            return;
                        }
                    }
                }
                if state.failed() {
                    return;
                }
            }

            if progress {
                state.touch_progress();
                continue;
            }
            // Nothing moved: park. Bounded waits keep stall detection
            // live even if a notification is lost; every transport
            // accepted our waker (run rejects otherwise), so there is
            // no poll-interval fallback to fall back to.
            let idle = state.since_progress();
            if idle >= self.stall_timeout {
                // An empty slot is a source that never connected; a
                // filled one reports its own source index (run() slots
                // are endpoint-ordered, not source-ordered).
                let stalled = (0..n).find_map(|i| match state.stations[i].get() {
                    None if !state.born_settled[i] => Some(i),
                    Some(st) if !st.done.load(Ordering::Acquire) => Some(st.source),
                    _ => None,
                });
                if let Some(source) = stalled {
                    state.fail(WarehouseError::SourceStalled { source });
                } else {
                    state.waker.notify();
                }
                return;
            }
            let cap = self.stall_timeout - idle;
            state.waker.wait(seen, cap.min(Duration::from_millis(50)));
        }
    }

    /// Home-worker duty for one station: pull arrived messages off the
    /// transport and get them processed, observe hangups, and wake
    /// processors when stealable work lands. `scratch` is a caller-owned
    /// batch buffer (drained empty on return). The returned [`Probe`]
    /// tells the scan loop whether the transport was actually probed —
    /// only a probe that ran and found the channel idle licenses
    /// skipping the station until its waker epoch moves.
    ///
    /// Fast path: if the station's claim is free, the home worker takes
    /// it and applies each drained batch *inline*, skipping the inbox
    /// hand-off entirely — in the uncontended steady state an event goes
    /// transport → scratch → shard with no queue in between. The inbox
    /// only carries events when another worker holds the claim (it will
    /// drain them) or work is left over for stealing.
    fn poll_station(
        &self,
        state: &RunState,
        st: &Station,
        scratch: &mut Vec<Message>,
        replies: &mut Vec<Message>,
    ) -> Result<Probe, WarehouseError> {
        if st.done.load(Ordering::Acquire) {
            return Ok(Probe::Idle);
        }
        let mut progress = false;
        let mut probed_idle = false;
        let claimed = !st.busy.swap(true, Ordering::AcqRel);
        let inline = claimed && st.queued.load(Ordering::Acquire) == 0;
        if claimed && !inline {
            // Claimed but the inbox has backlog: drain it first so
            // inline processing cannot reorder events.
            st.busy.store(false, Ordering::Release);
        }
        // The per-scan quantum. Inline gets a full inbox worth (events
        // are consumed, not queued — memory stays bounded either way);
        // the hand-off path gets whatever inbox room is left, which is
        // what backpressures a flooding source. Bounding the inline
        // quantum keeps one hot station from starving its home worker's
        // other stations.
        let mut room = if inline {
            self.inbox_cap
        } else {
            self.inbox_cap
                .saturating_sub(st.queued.load(Ordering::Acquire))
        };
        if room > 0 {
            let mut transport = st
                .transport
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if room == 0 {
                    // Quantum exhausted. Hand-off path: backpressure —
                    // the peer's bounded link fills next and blocks the
                    // flooding source. Inline path: yield; the next scan
                    // resumes here.
                    break;
                }
                let taken = transport.drain_into(scratch, room)?;
                if taken > 0 {
                    progress = true;
                    room -= taken;
                    if inline {
                        // Claim held and the transport lock is ours:
                        // apply straight to the shard, replies go out
                        // without ever touching the inbox. Errors are
                        // fatal to the whole run, so the claim leaking
                        // on `?` is moot.
                        self.apply_batch(state, st, scratch, replies)?;
                        for reply in replies.drain(..) {
                            transport.send(&reply)?;
                        }
                    } else {
                        let mut inbox = st
                            .inbox
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        inbox.extend(scratch.drain(..));
                        st.queued.store(inbox.len(), Ordering::Release);
                    }
                    continue;
                }
                match transport.poll()? {
                    Readiness::Ready => continue, // arrived between drain and poll
                    Readiness::Idle => {
                        probed_idle = true;
                        break;
                    }
                    Readiness::Closed => {
                        st.closed.store(true, Ordering::Release);
                        break;
                    }
                }
            }
        }
        if inline {
            if progress {
                self.try_settle(state, st);
            }
            st.busy.store(false, Ordering::Release);
        }
        if progress && !inline {
            // New inbox work is stealable: wake parked workers.
            state.waker.notify();
        }
        // A closed, drained, unclaimed station that never settled will
        // never settle: nothing more can arrive. Declare the hangup here
        // (on the home worker) so it is raised exactly once.
        if st.closed.load(Ordering::Acquire)
            && !st.done.load(Ordering::Acquire)
            && st
                .inbox
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_empty()
            && !st.busy.load(Ordering::Acquire)
        {
            // Re-check settledness under the claim so a processor that
            // finished between our loads cannot race us into a spurious
            // hangup error.
            if !st.busy.swap(true, Ordering::AcqRel) {
                let settled = st.done.load(Ordering::Acquire) || self.try_settle(state, st);
                st.busy.store(false, Ordering::Release);
                if !settled
                    && st
                        .inbox
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .is_empty()
                {
                    return Err(WarehouseError::SourceHungUp { source: st.source });
                }
            }
        }
        Ok(if progress {
            Probe::Progress
        } else if probed_idle {
            Probe::Idle
        } else {
            Probe::Skipped
        })
    }

    /// Try to claim a station and drain its inbox through its shard.
    /// Returns whether any event was processed. `batch` is a
    /// caller-owned buffer (drained empty on return).
    fn process_station(
        &self,
        state: &RunState,
        st: &Station,
        batch: &mut Vec<Message>,
        replies: &mut Vec<Message>,
    ) -> Result<bool, WarehouseError> {
        if st.done.load(Ordering::Acquire) || st.queued.load(Ordering::Acquire) == 0 {
            return Ok(false);
        }
        if st.busy.swap(true, Ordering::AcqRel) {
            return Ok(false); // another worker holds the claim
        }
        let result = self.drain_claimed(state, st, batch, replies);
        st.busy.store(false, Ordering::Release);
        result
    }

    /// Apply a batch of events (caller holds the station's claim) to the
    /// station's shard, in batch (== arrival) order. Compensating
    /// queries land in `replies` for the caller to send — still in
    /// generation order, because the claim keeps processing
    /// single-threaded per station.
    fn apply_batch(
        &self,
        state: &RunState,
        st: &Station,
        batch: &mut Vec<Message>,
        replies: &mut Vec<Message>,
    ) -> Result<(), WarehouseError> {
        let shard = &self.shards[st.source];
        let handled = batch.len() as u64;
        let mut notifications = 0u64;
        for msg in batch.drain(..) {
            match msg {
                Message::UpdateNotification { update } => {
                    notifications += 1;
                    replies.extend(lock(shard).on_update(&update)?);
                }
                Message::QueryAnswer { id, answer } => {
                    replies.extend(lock(shard).on_answer(id, answer)?);
                }
                Message::QueryRequest { .. } => {
                    return Err(WarehouseError::UnexpectedMessage {
                        kind: "QueryRequest",
                    })
                }
                Message::Frame { .. } | Message::Ack { .. } | Message::Hello { .. } => {
                    return Err(WarehouseError::UnexpectedMessage {
                        kind: "session-layer",
                    })
                }
                // Read-serving traffic belongs on `eca-serve` channels,
                // never on a maintenance channel.
                Message::ReadQuery { .. }
                | Message::ReadAnswer { .. }
                | Message::ReadError { .. } => {
                    return Err(WarehouseError::UnexpectedMessage { kind: "read-layer" })
                }
            }
        }
        if notifications > 0 {
            st.notifications.fetch_add(notifications, Ordering::AcqRel);
        }
        state.processed.fetch_add(handled, Ordering::AcqRel);
        Ok(())
    }

    /// Drain the inbox of a station we hold the claim on. The shard work
    /// happens with the transport unlocked (so the home worker can keep
    /// polling this station's transport meanwhile); replies then go out
    /// under one transport lock per batch.
    fn drain_claimed(
        &self,
        state: &RunState,
        st: &Station,
        batch: &mut Vec<Message>,
        replies: &mut Vec<Message>,
    ) -> Result<bool, WarehouseError> {
        let mut progress = false;
        loop {
            let was_full = {
                let mut inbox = st
                    .inbox
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if inbox.is_empty() {
                    break;
                }
                let was_full = inbox.len() >= self.inbox_cap;
                batch.extend(inbox.drain(..));
                st.queued.store(0, Ordering::Release);
                was_full
            };
            if was_full {
                // Freed the whole inbox: the home worker may resume
                // draining its transport.
                state.waker.notify();
            }
            progress = true;
            self.apply_batch(state, st, batch, replies)?;
            if !replies.is_empty() {
                let mut transport = st
                    .transport
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for reply in replies.drain(..) {
                    transport.send(&reply)?;
                }
            }
        }
        if progress {
            self.try_settle(state, st);
        }
        Ok(progress)
    }

    /// Check the terminal condition for a station (caller must hold its
    /// claim): every expected notification arrived, the inbox is
    /// drained, and the shard is quiescent. Sources only send answers to
    /// queries we issued, so a settled station stays settled.
    fn try_settle(&self, state: &RunState, st: &Station) -> bool {
        if st.done.load(Ordering::Acquire) {
            return true;
        }
        if st.notifications.load(Ordering::Acquire) < st.expected {
            return false;
        }
        if !st
            .inbox
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_empty()
        {
            return false;
        }
        if !lock(&self.shards[st.source]).is_quiescent() {
            return false;
        }
        st.done.store(true, Ordering::Release);
        state.remaining.fetch_sub(1, Ordering::AcqRel);
        state.touch_progress();
        state.waker.notify();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_core::algorithms::AlgorithmKind;
    use eca_core::{BaseDb, ViewDef};
    use eca_relational::{Predicate, Schema, Tuple, Update};
    use eca_wire::{SharedFifo, TransferMeter};

    fn view_def(name: &str, r1: &str, r2: &str) -> ViewDef {
        ViewDef::new(
            name,
            vec![Schema::new(r1, &["W", "X"]), Schema::new(r2, &["X", "Y"])],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap()
    }

    /// Build `sources` scripted sources each hosting `views_per` copies
    /// of the two-relation join view, run them against a reactor with
    /// `workers` workers, and check convergence against direct
    /// evaluation.
    fn run_scripted(sources: usize, views_per: usize, workers: usize) {
        let mut wh = Warehouse::new();
        let mut dbs = Vec::new();
        let mut defs = Vec::new();
        let mut ids = Vec::new();
        for s in 0..sources {
            let src = wh.add_source(format!("s{s}"));
            let (r1, r2) = (format!("q{s}_1"), format!("q{s}_2"));
            let mut db = BaseDb::new();
            db.register(&r1);
            db.register(&r2);
            db.insert(&r1, Tuple::ints([1, 2]));
            for v in 0..views_per {
                let view = view_def(&format!("V{s}_{v}"), &r1, &r2);
                let initial = view.eval(&db).unwrap();
                let id = wh
                    .add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
                    .unwrap();
                defs.push(view);
                ids.push((s, id));
            }
            dbs.push(db);
        }
        let rw = wh.into_reactor(workers);

        std::thread::scope(|scope| {
            let mut endpoints = Vec::new();
            for (s, db) in dbs.iter_mut().enumerate() {
                let (mut src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
                let (r1, r2) = (format!("q{s}_1"), format!("q{s}_2"));
                let updates = vec![
                    Update::insert(&r2, Tuple::ints([2, 3])),
                    Update::insert(&r1, Tuple::ints([4, 2])),
                    Update::delete(&r1, Tuple::ints([1, 2])),
                ];
                endpoints.push((
                    SourceId(s),
                    Box::new(wh_end) as Box<dyn Transport + Send>,
                    updates.len() as u64,
                ));
                scope.spawn(move || {
                    for u in &updates {
                        db.apply(u);
                        src_end
                            .send(&Message::UpdateNotification { update: u.clone() })
                            .unwrap();
                    }
                    let catalog =
                        vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])];
                    while let Some(msg) = src_end.recv().unwrap() {
                        let Message::QueryRequest { id, query } = msg else {
                            panic!("unexpected message at source");
                        };
                        let answer = query.to_query(&catalog).unwrap().eval(db).unwrap();
                        src_end.send(&Message::QueryAnswer { id, answer }).unwrap();
                    }
                });
            }
            rw.run(endpoints).unwrap();
        });

        assert!(rw.is_quiescent());
        for (k, (s, id)) in ids.iter().enumerate() {
            assert_eq!(rw.materialized(*id), defs[k].eval(&dbs[*s]).unwrap());
        }
    }

    /// More sources than workers: the pool multiplexes 8 channels over
    /// 2 workers and still converges every view.
    #[test]
    fn eight_sources_two_workers_converge() {
        run_scripted(8, 2, 2);
    }

    /// Degenerate single-worker pool: pure event-loop mode.
    #[test]
    fn single_worker_still_converges() {
        run_scripted(4, 1, 1);
    }

    /// More workers than sources: surplus workers must not deadlock or
    /// double-process.
    #[test]
    fn more_workers_than_sources() {
        run_scripted(2, 1, 8);
    }

    /// Self-maintenance through the reactor path: with keyed coverage
    /// every compensating query is answered at the warehouse, so the
    /// per-link meter must record zero warehouse→source messages — the
    /// raw-frame proof that local answers never touch the wire.
    #[test]
    fn eca_aux_reactor_link_stays_quiet() {
        let view = ViewDef::new(
            "V",
            vec![
                Schema::with_key("r1", &["W", "X"], &["W"]).unwrap(),
                Schema::with_key("r2", &["X", "Y"], &["Y"]).unwrap(),
            ],
            Predicate::col_eq(1, 2),
            vec![0],
        )
        .unwrap();
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        db.insert("r1", Tuple::ints([1, 2]));

        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let initial = view.eval(&db).unwrap();
        let vid = wh
            .add_view(
                src,
                AlgorithmKind::EcaAux
                    .instantiate_with_base(&view, initial, Some(db.clone()))
                    .unwrap(),
            )
            .unwrap();
        let rw = wh.into_reactor(2);

        let meter = TransferMeter::new();
        let (mut src_end, wh_end) = SharedFifo::pair(meter.clone());
        let updates = vec![
            Update::insert("r2", Tuple::ints([2, 3])),
            Update::insert("r1", Tuple::ints([4, 2])),
            Update::delete("r1", Tuple::ints([1, 2])),
        ];
        std::thread::scope(|scope| {
            let db_ref = &mut db;
            let updates_ref = &updates;
            scope.spawn(move || {
                for u in updates_ref {
                    db_ref.apply(u);
                    src_end
                        .send(&Message::UpdateNotification { update: u.clone() })
                        .unwrap();
                }
                // No QueryRequest may ever arrive; recv returns None
                // when the reactor closes the channel.
                if let Some(msg) = src_end.recv().unwrap() {
                    panic!("self-maintained view queried the source: {msg:?}");
                }
            });
            rw.run(vec![(src, Box::new(wh_end), updates.len() as u64)])
                .unwrap();
        });

        assert!(rw.is_quiescent());
        assert_eq!(rw.materialized(vid), view.eval(&db).unwrap());
        assert_eq!(meter.messages_w2s(), 0, "no frame left the warehouse");
        assert_eq!(meter.answer_bytes(), 0);
    }

    #[test]
    fn early_hangup_is_an_error() {
        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let view = view_def("V", "r1", "r2");
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        let initial = view.eval(&db).unwrap();
        wh.add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
            .unwrap();
        let rw = wh.into_reactor(2);
        let (src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
        drop(src_end); // peer gone before any notification
        assert!(matches!(
            rw.run(vec![(src, Box::new(wh_end), 1)]),
            Err(WarehouseError::SourceHungUp { source: 0 })
        ));
    }

    #[test]
    fn silent_source_stalls_out() {
        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let view = view_def("V", "r1", "r2");
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        let initial = view.eval(&db).unwrap();
        wh.add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
            .unwrap();
        let mut rw = wh.into_reactor(2);
        rw.set_stall_timeout(Duration::from_millis(50));
        let (_src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
        // Peer stays connected but never sends the promised update.
        assert!(matches!(
            rw.run(vec![(src, Box::new(wh_end), 1)]),
            Err(WarehouseError::SourceStalled { source: 0 })
        ));
    }

    /// Satellite guarantee: a transport without waker support (the
    /// trait-default `set_waker` returns `false`) is rejected at
    /// registration with a typed error — the old behavior silently fell
    /// back to a 1 ms poll interval, hiding the misconfiguration.
    #[test]
    fn waker_rejecting_transport_fails_registration() {
        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let view = view_def("V", "r1", "r2");
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        let initial = view.eval(&db).unwrap();
        wh.add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
            .unwrap();
        let rw = wh.into_reactor(2);
        // A transport that leans on the trait-default `set_waker`.
        struct NoWaker(TransferMeter);
        impl Transport for NoWaker {
            fn role(&self) -> eca_wire::Role {
                eca_wire::Role::Warehouse
            }
            fn send(&mut self, _msg: &Message) -> Result<(), TransportError> {
                Ok(())
            }
            fn try_recv(&mut self) -> Result<Option<Message>, TransportError> {
                Ok(None)
            }
            fn recv(&mut self) -> Result<Option<Message>, TransportError> {
                Ok(None)
            }
            fn has_inbound(&mut self) -> bool {
                false
            }
            fn meter(&self) -> &TransferMeter {
                &self.0
            }
        }
        assert!(matches!(
            rw.run(vec![(src, Box::new(NoWaker(TransferMeter::new())), 1)]),
            Err(WarehouseError::WakerRejected { source: 0 })
        ));
    }

    /// Live accept: sources dial in over loopback TCP *after* the pool
    /// is running — staggered, in arbitrary order — handshake with
    /// `Hello`, and every view still converges to direct evaluation.
    #[test]
    fn listener_accepts_live_tcp_sources() {
        use eca_relational::{Predicate, Schema};
        let sources = 4;
        let mut wh = Warehouse::new();
        let mut dbs = Vec::new();
        let mut defs = Vec::new();
        let mut ids = Vec::new();
        for s in 0..sources {
            let src = wh.add_source(format!("s{s}"));
            let (r1, r2) = (format!("q{s}_1"), format!("q{s}_2"));
            let mut db = BaseDb::new();
            db.register(&r1);
            db.register(&r2);
            db.insert(&r1, Tuple::ints([1, 2]));
            let view = ViewDef::new(
                format!("V{s}"),
                vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])],
                Predicate::col_eq(1, 2),
                vec![0],
            )
            .unwrap();
            let initial = view.eval(&db).unwrap();
            let id = wh
                .add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
                .unwrap();
            defs.push(view);
            ids.push((s, id));
            dbs.push(db);
        }
        let rw = wh.into_reactor(2);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        let expected = vec![3u64; sources];

        std::thread::scope(|scope| {
            for (s, db) in dbs.iter_mut().enumerate() {
                scope.spawn(move || {
                    // Stagger the dials so late joiners land on an
                    // already-busy pool.
                    std::thread::sleep(Duration::from_millis(7 * s as u64));
                    let mut t = connect_source(addr, SourceId(s), TransferMeter::new()).unwrap();
                    let (r1, r2) = (format!("q{s}_1"), format!("q{s}_2"));
                    for u in [
                        Update::insert(&r2, Tuple::ints([2, 3])),
                        Update::insert(&r1, Tuple::ints([4, 2])),
                        Update::delete(&r1, Tuple::ints([1, 2])),
                    ] {
                        db.apply(&u);
                        t.send(&Message::UpdateNotification { update: u }).unwrap();
                    }
                    let catalog =
                        vec![Schema::new(&r1, &["W", "X"]), Schema::new(&r2, &["X", "Y"])];
                    while let Some(msg) = t.recv().unwrap() {
                        let Message::QueryRequest { id, query } = msg else {
                            panic!("unexpected message at source");
                        };
                        let answer = query.to_query(&catalog).unwrap().eval(db).unwrap();
                        t.send(&Message::QueryAnswer { id, answer }).unwrap();
                    }
                });
            }
            rw.run_listener(listener, &poller, &expected).unwrap();
        });

        assert!(rw.is_quiescent());
        for (k, (s, id)) in ids.iter().enumerate() {
            assert_eq!(rw.materialized(*id), defs[k].eval(&dbs[*s]).unwrap());
        }
    }

    /// Regression (review finding): a probe that was *skipped* because
    /// the inbox was full must not be reported [`Probe::Idle`]. The
    /// transport may still hold buffered messages whose arrival
    /// notifications were already consumed, and draining the inbox
    /// pokes only the pool waker — so recording the scan epoch for a
    /// skipped probe would make the home worker ignore the station
    /// forever and stall the run with messages silently unprocessed.
    #[test]
    fn skipped_probe_is_not_reported_idle() {
        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let mut rw = wh.into_reactor(1);
        rw.set_inbox_cap(1);

        let waker = PollWaker::new();
        let (mut src_end, mut wh_end) = SharedFifo::pair(TransferMeter::new());
        let st_waker = PollWaker::chained(Arc::clone(&waker));
        assert!(wh_end.set_waker(Arc::clone(&st_waker)));
        // Two pending updates: the 1-slot inbox can hold one, the other
        // stays buffered in the transport.
        for i in 0..2i64 {
            src_end
                .send(&Message::UpdateNotification {
                    update: Update::insert("noise", Tuple::ints([i])),
                })
                .unwrap();
        }
        let st = Station::new(src, Box::new(wh_end), 2, st_waker);
        let state = RunState {
            stations: vec![OnceLock::new()],
            born_settled: vec![false],
            waker,
            remaining: AtomicUsize::new(1),
            processed: AtomicU64::new(0),
            error: Mutex::new(None),
            last_progress: Mutex::new(Instant::now()),
            listener_addr: None,
            accept_done: AtomicBool::new(false),
        };
        let (mut scratch, mut batch) = (Vec::new(), Vec::new());
        let mut replies = Vec::new();

        // Another worker holds the claim: polling hands off through the
        // inbox, which takes one message (the cap) and reports progress.
        assert!(!st.busy.swap(true, Ordering::AcqRel));
        let probe = rw
            .poll_station(&state, &st, &mut scratch, &mut replies)
            .unwrap();
        assert_eq!(probe, Probe::Progress);
        // Inbox full, claim still held: the probe never reaches the
        // transport. It must say so — not claim the channel is idle,
        // because the second update still sits buffered inside it.
        let probe = rw
            .poll_station(&state, &st, &mut scratch, &mut replies)
            .unwrap();
        assert_eq!(probe, Probe::Skipped);
        // The claimant drains the inbox...
        st.busy.store(false, Ordering::Release);
        assert!(rw
            .process_station(&state, &st, &mut batch, &mut replies)
            .unwrap());
        // ...and because Skipped was not recorded as a scan, the home
        // worker re-probes, finds the buffered update, and settles.
        let probe = rw
            .poll_station(&state, &st, &mut scratch, &mut replies)
            .unwrap();
        assert_eq!(probe, Probe::Progress);
        assert_eq!(
            rw.poll_station(&state, &st, &mut scratch, &mut replies)
                .unwrap(),
            Probe::Idle
        );
        assert!(st.done.load(Ordering::Acquire));
        assert_eq!(state.remaining.load(Ordering::Acquire), 0);
        assert_eq!(state.processed.load(Ordering::Acquire), 2);
    }

    /// Stray connections — port scans, health probes — must not kill a
    /// live-accept run: a peer that hangs up before `Hello`, one that
    /// sends a garbage length prefix claiming a ~4 GiB frame (which
    /// must be rejected before any allocation trusts it), and one that
    /// speaks a well-formed non-`Hello` frame are all dropped, while
    /// the genuine source converges normally.
    #[test]
    fn listener_drops_garbage_connections() {
        use std::io::Write as _;
        let mut wh = Warehouse::new();
        let src = wh.add_source("s0");
        let view = view_def("V", "r1", "r2");
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        db.insert("r1", Tuple::ints([1, 2]));
        let initial = view.eval(&db).unwrap();
        let vid = wh
            .add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
            .unwrap();
        let rw = wh.into_reactor(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();

        std::thread::scope(|scope| {
            let db = &mut db;
            scope.spawn(move || {
                // EOF before any handshake byte.
                drop(TcpStream::connect(addr).unwrap());
                // Garbage length prefix: 0xFFFFFFFF.
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(&[0xff, 0xff, 0xff, 0xff]).unwrap();
                drop(s);
                // A well-formed frame that is not a Hello.
                let mut s = TcpStream::connect(addr).unwrap();
                write_frame(
                    &mut s,
                    &Message::UpdateNotification {
                        update: Update::insert("r1", Tuple::ints([9, 9])),
                    },
                )
                .unwrap();
                drop(s);
                // The genuine source dials in and completes its script.
                let mut t = connect_source(addr, SourceId(0), TransferMeter::new()).unwrap();
                let update = Update::insert("r2", Tuple::ints([2, 3]));
                db.apply(&update);
                t.send(&Message::UpdateNotification { update }).unwrap();
                let catalog = vec![
                    Schema::new("r1", &["W", "X"]),
                    Schema::new("r2", &["X", "Y"]),
                ];
                while let Some(msg) = t.recv().unwrap() {
                    let Message::QueryRequest { id, query } = msg else {
                        panic!("unexpected message at source");
                    };
                    let answer = query.to_query(&catalog).unwrap().eval(db).unwrap();
                    t.send(&Message::QueryAnswer { id, answer }).unwrap();
                }
            });
            rw.run_listener(listener, &poller, &[1]).unwrap();
        });

        assert!(rw.is_quiescent());
        assert_eq!(rw.materialized(vid), view.eval(&db).unwrap());
    }

    /// A dialer announcing a source id the warehouse never registered
    /// fails the run with a typed error instead of wedging the pool.
    #[test]
    fn listener_rejects_unknown_source() {
        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let view = view_def("V", "r1", "r2");
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        let initial = view.eval(&db).unwrap();
        wh.add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
            .unwrap();
        let rw = wh.into_reactor(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        let dialer = std::thread::spawn(move || {
            // Wrong id; the transport is dropped as soon as the run
            // fails, which this thread observes as EOF or reset.
            let _ = connect_source(addr, SourceId(9), TransferMeter::new());
        });
        let err = rw.run_listener(listener, &poller, &[1]).unwrap_err();
        assert!(matches!(err, WarehouseError::UnknownSource { id: 9 }));
        dialer.join().unwrap();
    }

    #[test]
    fn nothing_expected_settles_immediately() {
        let mut wh = Warehouse::new();
        let src = wh.add_source("s");
        let view = view_def("V", "r1", "r2");
        let mut db = BaseDb::new();
        db.register("r1");
        db.register("r2");
        let initial = view.eval(&db).unwrap();
        wh.add_view(src, AlgorithmKind::Eca.instantiate(&view, initial).unwrap())
            .unwrap();
        let rw = wh.into_reactor(1);
        let (_src_end, wh_end) = SharedFifo::pair(TransferMeter::new());
        assert_eq!(rw.run(vec![(src, Box::new(wh_end), 0)]).unwrap(), 0);
    }

    /// Backpressure: a scripted flooder against a 1-slot inbox over a
    /// 1-slot bounded link blocks deterministically — before the reactor
    /// starts, capacity caps its completed sends at exactly the link
    /// bound — and once the reactor runs, the flood drains fully without
    /// deadlocking a second, well-behaved source.
    #[test]
    fn flooding_source_blocks_without_deadlocking_others() {
        let mut wh = Warehouse::new();
        let flooder = wh.add_source("flooder");
        let polite = wh.add_source("polite");
        // Only the polite source hosts a view; the flooder's updates
        // touch no view, so the reactor absorbs them as pure inbox
        // traffic at its own pace.
        let view = view_def("V", "p1", "p2");
        let mut db = BaseDb::new();
        db.register("p1");
        db.register("p2");
        db.insert("p1", Tuple::ints([1, 2]));
        let initial = view.eval(&db).unwrap();
        let vid = wh
            .add_view(
                polite,
                AlgorithmKind::Eca.instantiate(&view, initial).unwrap(),
            )
            .unwrap();
        let mut rw = wh.into_reactor(1);
        rw.set_inbox_cap(1);

        const FLOOD: u64 = 64;
        let sent = Arc::new(AtomicU64::new(0));

        std::thread::scope(|scope| {
            // Flooder: 1-slot link, 1-slot inbox. The first send fills
            // the link; every later send must wait for a reactor pop.
            let (mut flood_src, flood_wh) = SharedFifo::bounded_pair(TransferMeter::new(), 1);
            let sent_w = Arc::clone(&sent);
            scope.spawn(move || {
                for i in 0..FLOOD {
                    flood_src
                        .send(&Message::UpdateNotification {
                            update: Update::insert("noise", Tuple::ints([i as i64])),
                        })
                        .unwrap();
                    sent_w.fetch_add(1, Ordering::SeqCst);
                }
            });

            // Deterministic blocking check: nothing pops the link until
            // the reactor starts, so no matter how long the flooder
            // runs, at most ONE send (the link capacity) can complete.
            std::thread::sleep(Duration::from_millis(30));
            assert!(
                sent.load(Ordering::SeqCst) <= 1,
                "flooder ran past link capacity with no consumer"
            );

            // Polite source: normal script, must settle even while the
            // flooder hammers the same single worker.
            let (mut polite_src, polite_wh) = SharedFifo::pair(TransferMeter::new());
            scope.spawn(move || {
                let update = Update::insert("p2", Tuple::ints([2, 3]));
                db.apply(&update);
                polite_src
                    .send(&Message::UpdateNotification { update })
                    .unwrap();
                let catalog = vec![
                    Schema::new("p1", &["W", "X"]),
                    Schema::new("p2", &["X", "Y"]),
                ];
                while let Some(msg) = polite_src.recv().unwrap() {
                    let Message::QueryRequest { id, query } = msg else {
                        panic!("unexpected message at source");
                    };
                    let answer = query.to_query(&catalog).unwrap().eval(&db).unwrap();
                    polite_src
                        .send(&Message::QueryAnswer { id, answer })
                        .unwrap();
                }
            });

            rw.run(vec![
                (flooder, Box::new(flood_wh), FLOOD),
                (polite, Box::new(polite_wh), 1),
            ])
            .unwrap();
        });

        // The polite source made full progress despite the flood...
        assert!(rw.is_quiescent());
        let expect = view
            .eval(&{
                let mut db = BaseDb::new();
                db.register("p1");
                db.register("p2");
                db.insert("p1", Tuple::ints([1, 2]));
                db.insert("p2", Tuple::ints([2, 3]));
                db
            })
            .unwrap();
        assert_eq!(rw.materialized(vid), expect);
        // ...and the whole flood eventually drained (no deadlock).
        assert_eq!(sent.load(Ordering::SeqCst), FLOOD);
    }
}
