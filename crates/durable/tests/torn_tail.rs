//! Torn-tail hardening: recovery must stop cleanly at the last valid
//! record — never panic, never replay a corrupt record — for *any*
//! truncation point and any checksum-byte corruption, over random
//! record streams.
//!
//! The exhaustive sweeps (`every byte offset` × `every checksum byte`)
//! run on a fixed stream; the proptest harness then drives the same
//! invariants over random streams × random damage.

use eca_durable::{FsyncPolicy, SourceCheckpoint, Wal, WalRecord};
use eca_relational::{SignedBag, Tuple, Update};
use proptest::prelude::*;

/// Frame header layout: `[u32 len][u64 fnv1a(body)]`.
const LEN_BYTES: std::ops::Range<usize> = 0..4;
const CHECKSUM_BYTES: std::ops::Range<usize> = 4..12;

fn tmpfile(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("eca-durable-torn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.wal"))
}

/// Write `records` through a per-record-sync WAL and return the raw
/// file image plus each record's frame boundary offset.
fn written_image(tag: &str, records: &[WalRecord]) -> (std::path::PathBuf, Vec<u8>, Vec<usize>) {
    let path = tmpfile(tag);
    let _ = std::fs::remove_file(&path);
    let mut wal = Wal::open(&path, FsyncPolicy::PerRecord).unwrap();
    let mut boundaries = vec![0usize];
    for r in records {
        wal.append(r).unwrap();
        boundaries.push(std::fs::metadata(&path).unwrap().len() as usize);
    }
    drop(wal);
    let image = std::fs::read(&path).unwrap();
    assert_eq!(*boundaries.last().unwrap(), image.len());
    (path, image, boundaries)
}

fn fixed_stream() -> Vec<WalRecord> {
    vec![
        WalRecord::Update(Update::insert("r2", Tuple::ints([2, 3]))),
        WalRecord::Answer {
            id: 1,
            answer: SignedBag::from_tuples([Tuple::ints([1])]),
        },
        WalRecord::Update(Update::delete("r2", Tuple::ints([2, 3]))),
        WalRecord::EpochBump {
            notifications_lost: false,
        },
        WalRecord::Watermark { applied: 3 },
        WalRecord::Answer {
            id: 2,
            answer: SignedBag::new(),
        },
    ]
}

/// The number of whole records that survive when the file is cut at
/// byte `cut`.
fn expect_survivors(boundaries: &[usize], cut: usize) -> usize {
    boundaries.iter().take_while(|&&b| b <= cut).count() - 1
}

#[test]
fn truncation_at_every_byte_offset_of_the_final_record() {
    let (_, image, boundaries) = written_image("trunc-final", &fixed_stream());
    let records = fixed_stream();
    let last_start = boundaries[boundaries.len() - 2];
    let path = tmpfile("trunc-final-cut");
    // Every byte offset inside the final record, including the frame
    // header bytes and the empty and full cuts.
    for cut in last_start..=image.len() {
        std::fs::write(&path, &image[..cut]).unwrap();
        let scan = Wal::scan(&path).unwrap();
        let survive = expect_survivors(&boundaries, cut);
        assert_eq!(scan.records.len(), survive, "cut at {cut}");
        assert_eq!(scan.records[..], records[..survive], "cut at {cut}");
        assert_eq!(scan.torn, cut != boundaries[survive], "cut at {cut}");
        Wal::truncate_torn_tail(&path, &scan).unwrap();
        let clean = Wal::scan(&path).unwrap();
        assert!(!clean.torn);
        assert_eq!(clean.records.len(), survive);
    }
}

#[test]
fn bit_flips_in_every_checksum_byte_reject_the_record() {
    let (_, image, boundaries) = written_image("flip-checksum", &fixed_stream());
    let records = fixed_stream();
    let path = tmpfile("flip-checksum-cut");
    for rec in 0..records.len() {
        let start = boundaries[rec];
        for byte in CHECKSUM_BYTES {
            for bit in 0..8u8 {
                let mut evil = image.clone();
                evil[start + byte] ^= 1 << bit;
                std::fs::write(&path, &evil).unwrap();
                let scan = Wal::scan(&path).unwrap();
                // The damaged record and everything after it is gone;
                // everything before survives verbatim.
                assert_eq!(
                    scan.records.len(),
                    rec,
                    "record {rec} checksum byte {byte} bit {bit}"
                );
                assert_eq!(scan.records[..], records[..rec]);
                assert!(scan.torn);
                assert_eq!(scan.valid_len as usize, start);
            }
        }
    }
}

#[test]
fn length_corruption_never_panics_or_over_reads() {
    let (_, image, boundaries) = written_image("flip-len", &fixed_stream());
    let records = fixed_stream();
    let path = tmpfile("flip-len-cut");
    for rec in 0..records.len() {
        let start = boundaries[rec];
        for byte in LEN_BYTES {
            for bit in 0..8u8 {
                let mut evil = image.clone();
                evil[start + byte] ^= 1 << bit;
                std::fs::write(&path, &evil).unwrap();
                let scan = Wal::scan(&path).unwrap();
                // A corrupt length can only shrink the valid prefix.
                assert!(scan.records.len() <= rec + records.len());
                assert!(scan.valid_len as usize <= evil.len());
                assert_eq!(
                    scan.records[..rec.min(scan.records.len())],
                    records[..rec.min(scan.records.len())]
                );
            }
        }
    }
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    let tuple = prop::collection::vec(-50i64..50, 1..4).prop_map(Tuple::ints);
    let bag = prop::collection::vec(
        (
            prop::collection::vec(-50i64..50, 1..4).prop_map(Tuple::ints),
            -2i64..=2,
        ),
        0..6,
    )
    .prop_map(|entries| {
        let mut bag = SignedBag::new();
        for (t, c) in entries {
            bag.add(t, c);
        }
        bag
    });
    prop_oneof![
        (any::<bool>(), "[a-z]{1,6}", tuple).prop_map(|(ins, rel, t)| {
            WalRecord::Update(if ins {
                Update::insert(rel, t)
            } else {
                Update::delete(rel, t)
            })
        }),
        (any::<u64>(), bag).prop_map(|(id, answer)| WalRecord::Answer { id, answer }),
        any::<bool>().prop_map(|notifications_lost| WalRecord::EpochBump { notifications_lost }),
        any::<u64>().prop_map(|applied| WalRecord::Watermark { applied }),
    ]
}

proptest! {
    /// Random streams × random truncation points: the scan yields an
    /// exact prefix, flags the tear, and truncation heals the file.
    #[test]
    fn random_stream_truncates_to_a_clean_prefix(
        records in prop::collection::vec(arb_record(), 1..12),
        cut_ppm in 0u64..1_000_000,
    ) {
        let (_, image, boundaries) =
            written_image("prop-trunc", &records);
        let cut = (image.len() as u64 * cut_ppm / 1_000_000) as usize;
        let path = tmpfile("prop-trunc-cut");
        std::fs::write(&path, &image[..cut]).unwrap();
        let scan = Wal::scan(&path).unwrap();
        let survive = expect_survivors(&boundaries, cut);
        prop_assert_eq!(scan.records.len(), survive);
        prop_assert_eq!(&scan.records[..], &records[..survive]);
        Wal::truncate_torn_tail(&path, &scan).unwrap();
        let clean = Wal::scan(&path).unwrap();
        prop_assert!(!clean.torn);
        prop_assert_eq!(clean.records.len(), survive);
        // A healed log accepts appends again.
        let mut wal = Wal::open(&path, FsyncPolicy::PerRecord).unwrap();
        wal.append(&WalRecord::Watermark { applied: 1 }).unwrap();
        drop(wal);
        prop_assert_eq!(Wal::scan(&path).unwrap().records.len(), survive + 1);
    }

    /// Random streams × a random single-byte corruption anywhere in the
    /// file: never a panic, never a record that was not written, and
    /// everything before the damaged frame survives.
    #[test]
    fn random_corruption_never_replays_garbage(
        records in prop::collection::vec(arb_record(), 1..12),
        pos_ppm in 0u64..1_000_000,
        flip in 1u8..=255,
    ) {
        let (_, image, boundaries) = written_image("prop-flip", &records);
        let pos = ((image.len() - 1) as u64 * pos_ppm / 1_000_000) as usize;
        let mut evil = image.clone();
        evil[pos] ^= flip;
        let path = tmpfile("prop-flip-cut");
        std::fs::write(&path, &evil).unwrap();
        let scan = Wal::scan(&path).unwrap();
        // The frame containing `pos` is the first that may die.
        let damaged = expect_survivors(&boundaries, pos);
        prop_assert!(scan.records.len() <= records.len());
        let intact = damaged.min(scan.records.len());
        prop_assert_eq!(&scan.records[..intact], &records[..intact]);
        // Structural invariant: whatever scanned is a real prefix of
        // frames, so truncation is always safe.
        Wal::truncate_torn_tail(&path, &scan).unwrap();
        prop_assert!(!Wal::scan(&path).unwrap().torn);
    }
}

/// Checkpoint files go through the same frame validation: damage is
/// detected, never deserialized.
#[test]
fn checkpoint_damage_is_detected_not_loaded() {
    let path = tmpfile("ckpt");
    let ck = SourceCheckpoint {
        epoch: 2,
        next_global_id: 11,
        notifications_applied: 6,
        wal_gen: 1,
        views: vec![],
    };
    ck.write(&path).unwrap();
    let image = std::fs::read(&path).unwrap();
    for cut in 0..image.len() {
        std::fs::write(&path, &image[..cut]).unwrap();
        assert!(
            SourceCheckpoint::load(&path).unwrap().is_none(),
            "cut {cut}"
        );
    }
    std::fs::write(&path, &image).unwrap();
    assert!(SourceCheckpoint::load(&path).unwrap().is_some());
}
