//! WAL record vocabulary and its frame codec.
//!
//! One record per committed maintenance event on one source channel,
//! in apply order. The log is a *redo* log of inputs: replaying the
//! records through the warehouse's ordinary event handlers re-derives
//! all view and session state deterministically (sequential global ids,
//! deterministic maintainer emissions), so nothing derived is ever
//! logged.

use bytes::Bytes;
use eca_relational::{SignedBag, Update, UpdateKind};
use eca_wire::{fnv1a_checksum, DecodeError, Decoder, Encoder, MAX_FRAME_LEN};

use crate::DurableError;

/// Byte length of the `[u32 len][u64 checksum]` frame header.
pub(crate) const HEADER_LEN: usize = 12;

/// One committed maintenance event on one source channel.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// An update notification was applied (fanned out to every view
    /// over the source).
    Update(Update),
    /// A query answer was applied, addressed by its session-global id.
    /// The bag rides along: at replay time the source may long since
    /// have moved past the state the answer was evaluated on.
    Answer {
        /// The session-global query id the answer resolved.
        id: u64,
        /// The answer relation as delivered.
        answer: SignedBag,
    },
    /// The session epoch was bumped by a channel reset
    /// (`Warehouse::on_reset`). Replay re-drains and re-issues exactly
    /// as the original call did.
    EpochBump {
        /// Whether notifications may have been lost (source restart →
        /// every view degraded to a resync).
        notifications_lost: bool,
    },
    /// The notifications-applied watermark jumped without individual
    /// records — written after a *source* restart, whose lost
    /// notifications are subsumed by the resync answer rather than
    /// re-sent.
    Watermark {
        /// Total effective notifications accounted for on this channel.
        applied: u64,
    },
}

impl WalRecord {
    /// Encode just the record body (no frame header).
    pub fn encode_body(&self) -> Bytes {
        let mut e = Encoder::new();
        match self {
            WalRecord::Update(u) => {
                e.put_u8(0);
                e.put_u8(match u.kind {
                    UpdateKind::Insert => 0,
                    UpdateKind::Delete => 1,
                });
                e.put_str(&u.relation);
                e.put_tuple(&u.tuple);
            }
            WalRecord::Answer { id, answer } => {
                e.put_u8(1);
                e.put_u64(*id);
                e.put_bag(answer);
            }
            WalRecord::EpochBump { notifications_lost } => {
                e.put_u8(2);
                e.put_u8(u8::from(*notifications_lost));
            }
            WalRecord::Watermark { applied } => {
                e.put_u8(3);
                e.put_u64(*applied);
            }
        }
        e.finish()
    }

    /// Decode a record body (the frame's checksum already verified).
    ///
    /// # Errors
    /// [`DecodeError`] on a malformed body.
    pub fn decode_body(bytes: Bytes) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let rec = match d.get_u8()? {
            0 => {
                let kind = match d.get_u8()? {
                    0 => UpdateKind::Insert,
                    1 => UpdateKind::Delete,
                    tag => {
                        return Err(DecodeError::BadTag {
                            context: "WalRecord update kind",
                            tag,
                        })
                    }
                };
                let relation = d.get_str()?;
                let tuple = d.get_tuple()?;
                WalRecord::Update(Update {
                    relation,
                    kind,
                    tuple,
                })
            }
            1 => WalRecord::Answer {
                id: d.get_u64()?,
                answer: d.get_bag()?,
            },
            2 => WalRecord::EpochBump {
                notifications_lost: d.get_u8()? != 0,
            },
            3 => WalRecord::Watermark {
                applied: d.get_u64()?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    context: "WalRecord",
                    tag,
                })
            }
        };
        Ok(rec)
    }
}

/// Frame a body for the log: `[u32 len][u64 fnv1a(body)][body]`.
///
/// # Errors
/// [`DurableError::RecordTooLarge`] past [`MAX_FRAME_LEN`].
pub(crate) fn frame_body(body: &[u8], out: &mut Vec<u8>) -> Result<(), DurableError> {
    if body.len() > MAX_FRAME_LEN {
        return Err(DurableError::RecordTooLarge { len: body.len() });
    }
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&fnv1a_checksum(body).to_be_bytes());
    out.extend_from_slice(body);
    Ok(())
}

/// Try to lift one frame off `buf[offset..]`.
///
/// Returns `Some((body, next_offset))` when a complete frame with a
/// valid length and matching checksum starts at `offset`; `None` for
/// anything else — a partial header, a length past the cap or past the
/// buffer end, or a checksum mismatch. `None` is the torn-tail signal:
/// the caller stops scanning and truncates at `offset`.
pub(crate) fn unframe(buf: &[u8], offset: usize) -> Option<(Bytes, usize)> {
    let rest = buf.get(offset..)?;
    if rest.len() < HEADER_LEN {
        return None;
    }
    let len = u32::from_be_bytes(rest[0..4].try_into().ok()?) as usize;
    if len > MAX_FRAME_LEN || rest.len() < HEADER_LEN + len {
        return None;
    }
    let want = u64::from_be_bytes(rest[4..12].try_into().ok()?);
    let body = &rest[HEADER_LEN..HEADER_LEN + len];
    if fnv1a_checksum(body) != want {
        return None;
    }
    Some((Bytes::from(body), offset + HEADER_LEN + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::Tuple;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Update(Update::insert("r1", Tuple::ints([1, 2]))),
            WalRecord::Update(Update::delete("r2", Tuple::ints([7]))),
            WalRecord::Answer {
                id: 42,
                answer: SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])]),
            },
            WalRecord::EpochBump {
                notifications_lost: true,
            },
            WalRecord::EpochBump {
                notifications_lost: false,
            },
            WalRecord::Watermark { applied: 17 },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for rec in samples() {
            let body = rec.encode_body();
            assert_eq!(WalRecord::decode_body(body).unwrap(), rec);
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_flips() {
        for rec in samples() {
            let body = rec.encode_body();
            let mut framed = Vec::new();
            frame_body(body.as_slice(), &mut framed).unwrap();
            let (got, next) = unframe(&framed, 0).expect("intact frame");
            assert_eq!(next, framed.len());
            assert_eq!(WalRecord::decode_body(got).unwrap(), rec);

            // Any single bit flip anywhere in the frame is rejected
            // (header: bad length or checksum; body: checksum mismatch).
            for byte in 0..framed.len() {
                for bit in 0..8 {
                    let mut evil = framed.clone();
                    evil[byte] ^= 1 << bit;
                    if let Some((body, _)) = unframe(&evil, 0) {
                        // A length flip can only "succeed" by pointing
                        // at a shorter prefix whose checksum happens to
                        // match — impossible here since the checksum
                        // bytes would need to match the new body too.
                        panic!(
                            "flip at byte {byte} bit {bit} yielded a frame: {:?}",
                            body.as_slice()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_record_is_refused() {
        let mut out = Vec::new();
        let body = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            frame_body(&body, &mut out),
            Err(DurableError::RecordTooLarge { .. })
        ));
        assert!(out.is_empty());
    }
}
