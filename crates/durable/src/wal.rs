//! The append-only log file: buffered writes, policy-driven syncs,
//! torn-tail scanning.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::record::{frame_body, unframe, WalRecord};
use crate::{DurableError, FsyncPolicy};

/// One source channel's write-ahead log.
///
/// Appends go through an internal buffer that is only written (and
/// synced) at the points the [`FsyncPolicy`] dictates — deliberately
/// *not* a `BufWriter`, whose `Drop` flushes and would make every
/// simulated crash look like a clean shutdown. Dropping a `Wal` loses
/// exactly the unflushed records, which is the crash window the policy
/// promises.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    policy: FsyncPolicy,
    /// Encoded frames not yet handed to the OS.
    buf: Vec<u8>,
    /// Records in `buf`.
    buffered: u64,
    /// Records written to the file since it was last reset.
    appended: u64,
}

/// The result of scanning a log file from disk.
#[derive(Debug)]
pub struct WalScan {
    /// Every record up to the last valid frame, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last valid frame — where a torn
    /// tail was (or would be) truncated.
    pub valid_len: u64,
    /// Whether bytes past `valid_len` existed (partial write or
    /// corruption); they are never replayed.
    pub torn: bool,
}

impl Wal {
    /// Open (creating if absent) the log at `path` for appending.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn open(path: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<Self, DurableError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            path,
            file,
            policy,
            buf: Vec::new(),
            buffered: 0,
            appended: 0,
        })
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record, flushing and syncing per the policy.
    ///
    /// # Errors
    /// [`DurableError::RecordTooLarge`]; filesystem errors.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), DurableError> {
        let body = record.encode_body();
        frame_body(body.as_slice(), &mut self.buf)?;
        self.buffered += 1;
        match self.policy {
            FsyncPolicy::PerRecord => self.sync()?,
            FsyncPolicy::PerBatch(n) => {
                if self.buffered >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnCheckpoint => {}
        }
        Ok(())
    }

    /// Force every buffered record to disk (`write` + `fdatasync`).
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.appended += self.buffered;
        self.buffered = 0;
        self.file.sync_data()?;
        Ok(())
    }

    /// Records currently exposed to a crash (appended but not synced).
    pub fn unsynced(&self) -> u64 {
        self.buffered
    }

    /// Records durably in the file since the last [`Wal::reset`].
    pub fn synced(&self) -> u64 {
        self.appended
    }

    /// Empty the log (after a successful checkpoint): everything the
    /// checkpoint captured is no longer needed for redo.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn reset(&mut self) -> Result<(), DurableError> {
        self.buf.clear();
        self.buffered = 0;
        self.appended = 0;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Drop every buffered (unsynced) record — the in-process stand-in
    /// for the machine dying: whatever the policy had not yet synced is
    /// gone, whatever it had synced survives on disk.
    pub fn simulate_crash(&mut self) {
        self.buf.clear();
        self.buffered = 0;
    }

    /// Scan a log file, stopping cleanly at the first torn or corrupt
    /// frame. A missing file scans as empty.
    ///
    /// # Errors
    /// Filesystem errors other than "not found"; [`DurableError::Decode`]
    /// when a checksum-valid body fails to parse (version skew — never
    /// silently skipped).
    pub fn scan(path: &Path) -> Result<WalScan, DurableError> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let mut records = Vec::new();
        let mut offset = 0usize;
        while let Some((body, next)) = unframe(&raw, offset) {
            records.push(WalRecord::decode_body(body)?);
            offset = next;
        }
        Ok(WalScan {
            records,
            valid_len: offset as u64,
            torn: offset < raw.len(),
        })
    }

    /// Truncate a log file at its last valid record, so future appends
    /// never interleave with garbage. No-op for a clean (or missing)
    /// file.
    ///
    /// # Errors
    /// Filesystem errors.
    pub fn truncate_torn_tail(path: &Path, scan: &WalScan) -> Result<(), DurableError> {
        if !scan.torn {
            return Ok(());
        }
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(scan.valid_len)?;
        f.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::{Tuple, Update};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eca-durable-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn recs(n: u64) -> Vec<WalRecord> {
        (0..n)
            .map(|i| WalRecord::Update(Update::insert("r1", Tuple::ints([i as i64, 2 * i as i64]))))
            .collect()
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmpdir("roundtrip").join("a.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::PerRecord).unwrap();
        let records = recs(5);
        for r in &records {
            wal.append(r).unwrap();
        }
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.records, records);
        assert!(!scan.torn);
    }

    #[test]
    fn policy_bounds_the_crash_window() {
        let dir = tmpdir("window");
        for (policy, survive) in [
            (FsyncPolicy::PerRecord, 7),
            (FsyncPolicy::PerBatch(3), 6),
            (FsyncPolicy::OnCheckpoint, 0),
        ] {
            let path = dir.join(format!("{policy:?}.wal"));
            let _ = std::fs::remove_file(&path);
            let mut wal = Wal::open(&path, policy).unwrap();
            for r in recs(7) {
                wal.append(&r).unwrap();
            }
            wal.simulate_crash();
            drop(wal);
            let scan = Wal::scan(&path).unwrap();
            assert_eq!(scan.records.len(), survive, "{policy:?}");
            assert!(!scan.torn, "{policy:?}: a lost buffer is not a torn file");
        }
    }

    #[test]
    fn torn_tail_stops_at_last_valid_record_every_offset() {
        let dir = tmpdir("torn");
        let path = dir.join("full.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::PerRecord).unwrap();
        let records = recs(4);
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let intact = Wal::scan(&path).unwrap();
        assert_eq!(intact.valid_len as usize, full.len());

        // Find each record's frame boundary by rescanning prefixes.
        let mut boundaries = vec![0usize];
        for cut in 1..=full.len() {
            let p = dir.join("cut.wal");
            std::fs::write(&p, &full[..cut]).unwrap();
            let scan = Wal::scan(&p).unwrap();
            assert!(scan.records.len() <= records.len());
            assert_eq!(scan.records[..], records[..scan.records.len()]);
            assert_eq!(scan.torn, (cut as u64) != scan.valid_len);
            if !scan.torn && cut > *boundaries.last().unwrap() {
                boundaries.push(cut);
            }
            // Truncation is idempotent and lands exactly on a boundary.
            Wal::truncate_torn_tail(&p, &scan).unwrap();
            let again = Wal::scan(&p).unwrap();
            assert!(!again.torn);
            assert_eq!(again.records, scan.records);
        }
        assert_eq!(boundaries.len(), records.len() + 1);
    }

    #[test]
    fn reset_empties_the_log_and_reopen_appends_after_tail() {
        let path = tmpdir("reset").join("a.wal");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path, FsyncPolicy::PerRecord).unwrap();
        for r in recs(3) {
            wal.append(&r).unwrap();
        }
        wal.reset().unwrap();
        assert_eq!(Wal::scan(&path).unwrap().records.len(), 0);
        wal.append(&recs(1)[0]).unwrap();
        drop(wal);
        // Reopen and append: the new record lands after the old tail.
        let mut wal = Wal::open(&path, FsyncPolicy::PerRecord).unwrap();
        wal.append(&recs(2)[1]).unwrap();
        assert_eq!(Wal::scan(&path).unwrap().records.len(), 2);
    }
}
