//! Quiescent checkpoints of one source channel's warehouse state.
//!
//! A checkpoint is cut only when the channel is settled (`UQS = ∅`, no
//! pending queries, every view active and quiescent), so it never has
//! to serialize in-flight compensation state: per view it is the
//! materialized bag plus any auxiliary-view bags, and per channel the
//! session epoch, the next global query id and the
//! notifications-applied watermark. Written atomically: temp file,
//! sync, rename, directory sync — a crash mid-checkpoint leaves the
//! previous checkpoint intact.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use bytes::Bytes;
use eca_core::AuxDurableState;
use eca_relational::SignedBag;
use eca_wire::{fnv1a_checksum, DecodeError, Decoder, Encoder, MAX_FRAME_LEN};

use crate::record::{frame_body, unframe};
use crate::DurableError;

/// One auxiliary-view slot inside a view checkpoint.
pub type AuxCheckpoint = AuxDurableState;

/// The durable state of one hosted view at a quiescent point.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewCheckpoint {
    /// The materialized view bag.
    pub mv: SignedBag,
    /// Algorithm-specific auxiliary state
    /// ([`eca_core::ViewMaintainer::checkpoint_aux`]), empty for the
    /// paper's non-self-maintaining algorithms.
    pub aux: Vec<AuxCheckpoint>,
}

/// The durable state of one source channel at a quiescent point.
#[derive(Clone, Debug, PartialEq)]
pub struct SourceCheckpoint {
    /// Session epoch at checkpoint time.
    pub epoch: u64,
    /// Next session-global query id — replayed events must re-allocate
    /// the exact ids the original run used, so answers route by id.
    pub next_global_id: u64,
    /// Effective update notifications applied on this channel over its
    /// whole life — the watermark incremental resync resumes from.
    pub notifications_applied: u64,
    /// Generation of the *only* WAL file this checkpoint pairs with
    /// ([`crate::DurabilityConfig::wal_path`]). Cutting a checkpoint
    /// rotates to a fresh generation, so records covered by the
    /// checkpoint can never be replayed on top of it.
    pub wal_gen: u64,
    /// One entry per view over this source, in registration order.
    pub views: Vec<ViewCheckpoint>,
}

impl SourceCheckpoint {
    fn encode_body(&self) -> Bytes {
        let mut e = Encoder::new();
        e.put_u64(self.epoch);
        e.put_u64(self.next_global_id);
        e.put_u64(self.notifications_applied);
        e.put_u64(self.wal_gen);
        e.put_u32(self.views.len() as u32);
        for v in &self.views {
            e.put_bag(&v.mv);
            e.put_u32(v.aux.len() as u32);
            for a in &v.aux {
                e.put_u8(u8::from(a.fresh));
                e.put_bag(&a.bag);
            }
        }
        e.finish()
    }

    fn decode_body(bytes: Bytes) -> Result<Self, DecodeError> {
        let mut d = Decoder::new(bytes);
        let epoch = d.get_u64()?;
        let next_global_id = d.get_u64()?;
        let notifications_applied = d.get_u64()?;
        let wal_gen = d.get_u64()?;
        let n_views = d.get_u32()? as usize;
        let mut views = Vec::with_capacity(n_views.min(1024));
        for _ in 0..n_views {
            let mv = d.get_bag()?;
            let n_aux = d.get_u32()? as usize;
            let mut aux = Vec::with_capacity(n_aux.min(1024));
            for _ in 0..n_aux {
                let fresh = d.get_u8()? != 0;
                let bag = d.get_bag()?;
                aux.push(AuxCheckpoint { fresh, bag });
            }
            views.push(ViewCheckpoint { mv, aux });
        }
        Ok(SourceCheckpoint {
            epoch,
            next_global_id,
            notifications_applied,
            wal_gen,
            views,
        })
    }

    /// Write atomically to `path`: temp file + sync + rename + dir
    /// sync. The body is framed exactly like a WAL record, so the same
    /// length/checksum validation guards it.
    ///
    /// # Errors
    /// [`DurableError::RecordTooLarge`] past [`MAX_FRAME_LEN`];
    /// filesystem errors.
    pub fn write(&self, path: &Path) -> Result<(), DurableError> {
        let body = self.encode_body();
        if body.len() > MAX_FRAME_LEN {
            return Err(DurableError::RecordTooLarge { len: body.len() });
        }
        let mut framed = Vec::with_capacity(body.len() + 12);
        frame_body(body.as_slice(), &mut framed)?;
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&framed)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Make the rename itself durable.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_data();
            }
        }
        Ok(())
    }

    /// Load a checkpoint. `Ok(None)` when the file is missing, torn or
    /// checksum-invalid — the caller falls back to a full resync rather
    /// than trusting a damaged snapshot.
    ///
    /// # Errors
    /// Filesystem errors other than "not found"; [`DurableError::Decode`]
    /// when a checksum-valid body fails to parse.
    pub fn load(path: &Path) -> Result<Option<Self>, DurableError> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let Some((body, end)) = unframe(&raw, 0) else {
            return Ok(None);
        };
        if end != raw.len() {
            // Trailing garbage after the frame: treat as damage.
            return Ok(None);
        }
        Ok(Some(SourceCheckpoint::decode_body(body)?))
    }
}

// `fnv1a_checksum` is pulled in via `frame_body`/`unframe`; referenced
// here so the doc sentence above stays honest if the record module ever
// changes its framing.
const _: fn(&[u8]) -> u64 = fnv1a_checksum;

#[cfg(test)]
mod tests {
    use super::*;
    use eca_relational::Tuple;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eca-durable-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SourceCheckpoint {
        SourceCheckpoint {
            epoch: 3,
            next_global_id: 17,
            notifications_applied: 9,
            wal_gen: 2,
            views: vec![
                ViewCheckpoint {
                    mv: SignedBag::from_tuples([Tuple::ints([1]), Tuple::ints([4])]),
                    aux: vec![],
                },
                ViewCheckpoint {
                    mv: SignedBag::new(),
                    aux: vec![
                        AuxCheckpoint {
                            fresh: true,
                            bag: SignedBag::from_tuples([Tuple::ints([2, 3])]),
                        },
                        AuxCheckpoint {
                            fresh: false,
                            bag: SignedBag::new(),
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn write_load_roundtrip() {
        let path = tmpdir("roundtrip").join("s.ckpt");
        let ck = sample();
        ck.write(&path).unwrap();
        assert_eq!(SourceCheckpoint::load(&path).unwrap().unwrap(), ck);
    }

    #[test]
    fn missing_file_loads_none() {
        let path = tmpdir("missing").join("absent.ckpt");
        let _ = std::fs::remove_file(&path);
        assert!(SourceCheckpoint::load(&path).unwrap().is_none());
    }

    #[test]
    fn damaged_checkpoint_loads_none_at_every_truncation_and_flip() {
        let path = tmpdir("damage").join("s.ckpt");
        sample().write(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let p = tmpdir("damage").join("cut.ckpt");
        for cut in 0..full.len() {
            std::fs::write(&p, &full[..cut]).unwrap();
            assert!(
                SourceCheckpoint::load(&p).unwrap().is_none(),
                "truncation at {cut} must not load"
            );
        }
        for byte in 0..full.len() {
            let mut evil = full.clone();
            evil[byte] ^= 0x40;
            std::fs::write(&p, &evil).unwrap();
            assert!(
                SourceCheckpoint::load(&p).unwrap().is_none(),
                "flip at {byte} must not load"
            );
        }
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let path = tmpdir("rewrite").join("s.ckpt");
        let mut ck = sample();
        ck.write(&path).unwrap();
        ck.epoch = 99;
        ck.write(&path).unwrap();
        assert_eq!(SourceCheckpoint::load(&path).unwrap().unwrap().epoch, 99);
    }
}
